"""Setup shim enabling legacy editable installs (offline environments).

The canonical metadata lives in pyproject.toml; this file only lets
``pip install -e . --no-use-pep517 --no-build-isolation`` work where the
``wheel`` package (required for PEP 660 editable builds) is unavailable.
"""

from setuptools import setup

setup()
