"""Detecting model drift between two measurement campaigns.

Section 7 of the paper: service-level models "will require updates over
the years to consider changes in popularity and new services that
emerge".  This example fits models on two campaigns — a baseline and a
future one where one service's behaviour changed — and shows how
`repro.core.drift.compare_banks` pinpoints exactly the stale model.

Run:  python examples/model_drift.py
"""

import dataclasses

import numpy as np

from repro import ModelBank, Network, NetworkConfig, SimulationConfig, simulate
from repro.core.drift import compare_banks
from repro.dataset import profiles
from repro.io.tables import print_table

SERVICES = ["Facebook", "Instagram", "Netflix", "Deezer", "Twitch"]


def main() -> None:
    network = Network(NetworkConfig(n_bs=20), np.random.default_rng(1))

    # Year 1: baseline campaign and model release.
    year1 = simulate(network, SimulationConfig(n_days=1), np.random.default_rng(2))
    bank1 = ModelBank.fit_from_table(year1, services=SERVICES)

    # Year 2: Netflix bumps its mobile bitrate — every session carries
    # about twice the volume.  We emulate the behavioural change by
    # patching the ground-truth profile before re-simulating.
    original = profiles.PROFILES["Netflix"]
    shifted_components = tuple(
        dataclasses.replace(c, mu=c.mu + np.log10(2.0))
        for c in original.mixture.components
    )
    profiles.PROFILES["Netflix"] = dataclasses.replace(
        original,
        mixture=dataclasses.replace(
            original.mixture, components=shifted_components
        ),
        alpha=original.alpha * 2.0,
    )
    try:
        year2 = simulate(
            network, SimulationConfig(n_days=1), np.random.default_rng(3)
        )
    finally:
        profiles.PROFILES["Netflix"] = original
    bank2 = ModelBank.fit_from_table(year2, services=SERVICES)

    # Compare the releases.
    report = compare_banks(bank1, bank2)
    print_table(
        ["service", "volume EMD", "mean ratio", "beta delta", "verdict"],
        [
            [
                d.service,
                f"{d.volume_emd:.3f}",
                f"{d.mean_ratio:.2f}x",
                f"{d.beta_delta:+.2f}",
                "REFIT" if d.is_significant() else "stable",
            ]
            for d in report.drifts
        ],
        title="Model drift: year 1 -> year 2",
    )
    flagged = [d.service for d in report.significant()]
    print(f"services needing a model refresh: {flagged}")


if __name__ == "__main__":
    main()
