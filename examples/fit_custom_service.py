"""Fit a session-level model to YOUR OWN session data.

A downstream user rarely has the synthetic substrate — they have raw
per-session records of their application (from their own probes, server
logs, or a trace file).  This example shows the minimal path from two
arrays (duration, volume) to a released parameter tuple:

1. build the volume PDF with ``LogHistogram.from_volumes``;
2. build the duration–volume curve with
   ``DurationVolumeCurve.from_sessions``;
3. fit, inspect and sample the model.

The fake "custom app" below is a cloud-gaming service: near-constant
bitrate (super-linear beta close to 1), a characteristic ~80 MB mode for
a standard match, and a short-session head from aborted matches.

Run:  python examples/fit_custom_service.py
"""

import numpy as np

from repro.analysis.histogram import LogHistogram
from repro.core.service_model import fit_service_model
from repro.dataset.aggregation import DurationVolumeCurve


def synthesize_my_sessions(rng, n=60_000):
    """Stand-in for the user's own measurement: a cloud-gaming app."""
    # 70 % full matches (~12 min at ~0.9 Mbps), 30 % aborted (< 2 min).
    full = rng.random(n) < 0.7
    durations = np.where(
        full,
        720.0 * 10 ** rng.normal(0, 0.15, n),
        90.0 * 10 ** rng.normal(0, 0.3, n),
    )
    bitrate_mbps = 0.9 * 10 ** rng.normal(0, 0.12, n)
    volumes = bitrate_mbps * durations / 8.0
    return durations, volumes


def main() -> None:
    rng = np.random.default_rng(99)
    durations, volumes = synthesize_my_sessions(rng)
    print(f"my app: {durations.size} measured sessions, "
          f"{volumes.sum() / 1e3:.1f} GB total")

    # Steps 1-2: the two aggregated statistics the model needs.
    volume_pdf = LogHistogram.from_volumes(volumes)
    curve = DurationVolumeCurve.from_sessions(durations, volumes)

    # Step 3: fit the full session-level model.
    model = fit_service_model("Clash of Clans", volume_pdf, curve)
    # (any catalog name works as a label; the fit uses only your data)

    print("\nfitted parameter tuple:")
    print(f"  volume: mu={model.volume.main.mu:.3f} "
          f"sigma={model.volume.main.sigma:.3f}, "
          f"{len(model.volume.peaks)} characteristic peak(s)")
    for peak in model.volume.peaks:
        print(f"    peak at {10**peak.mu:.1f} MB (k={peak.weight:.3f})")
    print(f"  duration: v(d) = {model.duration.alpha:.4f} * "
          f"d^{model.duration.beta:.2f} (R^2={model.duration.r2:.2f})")
    print(f"  volume-model EMD: "
          f"{model.volume_error_against(volume_pdf):.4f} decades")

    batch = model.sample_sessions(rng, 20_000)
    print(f"\ngenerated sessions: mean {batch.volumes_mb.mean():.1f} MB "
          f"(measured {volumes.mean():.1f} MB), "
          f"median throughput {np.median(batch.throughput_mbps):.2f} Mbps "
          f"(measured {np.median(8 * volumes / durations):.2f} Mbps)")


if __name__ == "__main__":
    main()
