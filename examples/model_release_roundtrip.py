"""Fit all service models, release them as JSON, reload and generate.

This mirrors how the paper's published models are meant to be consumed:
a downstream user never touches measurement data — they load the released
parameter tuples and generate realistic session-level traffic for any BS
load class.

Run:  python examples/model_release_roundtrip.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    ModelBank,
    Network,
    NetworkConfig,
    ServiceMix,
    SimulationConfig,
    TrafficGenerator,
    simulate,
)
from repro.core.arrivals import ArrivalModel
from repro.dataset.network import decile_peak_rate
from repro.io.params import load_release, save_release


def main() -> None:
    rng = np.random.default_rng(3)

    # --- Producer side: fit on a measurement campaign and release. -----
    network = Network(NetworkConfig(n_bs=20), rng)
    campaign = simulate(network, SimulationConfig(n_days=1), rng)
    bank = ModelBank.fit_from_table(campaign)
    arrivals = {
        f"decile-{d}": ArrivalModel(
            decile_peak_rate(d), decile_peak_rate(d) / 10, decile_peak_rate(d) / 8
        )
        for d in range(10)
    }
    release_path = Path(tempfile.gettempdir()) / "session_models.json"
    save_release(release_path, bank, arrivals)
    print(f"released {len(bank)} service models -> {release_path}")

    # --- Consumer side: reload and generate, no measurement data. ------
    restored_bank, restored_arrivals = load_release(release_path)
    mix = ServiceMix.from_table1().restricted_to(restored_bank.services())
    generator = TrafficGenerator(
        {bs: restored_arrivals["decile-6"] for bs in range(5)},
        mix,
        restored_bank,
    )
    synthetic = generator.generate_campaign(1, np.random.default_rng(99))
    print(f"generated {len(synthetic)} sessions at 5 decile-7 BSs")
    print(f"total traffic: {synthetic.total_volume_mb() / 1e3:.1f} GB")

    # Verify: the synthetic service mix matches the published shares.
    from repro.dataset.aggregation import service_shares

    shares = service_shares(synthetic)
    top = sorted(shares.items(), key=lambda kv: kv[1][0], reverse=True)[:5]
    print("top services in the generated traffic:")
    for name, (session_share, traffic_share) in top:
        print(f"  {name:12s} sessions {100 * session_share:5.2f} %   "
              f"traffic {100 * traffic_share:5.2f} %")


if __name__ == "__main__":
    main()
