"""Full Section 4 characterization of a measurement campaign.

Runs, in one pass, the analyses the paper uses to motivate its models:
the service popularity ranking and its exponential law (Fig 4), the shape
clustering with silhouette scores (Fig 6), and the invariance report
across day types, regions, cities and RATs (Fig 8).

Run:  python examples/characterize_campaign.py
"""

import numpy as np

from repro import Network, NetworkConfig, SimulationConfig, simulate
from repro.analysis.clustering import (
    CentroidHierarchicalClustering,
    silhouette_profile,
)
from repro.analysis.comparisons import invariance_report
from repro.analysis.normalization import zero_mean
from repro.analysis.ranking import (
    fit_exponential_law,
    rank_services,
    top_k_session_fraction,
)
from repro.dataset.aggregation import pooled_volume_pdf
from repro.io.tables import print_table

SERVICES_FOR_INVARIANCE = [
    "Facebook", "Instagram", "SnapChat", "Netflix", "Youtube",
    "Twitter", "Waze", "Deezer",
]


def main() -> None:
    rng = np.random.default_rng(5)
    network = Network(NetworkConfig(n_bs=30), rng)
    config = SimulationConfig(n_days=7)
    print("simulating a 7-day campaign over 30 BSs...")
    campaign = simulate(network, config, rng)
    print(f"{len(campaign)} sessions recorded\n")

    # --- Fig 4: popularity ranking. -------------------------------------
    ranking = rank_services(campaign)
    law = fit_exponential_law(ranking)
    print_table(
        ["rank", "service", "sessions %"],
        [[r.rank, r.service, 100 * r.session_fraction] for r in ranking[:8]],
        title="Service ranking (Fig 4)",
    )
    print(f"exponential law R^2 = {law.r2:.3f}; "
          f"top-5 services = {100 * top_k_session_fraction(ranking, 5):.1f} % "
          "of sessions\n")

    # --- Fig 6: shape clustering. ----------------------------------------
    names, pdfs = [], []
    for entry in ranking:
        sub = campaign.for_service(entry.service)
        if len(sub) >= 3000:
            names.append(entry.service)
            pdfs.append(zero_mean(pooled_volume_pdf(sub)))
    clustering = CentroidHierarchicalClustering(pdfs)
    labels = clustering.labels(2)
    print("Two-way shape clustering (Fig 6):")
    for label in sorted(set(labels)):
        members = [names[i] for i in range(len(names)) if labels[i] == label]
        print(f"  cluster {label}: {', '.join(members)}")
    profile = silhouette_profile(pdfs, max_clusters=6)
    print("silhouette per cut: "
          + ", ".join(f"{k}:{v:.2f}" for k, v in profile) + "\n")

    # --- Fig 8: invariance. ----------------------------------------------
    report = invariance_report(
        campaign, network, SERVICES_FOR_INVARIANCE,
        weekend_days=config.weekend_days(),
    )
    print_table(
        ["dimension", "median EMD (decades)"],
        [
            [tag, float(np.median(samples))]
            for tag, samples in report.emd_samples.items()
            if samples.size
        ],
        title="Invariance of per-service statistics (Fig 8)",
    )
    print("Same-service differences across days/regions/cities/RATs are")
    print("negligible next to inter-service (Apps) diversity — the paper's")
    print("licence to release one model per service for the whole network.")


if __name__ == "__main__":
    main()
