"""Composing session-level models with a packet-level bridge.

Section 1 of the paper: session-level models "can complement studies on
packet-level modeling so as to reproduce fine-grained mobile traffic loads
at an individual BS".  This example performs that composition end to end:

1. fit a session-level model on a campaign;
2. generate one synthetic session from it;
3. expand the session into a concrete packet schedule (periodic chunks
   for streaming, on/off bursts for messaging);
4. verify the composition contract: the packets sum back to the session's
   volume exactly.

Run:  python examples/packet_level_bridge.py
"""

import numpy as np

from repro import ModelBank, Network, NetworkConfig, SimulationConfig, simulate
from repro.core.packet_bridge import packetize_service_session


def main() -> None:
    rng = np.random.default_rng(17)
    network = Network(NetworkConfig(n_bs=10), rng)
    campaign = simulate(network, SimulationConfig(n_days=1), rng)
    bank = ModelBank.fit_from_table(
        campaign, services=["Netflix", "WhatsApp"], min_sessions=300
    )

    for service in ("Netflix", "WhatsApp"):
        batch = bank.get(service).sample_sessions(rng, 1)
        volume = float(batch.volumes_mb[0])
        duration = float(batch.durations_s[0])
        schedule = packetize_service_session(service, volume, duration, rng)

        print(f"{service}: session of {volume:.2f} MB over {duration:.0f} s")
        print(f"  packets   : {len(schedule)}")
        print(f"  bursts    : {schedule.burst_count()}")
        print(f"  bytes     : {schedule.total_bytes} "
              f"(session: {int(round(volume * 1e6))})")
        gaps = schedule.inter_arrival_s()
        if gaps.size:
            print(f"  inter-arrival: median {np.median(gaps) * 1e3:.3f} ms, "
                  f"max {gaps.max():.2f} s")
        print()

    print("The session-level tuple fixes WHAT a session carries; the")
    print("packet bridge decides WHEN each byte moves — the two layers of")
    print("Fig 1 composed without double-counting.")


if __name__ == "__main__":
    main()
