"""The two-probe measurement pipeline on an explicit packet stream.

Section 3.1 of the paper builds its dataset by crossing gateway probes
(transport-session reconstruction at the PGW) with RAN probes (UE-to-BS
attachment from S1-MME signalling).  This example walks one UE through a
Netflix session that spans a handover, showing how the platform records it
as two transport-layer sessions — one per visited BS — exactly as the
aggregated dataset sees it.

Run:  python examples/probe_pipeline.py
"""

from repro.dataset.collection import (
    AttachmentEvent,
    FiveTuple,
    GatewayProbe,
    Packet,
    Protocol,
    RanProbe,
    correlate,
)


def main() -> None:
    flow = FiveTuple(Protocol.TCP, "10.21.4.9", "198.45.48.1", 51622, 443)

    # The UE streams for 10 minutes; a handover happens at t = 360 s.
    packets = []
    for second in range(0, 600, 2):
        packets.append(
            Packet(float(second), flow, ue_id=7, size_bytes=120_000)
        )
    packets.append(Packet(600.0, flow, ue_id=7, size_bytes=500, fin=True))

    gateway = GatewayProbe(lambda ft: "Netflix")
    sessions = gateway.reconstruct(packets)
    print("gateway probe view (SGi interface):")
    for s in sessions:
        print(f"  {s.service}: {s.volume_bytes / 1e6:.1f} MB over "
              f"{s.duration_s:.0f} s  (UE {s.ue_id})")

    ran = RanProbe(
        [
            AttachmentEvent(0.0, ue_id=7, bs_id=4021),
            AttachmentEvent(360.0, ue_id=7, bs_id=4022),  # handover
        ]
    )
    print("\nRAN probe view (S1-MME interface):")
    print("  UE 7 attached to BS 4021, handover to BS 4022 at t=360 s")

    records = correlate(sessions, ran)
    print("\ncorrelated per-BS transport sessions (the dataset's view):")
    for r in records:
        tag = "cut at handover" if r.truncated else "completed here"
        print(f"  BS {r.bs_id}: {r.volume_mb:.1f} MB over {r.duration_s:.0f} s "
              f"starting minute {r.start_minute}  [{tag}]")

    print("\nThe single application session became two transport sessions —")
    print("the transient-session artefact the paper's models must capture.")


if __name__ == "__main__":
    main()
