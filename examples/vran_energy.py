"""vRAN CU-DU energy evaluation (the Section 6.2 use case).

A Telco Cloud Site orchestrates sessions onto physical servers every
second, switching idle servers off.  This example feeds the orchestrator
with traffic from (i) measured statistics, (ii) our fitted session-level
models, and (iii) the literature 3-category benchmarks, and shows how only
the session-level models reproduce the real power scaling (Fig 13).

Run:  python examples/vran_energy.py
"""

import numpy as np

from repro import Network, NetworkConfig, SimulationConfig, simulate
from repro.io.tables import print_table
from repro.usecases.vran import VranScenario, VranTopology, run_vran_experiment


def main() -> None:
    rng = np.random.default_rng(11)

    print("simulating the measurement campaign...")
    network = Network(NetworkConfig(n_bs=20), rng)
    campaign = simulate(network, SimulationConfig(n_days=1), rng)

    scenario = VranScenario(
        topology=VranTopology(n_es=6, n_ru_per_es=5),
        horizon_s=1500.0,
        warmup_s=400.0,
    )
    print(f"orchestrating {scenario.topology.n_ru} RUs for "
          f"{scenario.horizon_s:.0f} s under every traffic model...")
    outcome = run_vran_experiment(campaign, rng, scenario)

    print_table(
        ["strategy", "median APE #PS", "median APE power", "p95 APE power"],
        [
            [name, f"{stats['n_ps'].median:.1f} %",
             f"{stats['power'].median:.1f} %", f"{stats['power'].p95:.1f} %"]
            for name, stats in outcome.summary().items()
        ],
        title="Error vs measurement-driven orchestration (Fig 13b)",
    )

    warm = slice(int(scenario.warmup_s), None)
    print("mean power draw over the evaluation window (Fig 13c):")
    for name, trace in outcome.traces.items():
        print(f"  {name:12s} {trace.power_w[warm].mean():8.0f} W "
              f"({trace.n_ps[warm].mean():5.1f} active PSs)")


if __name__ == "__main__":
    main()
