"""Quickstart: simulate, fit, inspect, generate.

Runs the library's core loop in under a minute:

1. simulate a small synthetic measurement campaign (the stand-in for the
   paper's proprietary nationwide trace);
2. fit the session-level model of one service — the released parameter
   tuple [mu, sigma, {k, mu, sigma}_n, alpha, beta];
3. generate synthetic sessions from the fitted model and compare their
   statistics with the measurement.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Network, NetworkConfig, SimulationConfig, simulate
from repro.core.service_model import fit_service_model
from repro.dataset.aggregation import pooled_duration_volume, pooled_volume_pdf

SERVICE = "Netflix"


def main() -> None:
    rng = np.random.default_rng(42)

    # 1. A synthetic measurement campaign: 20 BSs, one day.
    network = Network(NetworkConfig(n_bs=20), rng)
    campaign = simulate(network, SimulationConfig(n_days=1), rng)
    print(f"campaign: {len(campaign)} sessions at {len(network)} BSs")

    # 2. Aggregate the Section 3.2 statistics and fit the model.
    sessions = campaign.for_service(SERVICE)
    volume_pdf = pooled_volume_pdf(sessions)
    duration_curve = pooled_duration_volume(sessions)
    model = fit_service_model(SERVICE, volume_pdf, duration_curve)

    print(f"\n{SERVICE}: {len(sessions)} sessions")
    print(f"  main component: mu={model.volume.main.mu:.3f} "
          f"sigma={model.volume.main.sigma:.3f}")
    for n, peak in enumerate(model.volume.peaks, start=1):
        print(f"  peak {n}: {10**peak.mu:.1f} MB  (k={peak.weight:.3f})")
    print(f"  power law: v(d) = {model.duration.alpha:.5f} * d^"
          f"{model.duration.beta:.2f}   (R^2 = {model.duration.r2:.2f})")
    print(f"  volume model EMD vs measurement: "
          f"{model.volume_error_against(volume_pdf):.4f} decades")

    # 3. Generate synthetic sessions and compare.
    batch = model.sample_sessions(rng, 50_000)
    print(f"\nsynthetic sessions: mean volume {batch.volumes_mb.mean():.1f} MB "
          f"(measured {volume_pdf.mean_mb():.1f} MB)")
    print(f"median duration {np.median(batch.durations_s):.0f} s, "
          f"median throughput {np.median(batch.throughput_mbps):.3f} Mbps")


if __name__ == "__main__":
    main()
