"""Network-slicing capacity planning (the Section 6.1 use case).

An operator serves 28 Service Providers, each with its own slice and a
95 % SLA.  This example runs the full experiment — measurement campaign,
model fitting, three allocation strategies, SLA scoring — and prints the
Table-2-style comparison plus the Fig-12-style view of one slice.

Run:  python examples/slicing_capacity_planning.py
"""

import numpy as np

from repro.io.tables import print_table
from repro.usecases.slicing import SlicingScenario, run_slicing_experiment


def main() -> None:
    scenario = SlicingScenario(n_antennas=10, n_days=2, n_model_days=4)
    print("running the slicing experiment "
          f"({scenario.n_antennas} antennas, {scenario.n_days} days)...")
    outcome = run_slicing_experiment(np.random.default_rng(7), scenario)

    print_table(
        ["strategy", "time with no dropped traffic", "std across slices"],
        [
            [name, f"{100 * r.mean_satisfaction:.2f} %",
             f"{100 * r.std_satisfaction:.2f} %"]
            for name, r in outcome.results.items()
        ],
        title="SLA satisfaction (Table 2)",
    )

    # The Fig 12 view: Facebook's slice at the busiest antenna.
    demand, capacity = outcome.timeseries("model", "Facebook", antenna_pos=9)
    peak_demand = demand[outcome.peak_mask]
    print("Facebook slice at the busiest antenna:")
    print(f"  allocated capacity : {capacity:9.1f} MB/min")
    print(f"  median peak demand : {np.median(peak_demand):9.1f} MB/min")
    print(f"  maximum peak demand: {peak_demand.max():9.1f} MB/min")
    print(f"  coverage           : "
          f"{100 * (peak_demand <= capacity).mean():.2f} % of peak minutes")
    print("\nNote how the allocation sits far below the demand peaks —")
    print("dimensioning on peaks would waste reserved resources (Fig 12).")


if __name__ == "__main__":
    main()
