"""Application-layer sessions: the paper's future-work layer.

Footnote 1 of the paper notes that one application session may open
several transport sessions — per chat for messaging, in parallel for bulk
transfers — and defers their joint analysis to future work.  This example
expands application-session arrivals into transport flows and contrasts
the two layers' statistics.

Run:  python examples/app_layer_sessions.py
"""

import numpy as np

from repro.dataset.appsessions import (
    DEFAULT_APP_PROFILES,
    expand_app_sessions,
)
from repro.io.tables import print_table


def main() -> None:
    rng = np.random.default_rng(21)
    n_app_sessions = 5000

    rows = []
    for service in ("WhatsApp", "Netflix", "Apple iCloud"):
        minutes = rng.integers(480, 1320, n_app_sessions)  # daytime
        table = expand_app_sessions(
            service,
            minutes,
            np.zeros(n_app_sessions, dtype=int),
            np.zeros(n_app_sessions, dtype=int),
            rng,
        )
        flows_per_app = table.flows_per_app_session()
        rows.append(
            [
                service,
                DEFAULT_APP_PROFILES[service].mean_flows,
                float(flows_per_app.mean()),
                int(flows_per_app.max()),
                float(np.median(table.app_session_volumes_mb())),
                float(np.median(table.flows.volume_mb)),
            ]
        )

    print_table(
        [
            "service",
            "mean flows (cfg)",
            "mean flows (gen)",
            "max flows",
            "median app-session MB",
            "median flow MB",
        ],
        rows,
        title="Application sessions vs their transport flows",
    )
    print("Messaging apps fan out into many small flows; streaming keeps")
    print("one or two heavy connections; cloud sync parallelizes uploads.")
    print("The paper's transport-level models see the *flow* column —")
    print("this layer reconstructs the application view above it.")


if __name__ == "__main__":
    main()
