"""Session-level mobile traffic models.

Reproduction of *"Characterizing and Modeling Session-Level Mobile Traffic
Demands from Large-Scale Measurements"* (Zanella, Bazco-Nogueras, Ziemlicki,
Fiore — ACM IMC 2023).

The package is organized in four layers:

* :mod:`repro.dataset` — the measurement substrate: a synthetic nationwide
  4G/5G campaign (BS population, circadian arrivals, mobility truncation,
  probe emulation) and the Section 3 aggregation pipeline.
* :mod:`repro.analysis` — the Section 4 characterization toolkit: log-binned
  PDFs, EMD/SED, clustering, ranking, invariance comparisons.
* :mod:`repro.core` — the Section 5 models: bi-modal arrivals, log-normal
  mixture volume PDFs, power-law duration–volume laws, the per-service
  model bank and the model-driven traffic generator.
* :mod:`repro.usecases` — the Section 6 applications: slicing capacity
  allocation and vRAN CU–DU energy orchestration.
"""

from .core.arrivals import ArrivalModel, fit_arrival_model
from .pipeline import (
    ParallelExecutor,
    Pipeline,
    RunContext,
    SerialExecutor,
    make_executor,
)
from .core.duration_model import PowerLawModel, fit_power_law
from .core.generator import TrafficGenerator
from .core.model_bank import ModelBank
from .core.service_mix import ServiceMix
from .core.service_model import SessionLevelModel, fit_service_model
from .core.volume_model import VolumeModel, fit_volume_model
from .dataset.network import Network, NetworkConfig
from .dataset.records import SessionRecord, SessionTable
from .dataset.simulator import SimulationConfig, simulate

__version__ = "1.0.0"

__all__ = [
    "ArrivalModel",
    "ModelBank",
    "Network",
    "NetworkConfig",
    "ParallelExecutor",
    "Pipeline",
    "PowerLawModel",
    "RunContext",
    "SerialExecutor",
    "ServiceMix",
    "SessionLevelModel",
    "SessionRecord",
    "SessionTable",
    "SimulationConfig",
    "TrafficGenerator",
    "VolumeModel",
    "fit_arrival_model",
    "fit_power_law",
    "fit_service_model",
    "fit_volume_model",
    "make_executor",
    "simulate",
    "__version__",
]
