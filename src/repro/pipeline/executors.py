"""Pluggable executors mapping per-unit kernels across workers.

Both executors expose the same order-preserving ``map`` contract, so any
fan-out written against it (per-(day, BS) simulation, per-service fitting)
runs serially or across a process pool without code changes — and, combined
with the seed streams of :mod:`repro.pipeline.context`, with bit-identical
results.

Executors are telemetry-aware: constructed with a
:class:`~repro.obs.telemetry.Telemetry` (as
:meth:`~repro.pipeline.context.RunContext.executor` does), every ``map``
call opens an ``executor`` span, workers report each unit's wall/CPU
timings back to the parent, and the parent commits per-worker and per-unit
spans plus utilization and memory metrics (``executor.units``,
``executor.unit_wall_s``, ``executor.busy_s``, ``executor.peak_rss_mb``).
Telemetry is strictly out-of-band — results and their ordering are
unaffected.

Work functions handed to :class:`ParallelExecutor` must be picklable
module-level callables and their items picklable values — the standard
``ProcessPoolExecutor`` constraints.
"""

from __future__ import annotations

import math
import os
import resource
import sys
import time
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import TYPE_CHECKING, Callable, Iterable, Sequence, TypeVar

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

T = TypeVar("T")
R = TypeVar("R")


def _rss_to_mb(platform: str | None = None) -> float:
    """Divisor turning ``ru_maxrss`` into MiB on the given platform.

    ``ru_maxrss`` is kilobytes on Linux but bytes on macOS.  Derived per
    call (not frozen at import time) so the unit always tracks the
    platform the process actually reports for — and so both branches are
    testable under a mocked ``sys.platform``.
    """
    current = sys.platform if platform is None else platform
    return 1024.0 * 1024.0 if current == "darwin" else 1024.0


def peak_rss_mb() -> float:
    """This process's lifetime peak resident set size, in MiB.

    Monotone by construction (``ru_maxrss`` never decreases), so
    per-phase comparisons need a fresh process per phase.
    """
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / _rss_to_mb()


class ExecutorError(RuntimeError):
    """Raised on invalid executor configuration."""


class WorkerError(ExecutorError):
    """One work unit failed inside a worker process.

    The original exception's type, message and full traceback (captured in
    the worker) are embedded in the error text, and the failing unit is
    identified by its input-order index — so a failing fan-out stage reports
    the *same* unit with the *same* traceback on every run, no matter how
    the pool scheduled the work.  When the executor runs under telemetry,
    the error also carries the failing unit's span context — the enclosing
    stage and the wall time the unit burned inside the worker — so parallel
    failures are attributable without re-running serially.

    Attributes
    ----------
    item_index:
        Input-order index of the failing work item.
    worker_traceback:
        The traceback formatted inside the worker process.
    stage:
        Name of the pipeline stage whose fan-out failed (``None`` when the
        executor ran outside a stage span).
    elapsed_s:
        Wall seconds the unit ran inside the worker before failing
        (``None`` when unknown).
    """

    def __init__(
        self,
        item_index: int,
        worker_traceback: str,
        stage: str | None = None,
        elapsed_s: float | None = None,
    ):
        self.item_index = item_index
        self.worker_traceback = worker_traceback
        self.stage = stage
        self.elapsed_s = elapsed_s
        where = f" of stage {stage!r}" if stage else ""
        took = f" after {elapsed_s:.3f}s" if elapsed_s is not None else ""
        super().__init__(
            f"work item #{item_index}{where} failed in a worker "
            f"process{took}; original worker traceback:\n{worker_traceback}"
        )


class _CapturedCall:
    """Picklable wrapper running one unit and capturing outcome + timings.

    Returns ``(True, result, wall_s, cpu_s, pid, rss_mb)`` on success and
    ``(False, formatted traceback, wall_s, cpu_s, pid, rss_mb)`` on
    failure — strings survive pickling even when the original exception
    object would not, so a failing unit can never break the pool itself.
    The wall/CPU durations and the worker's peak RSS are measured inside
    the worker and travel back as plain floats, which is how parallel runs
    report per-unit span records and per-worker memory gauges.
    """

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(
        self, item: T
    ) -> tuple[bool, object, float, float, int, float]:
        """Run the wrapped function, trading exceptions for markers."""
        start = time.perf_counter()
        start_cpu = time.process_time()
        try:
            result: tuple[bool, object] = (True, self.fn(item))
        except Exception:
            result = (False, traceback.format_exc())
        wall = time.perf_counter() - start
        cpu = time.process_time() - start_cpu
        return (*result, wall, cpu, os.getpid(), peak_rss_mb())


class SerialExecutor:
    """In-process executor: ``map`` is a plain ordered loop.

    The reference implementation the parallel path must match bit-for-bit;
    also the right choice for tiny workloads where process startup would
    dominate.  Under telemetry, each unit is timed and recorded as a
    ``unit`` span beneath the ``map`` executor span.
    """

    jobs = 1

    def __init__(self, telemetry: "Telemetry | None" = None):
        self.telemetry = telemetry

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order."""
        obs = self.telemetry
        if not obs:
            return [fn(item) for item in items]
        materialized = list(items)
        results: list[R] = []
        with obs.span(
            "map", kind="executor",
            attrs={"jobs": 1, "items": len(materialized)},
        ) as span:
            busy = 0.0
            for index, item in enumerate(materialized):
                start = time.perf_counter()
                start_cpu = time.process_time()
                results.append(fn(item))
                wall = time.perf_counter() - start
                busy += wall
                obs.record_span(
                    f"unit-{index}",
                    "unit",
                    wall,
                    time.process_time() - start_cpu,
                    attrs={"index": index},
                )
                obs.metrics.histogram("executor.unit_wall_s").observe(wall)
            span.attrs["busy_s"] = round(busy, 6)
            obs.metrics.counter("executor.units").inc(len(materialized))
            obs.metrics.counter("executor.busy_s").inc(busy)
            obs.metrics.gauge("executor.peak_rss_mb").set(peak_rss_mb())
        return results

    def close(self) -> None:
        """No resources to release; present for interface symmetry."""

    def __enter__(self) -> "SerialExecutor":
        """Enter a no-op context (symmetry with the parallel executor)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Leave the no-op context."""
        self.close()


class ParallelExecutor:
    """Process-pool executor fanning ``map`` across worker processes.

    The pool is created lazily on first use and must be released with
    :meth:`close` (or by using the executor as a context manager).  Results
    are returned in input order, so callers see serial semantics.  Under
    telemetry, workers report each unit's wall/CPU timings back with the
    results, and the parent commits one ``worker`` span per worker process
    plus a ``unit`` span per work item.
    """

    def __init__(self, jobs: int, telemetry: "Telemetry | None" = None):
        if jobs < 1:
            raise ExecutorError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self.telemetry = telemetry
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item across the pool, preserving order.

        A unit that raises does not abort the others mid-flight or tear the
        pool down: every unit runs, and the failure of the *first* failing
        item (in input order) is then re-raised as :class:`WorkerError`
        carrying the original worker traceback plus the unit's span context
        — deterministic regardless of worker scheduling.
        """
        materialized: Sequence[T] = list(items)
        if not materialized:
            return []
        # A handful of chunks per worker balances pickling overhead against
        # load imbalance from heterogeneous unit costs (busy vs. quiet BSs).
        chunksize = max(1, math.ceil(len(materialized) / (self.jobs * 4)))
        obs = self.telemetry
        if not obs:
            outcomes = list(
                self._ensure_pool().map(
                    _CapturedCall(fn), materialized, chunksize=chunksize
                )
            )
            self._raise_first_failure(outcomes, stage=None)
            return [value for _, value, _, _, _, _ in outcomes]
        stage = obs.current_stage()
        with obs.span(
            "map", kind="executor",
            attrs={"jobs": self.jobs, "items": len(materialized)},
        ) as span:
            wall_start = time.perf_counter()
            outcomes = list(
                self._ensure_pool().map(
                    _CapturedCall(fn), materialized, chunksize=chunksize
                )
            )
            map_wall = time.perf_counter() - wall_start
            self._raise_first_failure(outcomes, stage=stage)
            self._record_units(obs, span, outcomes, map_wall)
        return [value for _, value, _, _, _, _ in outcomes]

    @staticmethod
    def _raise_first_failure(outcomes, stage: str | None) -> None:
        """Re-raise the first (input-order) failed unit, if any."""
        for index, (ok, value, wall, _cpu, _pid, _rss) in enumerate(outcomes):
            if not ok:
                raise WorkerError(
                    index, str(value), stage=stage, elapsed_s=wall
                )

    def _record_units(self, obs, span, outcomes, map_wall: float) -> None:
        """Commit worker + unit spans and utilization metrics for one map.

        One ``worker`` span per distinct worker process (in pid order, so
        the record order is stable), each unit attached beneath its
        worker.  Utilization is the summed in-worker busy time over the
        pool's wall-time capacity for this map call; the pool's peak RSS
        gauge is the maximum lifetime peak across its worker processes.
        """
        by_pid: dict[int, list[tuple[int, float, float, float]]] = {}
        for index, (_ok, _value, wall, cpu, pid, rss) in enumerate(outcomes):
            by_pid.setdefault(pid, []).append((index, wall, cpu, rss))
        busy = 0.0
        pool_rss = 0.0
        for slot, pid in enumerate(sorted(by_pid)):
            units = by_pid[pid]
            worker_wall = sum(wall for _, wall, _, _ in units)
            worker_cpu = sum(cpu for _, _, cpu, _ in units)
            worker_rss = max(rss for _, _, _, rss in units)
            busy += worker_wall
            pool_rss = max(pool_rss, worker_rss)
            worker_attrs = {
                "pid": pid,
                "units": len(units),
                "peak_rss_mb": round(worker_rss, 1),
            }
            if obs.trace_id is not None:
                worker_attrs["trace"] = obs.trace_id
            worker_span = obs.record_span(
                f"worker-{slot}",
                "worker",
                worker_wall,
                worker_cpu,
                attrs=worker_attrs,
            )
            parent = worker_span.span_id if worker_span else None
            for index, wall, cpu, _rss in units:
                obs.record_span(
                    f"unit-{index}",
                    "unit",
                    wall,
                    cpu,
                    attrs={"index": index},
                    parent_id=parent,
                )
                obs.metrics.histogram("executor.unit_wall_s").observe(wall)
        span.attrs["busy_s"] = round(busy, 6)
        span.attrs["workers"] = len(by_pid)
        if map_wall > 0:
            utilization = busy / (self.jobs * map_wall)
            span.attrs["utilization"] = round(utilization, 4)
            obs.metrics.gauge("executor.utilization").set(utilization)
        obs.metrics.counter("executor.units").inc(len(outcomes))
        obs.metrics.counter("executor.busy_s").inc(busy)
        obs.metrics.gauge("executor.peak_rss_mb").set(pool_rss)

    def close(self) -> None:
        """Shut the pool down and reap the worker processes."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        """Enter a context that owns the worker pool."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release the worker pool on context exit."""
        self.close()


def default_jobs() -> int:
    """A sensible worker count for this machine (its CPU count)."""
    return os.cpu_count() or 1


def make_executor(
    jobs: int, telemetry: "Telemetry | None" = None
) -> SerialExecutor | ParallelExecutor:
    """Executor for a ``--jobs N`` setting: serial at 1, processes above.

    ``telemetry`` (optional) makes the executor report per-unit spans and
    utilization metrics; pass the run's
    :class:`~repro.obs.telemetry.Telemetry` or leave ``None`` for the
    zero-overhead uninstrumented path.
    """
    if jobs < 1:
        raise ExecutorError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor(telemetry=telemetry)
    return ParallelExecutor(jobs, telemetry=telemetry)
