"""Pluggable executors mapping per-unit kernels across workers.

Both executors expose the same order-preserving ``map`` contract, so any
fan-out written against it (per-(day, BS) simulation, per-service fitting)
runs serially or across a process pool without code changes — and, combined
with the seed streams of :mod:`repro.pipeline.context`, with bit-identical
results.

Work functions handed to :class:`ParallelExecutor` must be picklable
module-level callables and their items picklable values — the standard
``ProcessPoolExecutor`` constraints.
"""

from __future__ import annotations

import math
import os
import traceback
from concurrent.futures import ProcessPoolExecutor
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")


class ExecutorError(RuntimeError):
    """Raised on invalid executor configuration."""


class WorkerError(ExecutorError):
    """One work unit failed inside a worker process.

    The original exception's type, message and full traceback (captured in
    the worker) are embedded in the error text, and the failing unit is
    identified by its input-order index — so a failing fan-out stage reports
    the *same* unit with the *same* traceback on every run, no matter how
    the pool scheduled the work.

    Attributes
    ----------
    item_index:
        Input-order index of the failing work item.
    worker_traceback:
        The traceback formatted inside the worker process.
    """

    def __init__(self, item_index: int, worker_traceback: str):
        self.item_index = item_index
        self.worker_traceback = worker_traceback
        super().__init__(
            f"work item #{item_index} failed in a worker process; "
            f"original worker traceback:\n{worker_traceback}"
        )


class _CapturedCall:
    """Picklable wrapper running one unit and capturing any exception.

    Returns ``(True, result)`` on success and ``(False, formatted
    traceback)`` on failure — strings survive pickling even when the
    original exception object would not, so a failing unit can never break
    the pool itself.
    """

    def __init__(self, fn: Callable[[T], R]):
        self.fn = fn

    def __call__(self, item: T) -> tuple[bool, object]:
        """Run the wrapped function, trading exceptions for markers."""
        try:
            return True, self.fn(item)
        except Exception:
            return False, traceback.format_exc()


class SerialExecutor:
    """In-process executor: ``map`` is a plain ordered loop.

    The reference implementation the parallel path must match bit-for-bit;
    also the right choice for tiny workloads where process startup would
    dominate.
    """

    jobs = 1

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item, preserving input order."""
        return [fn(item) for item in items]

    def close(self) -> None:
        """No resources to release; present for interface symmetry."""

    def __enter__(self) -> "SerialExecutor":
        """Enter a no-op context (symmetry with the parallel executor)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Leave the no-op context."""
        self.close()


class ParallelExecutor:
    """Process-pool executor fanning ``map`` across worker processes.

    The pool is created lazily on first use and must be released with
    :meth:`close` (or by using the executor as a context manager).  Results
    are returned in input order, so callers see serial semantics.
    """

    def __init__(self, jobs: int):
        if jobs < 1:
            raise ExecutorError(f"jobs must be >= 1, got {jobs}")
        self.jobs = int(jobs)
        self._pool: ProcessPoolExecutor | None = None

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.jobs)
        return self._pool

    def map(self, fn: Callable[[T], R], items: Iterable[T]) -> list[R]:
        """Apply ``fn`` to every item across the pool, preserving order.

        A unit that raises does not abort the others mid-flight or tear the
        pool down: every unit runs, and the failure of the *first* failing
        item (in input order) is then re-raised as :class:`WorkerError`
        carrying the original worker traceback — deterministic regardless of
        worker scheduling.
        """
        materialized: Sequence[T] = list(items)
        if not materialized:
            return []
        # A handful of chunks per worker balances pickling overhead against
        # load imbalance from heterogeneous unit costs (busy vs. quiet BSs).
        chunksize = max(1, math.ceil(len(materialized) / (self.jobs * 4)))
        outcomes = list(
            self._ensure_pool().map(
                _CapturedCall(fn), materialized, chunksize=chunksize
            )
        )
        for index, (ok, value) in enumerate(outcomes):
            if not ok:
                raise WorkerError(index, str(value))
        return [value for _, value in outcomes]

    def close(self) -> None:
        """Shut the pool down and reap the worker processes."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "ParallelExecutor":
        """Enter a context that owns the worker pool."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Release the worker pool on context exit."""
        self.close()


def default_jobs() -> int:
    """A sensible worker count for this machine (its CPU count)."""
    return os.cpu_count() or 1


def make_executor(jobs: int) -> SerialExecutor | ParallelExecutor:
    """Executor for a ``--jobs N`` setting: serial at 1, processes above."""
    if jobs < 1:
        raise ExecutorError(f"jobs must be >= 1, got {jobs}")
    if jobs == 1:
        return SerialExecutor()
    return ParallelExecutor(jobs)
