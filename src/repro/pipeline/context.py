"""Deterministic seed streams and shared state of one pipeline run.

Reproducibility at scale requires that every work unit — a (day, BS) cell of
a measurement campaign, a fitted service, a generated BS — draws from its
*own* random stream, derived from the run's root seed and the unit's
identity alone.  ``np.random.SeedSequence`` provides exactly this: a child
sequence built with a ``spawn_key`` is statistically independent of every
other child and of the parent, and depends only on ``(root entropy,
spawn_key)`` — not on how many other streams were created before it or on
which worker creates it.  Execution order and parallelism therefore cannot
change results.

String stream names are folded to stable 64-bit words with SHA-256, so
``stream_rng(seed, "simulate", day, bs_id)`` is reproducible across
processes and Python versions (no reliance on ``hash()`` randomization).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..io.cache import ArtifactCache
    from ..obs.telemetry import Telemetry

#: Root seeds drawn from a Generator are taken uniformly below this bound.
MAX_ROOT_SEED = 2**63


class SeedStreamError(ValueError):
    """Raised on invalid seed-stream keys or root seeds."""


def _key_word(part: int | str) -> int:
    """Map one key element to a non-negative integer spawn-key word."""
    if isinstance(part, (int, np.integer)) and not isinstance(part, bool):
        if part < 0:
            raise SeedStreamError(f"stream key ints must be >= 0, got {part}")
        return int(part)
    if isinstance(part, str):
        digest = hashlib.sha256(part.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big")
    raise SeedStreamError(
        f"stream key elements must be ints or strings, got {type(part).__name__}"
    )


def coerce_root_seed(seed: int | np.integer | np.random.Generator) -> int:
    """Normalize a root-seed argument to a plain non-negative integer.

    Accepts either an explicit integer seed or a ``Generator`` (the
    historical entry-point signature), from which one 63-bit root seed is
    drawn — so twin generators still yield twin campaigns.
    """
    if isinstance(seed, np.random.Generator):
        return int(seed.integers(0, MAX_ROOT_SEED))
    if isinstance(seed, (int, np.integer)) and not isinstance(seed, bool):
        if seed < 0:
            raise SeedStreamError(f"root seed must be >= 0, got {seed}")
        return int(seed)
    raise SeedStreamError(
        f"seed must be an int or np.random.Generator, got {type(seed).__name__}"
    )


def stream_seed(root_seed: int, *key: int | str) -> np.random.SeedSequence:
    """Child ``SeedSequence`` of ``root_seed`` for one named work unit.

    ``key`` identifies the unit (e.g. ``("bs-day", day, bs_id)``); equal keys
    give equal sequences, different keys independent ones, regardless of the
    order in which streams are materialized.
    """
    if not key:
        raise SeedStreamError("stream key must not be empty")
    return np.random.SeedSequence(
        int(root_seed), spawn_key=tuple(_key_word(part) for part in key)
    )


def stream_rng(root_seed: int, *key: int | str) -> np.random.Generator:
    """Fresh ``Generator`` seeded from :func:`stream_seed`."""
    return np.random.default_rng(stream_seed(root_seed, *key))


def mint_trace_id(root_seed: int) -> str:
    """Run-scoped trace identifier, derived from the root seed alone.

    Provenance must be deterministic here: trace ids flow into campaign
    checkpoints and merged-aggregate metadata, and same-seed runs are
    required to be byte-identical — so the id is a pure function of the
    seed (no wall clock, no randomness, per the D-series lint rules).  It
    therefore identifies the *lineage* of a run (seed → outputs), not one
    wall-clock execution; two same-seed runs share it by design, exactly
    because their outputs are indistinguishable.
    """
    digest = hashlib.sha256(f"repro-trace:{int(root_seed)}".encode("utf-8"))
    return digest.hexdigest()[:32]


@dataclass(frozen=True)
class RunContext:
    """Shared state of one pipeline run: root seed, parallelism, cache.

    Attributes
    ----------
    seed:
        Root seed of the run; every random stream is derived from it.
    jobs:
        Worker-process count for the fan-out stages (1 = serial).
    cache:
        Optional :class:`~repro.io.cache.ArtifactCache`; when set, stages
        that declare an :class:`~repro.pipeline.stages.ArtifactSpec` are
        skipped on matching keys.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` collecting the
        run's spans, metrics and stage events.  Strictly out-of-band: it
        never feeds seed streams or cache keys, so enabling it cannot
        change any artifact.
    trace_id:
        Run-scoped provenance identifier.  Minted deterministically from
        the seed at construction (:func:`mint_trace_id`) when not given
        explicitly; flows through worker spans, campaign checkpoints and
        served aggregates so any downstream float is traceable to the
        run lineage that produced it.
    """

    seed: int
    jobs: int = 1
    cache: "ArtifactCache | None" = None
    telemetry: "Telemetry | None" = None
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise SeedStreamError("seed must be >= 0")
        if self.jobs < 1:
            raise SeedStreamError("jobs must be >= 1")
        if self.trace_id is None:
            object.__setattr__(self, "trace_id", mint_trace_id(self.seed))

    def seed_sequence(self, *key: int | str) -> np.random.SeedSequence:
        """The run's seed stream for one named work unit."""
        return stream_seed(self.seed, *key)

    def rng(self, *key: int | str) -> np.random.Generator:
        """Fresh generator on the run's stream for one named work unit."""
        return stream_rng(self.seed, *key)

    @property
    def obs(self) -> "Telemetry":
        """The run's telemetry, or the shared no-op when none is set.

        Instrumented code calls this unconditionally — with no telemetry
        configured it gets the falsy
        :data:`~repro.obs.telemetry.NULL_TELEMETRY`, whose spans and
        metrics are free no-ops.
        """
        if self.telemetry is not None:
            return self.telemetry
        from ..obs.telemetry import NULL_TELEMETRY

        return NULL_TELEMETRY

    def executor(self):
        """New executor matching the run's ``jobs`` setting.

        The caller owns the executor's lifetime (use it as a context
        manager so worker processes are reaped).  The executor carries the
        run's telemetry, so fan-outs report per-unit spans and worker
        utilization.
        """
        from .executors import make_executor

        return make_executor(self.jobs, telemetry=self.telemetry)
