"""Standard stages wiring the library's layers into pipelines.

Builders for the named stages the CLI (and scripts) assemble into runs:

* ``network`` — construct the synthetic BS population;
* ``simulate`` — run the measurement campaign across (day, BS) seed-stream
  work units, cached as a compressed ``.npz`` session table;
* ``fit-models`` — per-service session-level model fitting fan-out;
* ``fit-arrivals`` — per-decile bi-modal arrival model fitting;
* ``read-trace`` — load a campaign from a CSV(.gz) trace instead;
* ``generate`` — synthesize a campaign from a ``TrafficGenerator`` via the
  batched seed-stream engine, spooled chunk-wise through the cache;
* ``validate`` — check a campaign against the paper's stylized facts;
* ``verify`` — the statistical fidelity gate: measure the paper's headline
  statistics on the run's artifacts and judge them against the golden
  baseline of tolerance bands.

Each builder closes over its scalar configuration and returns a
:class:`~repro.pipeline.stages.Stage`; the cacheable ones declare the
configuration in their :class:`~repro.pipeline.stages.ArtifactSpec` key so
any change — seed, scale, mobility, catalog — cleanly misses the cache.
"""

from __future__ import annotations

from pathlib import Path

from ..io.cache import load_table, save_table
from .stages import ArtifactSpec, Stage

#: Default BS count of pipeline-built networks (mirrors the CLI default).
DEFAULT_N_BS = 50


def network_stage(n_bs: int) -> Stage:
    """Stage building the synthetic BS population on the ``network`` stream."""
    from ..dataset.network import Network, NetworkConfig

    def build(ctx, artifacts):
        return Network(NetworkConfig(n_bs=n_bs), ctx.rng("network"))

    return Stage(name="network", produces="network", fn=build)


def simulate_stage(n_days: int) -> Stage:
    """Stage simulating the measurement campaign (cached by config + seed).

    The campaign is keyed by the run seed, the network configuration, the
    simulation configuration and the service catalog — the full set of
    facts that determine its content — and persisted as ``.npz``, so a
    repeated ``fit``/``validate`` run skips re-simulation entirely.
    """
    from ..dataset.records import SERVICE_NAMES
    from ..dataset.simulator import SimulationConfig, simulate

    config = SimulationConfig(n_days=n_days)

    def run(ctx, artifacts):
        with ctx.executor() as executor:
            return simulate(
                artifacts["network"], config, ctx.seed, executor=executor
            )

    def key_parts(ctx, artifacts):
        return {
            "artifact": "campaign",
            "seed": ctx.seed,
            "network": artifacts["network"].config,
            "simulation": config,
            "services": list(SERVICE_NAMES),
        }

    return Stage(
        name="simulate",
        produces="campaign",
        requires=("network",),
        fn=run,
        spec=ArtifactSpec(
            kind="campaign",
            suffix=".npz",
            save=save_table,
            load=load_table,
            key_parts=key_parts,
        ),
    )


def read_trace_stage(path: str | Path) -> Stage:
    """Stage loading the campaign from an existing CSV(.gz) trace."""
    from ..io.traces import read_trace

    def run(ctx, artifacts):
        return read_trace(path)

    return Stage(name="read-trace", produces="campaign", fn=run)


def fit_models_stage(min_sessions: int = 500) -> Stage:
    """Stage fitting one session-level model per service (worker fan-out)."""
    from ..core.model_bank import ModelBank

    def run(ctx, artifacts):
        with ctx.executor() as executor:
            return ModelBank.fit_from_table(
                artifacts["campaign"],
                min_sessions=min_sessions,
                executor=executor,
            )

    return Stage(
        name="fit-models", produces="bank", requires=("campaign",), fn=run
    )


def fit_arrivals_stage(n_days: int) -> Stage:
    """Stage fitting the per-decile bi-modal arrival models (Fig 3)."""
    from ..core.arrivals import fit_decile_arrival_models

    def run(ctx, artifacts):
        fitted = fit_decile_arrival_models(
            artifacts["campaign"], artifacts["network"], n_days
        )
        return {f"decile-{decile}": model for decile, model in fitted.items()}

    return Stage(
        name="fit-arrivals",
        produces="arrivals",
        requires=("campaign", "network"),
        fn=run,
    )


def generate_stage(
    n_days: int,
    chunk_sessions: int | None = None,
    materialize: bool = True,
    arena_mb: float | None = None,
    memmap_spool: bool = False,
) -> Stage:
    """Stage synthesizing a campaign from a ``generator`` artifact.

    Runs the batched engine of
    :class:`~repro.core.generator.TrafficGenerator` under the run context's
    executor and root seed; every (day, BS) unit draws from its own spawned
    seed stream, so the produced campaign is byte-identical for any
    ``--jobs`` or ``chunk_sessions`` setting.  With a cache on the context,
    chunks are spooled through it (bounded peak memory, resumable);
    ``materialize=False`` then keeps only the campaign totals, never the
    full table.  ``arena_mb`` preallocates the reused session arena at a
    fixed budget instead of sizing it from chunk expectations;
    ``memmap_spool`` spools chunks as raw columnar segments instead of
    ``.npz`` archives, so downstream consumers can memory-map them.
    Produces a :class:`~repro.core.generator.GenerationResult`.
    """
    from ..core.generator import GenerationResult
    from ..dataset.records import SessionArena

    def run(ctx, artifacts):
        generator = artifacts["generator"]
        with ctx.executor() as executor:
            if ctx.cache is not None:
                arena = (
                    SessionArena.from_budget_mb(arena_mb)
                    if arena_mb is not None
                    else None
                )
                manifest = generator.spool_campaign(
                    n_days,
                    ctx.seed,
                    ctx.cache,
                    executor=executor,
                    chunk_sessions=chunk_sessions,
                    telemetry=ctx.telemetry,
                    arena=arena,
                    memmap_spool=memmap_spool,
                )
                return GenerationResult(
                    n_sessions=manifest.n_sessions,
                    total_volume_mb=manifest.total_volume_mb,
                    n_chunks=len(manifest.chunk_keys),
                    chunk_keys=manifest.chunk_keys,
                    table=manifest.load(ctx.cache) if materialize else None,
                )
            table = generator.generate_campaign(
                n_days,
                ctx.seed,
                executor=executor,
                chunk_sessions=chunk_sessions,
            )
            ctx.obs.metrics.counter("generator.sessions").inc(len(table))
            return GenerationResult(
                n_sessions=len(table),
                total_volume_mb=table.total_volume_mb(),
                n_chunks=len(generator.plan_chunks(n_days, chunk_sessions)),
                table=table if materialize else None,
            )

    def summarize(result):
        return {
            "sessions": result.n_sessions,
            "chunks": result.n_chunks,
            "GB": round(result.total_volume_mb / 1e3, 1),
        }

    return Stage(
        name="generate",
        produces="generated",
        requires=("generator",),
        fn=run,
        summarize=summarize,
    )


def verify_stage(baseline, n_days: int) -> Stage:
    """Stage running the statistical fidelity gate on the run's artifacts.

    Measures the paper's headline statistics (service ranking, volume and
    duration model fidelity, arrival-process recovery, circadian structure)
    on the campaign/network/bank artifacts and judges them against the
    ``baseline`` tolerance bands.  The produced ``fidelity`` artifact is a
    :class:`~repro.verify.report.FidelityReport`; its verdict counts are
    surfaced through the stage-event payload, so observers see the outcome
    without touching the artifact namespace.
    """

    def run(ctx, artifacts):
        # Imported lazily: repro.verify's runner assembles pipelines from
        # this module, so a module-level import would be circular.
        from ..verify.checks import evaluate, measure_all

        measured = measure_all(
            artifacts["campaign"],
            artifacts["network"],
            artifacts["bank"],
            n_days,
            ctx.rng("verify"),
        )
        report = evaluate(measured, baseline)
        report.meta.update(
            {"seed": ctx.seed, "campaign": baseline.campaign.to_dict()}
        )
        report.record_metrics(ctx.obs.metrics)
        return report

    return Stage(
        name="verify",
        produces="fidelity",
        requires=("campaign", "network", "bank"),
        fn=run,
        summarize=lambda report: report.summary(),
    )


def validate_stage(n_days: int) -> Stage:
    """Stage validating the campaign against the paper's stylized facts."""
    from ..analysis.validation import validate_campaign

    def run(ctx, artifacts):
        return validate_campaign(artifacts["campaign"], n_days)

    return Stage(
        name="validate", produces="report", requires=("campaign",), fn=run
    )
