"""Named stages over typed artifacts — the run architecture of the library.

A :class:`Pipeline` is an ordered list of :class:`Stage` objects.  Each
stage consumes named artifacts produced by earlier stages (or supplied as
initial inputs), produces exactly one named artifact, and may declare an
:class:`ArtifactSpec` describing how its product is content-keyed and
persisted — in which case a matching entry in the run's
:class:`~repro.io.cache.ArtifactCache` short-circuits the computation.

The wiring is validated up front (unique names, no artifact produced twice,
every requirement satisfiable), so a mis-assembled pipeline fails before any
expensive stage runs.  Execution emits one :class:`StageEvent` per stage —
the CLI surfaces them so cache hits and stage timings are visible.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from .context import RunContext


class PipelineError(ValueError):
    """Raised on invalid pipeline wiring or missing artifacts."""


@dataclass(frozen=True)
class ArtifactSpec:
    """How a stage's product is content-keyed and persisted.

    Attributes
    ----------
    kind:
        Cache subdirectory / artifact family name (e.g. ``"campaign"``).
    suffix:
        Filename suffix of the persisted form (e.g. ``".npz"``).
    save:
        ``save(path, value)`` — write the artifact to ``path``.
    load:
        ``load(path) -> value`` — inverse of ``save``.
    key_parts:
        ``key_parts(ctx, artifacts) -> mapping`` — the configuration facts
        that determine the artifact's content; hashed into the cache key.
    """

    kind: str
    suffix: str
    save: Callable[[Path, Any], None]
    load: Callable[[Path], Any]
    key_parts: Callable[[RunContext, dict[str, Any]], Mapping[str, Any]]


@dataclass(frozen=True)
class Stage:
    """One named step of a pipeline.

    Attributes
    ----------
    name:
        Stage name, unique within the pipeline (e.g. ``"simulate"``).
    produces:
        Name of the artifact the stage returns.
    fn:
        ``fn(ctx, artifacts) -> value`` — the stage body; ``artifacts`` maps
        every previously produced artifact name to its value.
    requires:
        Artifact names the stage consumes; checked before the body runs.
    spec:
        Optional :class:`ArtifactSpec` enabling caching of the product.
    summarize:
        Optional ``summarize(value) -> mapping`` turning the stage's product
        into a small JSON-able payload attached to the emitted
        :class:`StageEvent` (on cache hits too) — how result-bearing stages
        such as the fidelity gate surface their outcome through the event
        mechanism.
    """

    name: str
    produces: str
    fn: Callable[[RunContext, dict[str, Any]], Any]
    requires: tuple[str, ...] = ()
    spec: ArtifactSpec | None = None
    summarize: Callable[[Any], Mapping[str, Any]] | None = None


@dataclass(frozen=True)
class StageEvent:
    """Outcome of one executed stage (for logs and cache introspection).

    ``payload`` carries the stage's machine-readable summary (built by the
    stage's ``summarize`` hook), so observers can stream structured results
    — e.g. the fidelity gate's per-check verdict counts — without reaching
    into the artifact namespace.  ``cache_status`` records the stage's
    cache provenance — ``"hit"`` for a replayed artifact, ``"miss"`` for a
    freshly computed (and stored) one, ``None`` for an uncacheable stage or
    a run without a cache — so logs distinguish cached replays from fresh
    runs.
    """

    stage: str
    status: str  # "computed" | "cached"
    seconds: float
    key: str | None = None
    payload: Mapping[str, Any] | None = None
    cache_status: str | None = None  # "hit" | "miss" | None

    def describe(self) -> str:
        """One-line human-readable rendering of the event.

        Cache provenance is always spelled out with the artifact key's
        prefix: ``cache hit [1f0c9a2e]`` for replays, ``cache miss ->
        1f0c9a2e`` for fresh computations of cacheable stages.
        """
        extra = ""
        if self.payload:
            parts = ", ".join(f"{k}={v}" for k, v in self.payload.items())
            extra = f" [{parts}]"
        prefix = self.key[:8] if self.key else None
        if self.status == "cached":
            return f"{self.stage}: cache hit [{prefix}]{extra}"
        suffix = ""
        if self.cache_status == "miss":
            suffix = f", cache miss -> {prefix}"
        elif self.key:
            suffix = f", key {prefix}"
        return f"{self.stage}: computed in {self.seconds:.2f}s{suffix}{extra}"


@dataclass
class PipelineRun:
    """Result of :meth:`Pipeline.run`: artifacts plus per-stage events."""

    artifacts: dict[str, Any] = field(default_factory=dict)
    events: list[StageEvent] = field(default_factory=list)

    def artifact(self, name: str) -> Any:
        """Value of one named artifact."""
        try:
            return self.artifacts[name]
        except KeyError:
            raise PipelineError(f"no artifact named {name!r}") from None

    def event(self, stage: str) -> StageEvent:
        """The event emitted by one named stage."""
        for event in self.events:
            if event.stage == stage:
                return event
        raise PipelineError(f"no stage named {stage!r} ran")


class Pipeline:
    """An ordered, validated sequence of stages."""

    def __init__(self, stages: Sequence[Stage], inputs: tuple[str, ...] = ()):
        self.stages = tuple(stages)
        self.inputs = tuple(inputs)
        if not self.stages:
            raise PipelineError("a pipeline needs at least one stage")
        names = [stage.name for stage in self.stages]
        if len(set(names)) != len(names):
            raise PipelineError(f"duplicate stage names in {names}")
        available = set(self.inputs)
        for stage in self.stages:
            missing = [r for r in stage.requires if r not in available]
            if missing:
                raise PipelineError(
                    f"stage {stage.name!r} requires {missing} which no "
                    "earlier stage produces and no declared input provides"
                )
            if stage.produces in available:
                raise PipelineError(
                    f"artifact {stage.produces!r} produced twice"
                )
            available.add(stage.produces)

    def run(
        self,
        ctx: RunContext,
        initial: Mapping[str, Any] | None = None,
        observer: Callable[[StageEvent], None] | None = None,
    ) -> PipelineRun:
        """Execute every stage in order.

        ``initial`` seeds the artifact namespace (it must cover the declared
        ``inputs``); ``observer`` is called with each :class:`StageEvent` as
        it happens, letting callers stream progress.  When no observer is
        given and the context carries telemetry, the telemetry's
        verbosity-aware :meth:`~repro.obs.telemetry.Telemetry.observe`
        renderer is used — the single event renderer every subcommand
        shares.
        """
        artifacts: dict[str, Any] = dict(initial or {})
        missing = [name for name in self.inputs if name not in artifacts]
        if missing:
            raise PipelineError(f"missing initial artifacts: {missing}")
        if observer is None and ctx.telemetry is not None:
            observer = ctx.telemetry.observe
        events: list[StageEvent] = []
        for stage in self.stages:
            event, value = self._run_stage(stage, ctx, artifacts)
            artifacts[stage.produces] = value
            events.append(event)
            if observer is not None:
                observer(event)
        return PipelineRun(artifacts=artifacts, events=events)

    def _run_stage(
        self, stage: Stage, ctx: RunContext, artifacts: dict[str, Any]
    ) -> tuple[StageEvent, Any]:
        for requirement in stage.requires:
            if requirement not in artifacts:
                raise PipelineError(
                    f"stage {stage.name!r} missing artifact {requirement!r}"
                )
        obs = ctx.obs
        with obs.span(stage.name, kind="stage") as span:
            event, value = self._execute_stage(stage, ctx, artifacts, obs)
            span.attrs["status"] = event.status
            if event.key is not None:
                span.attrs["key"] = event.key
            if event.cache_status is not None:
                span.attrs["cache"] = event.cache_status
        obs.metrics.counter("pipeline.stages").inc()
        return event, value

    def _execute_stage(
        self, stage: Stage, ctx: RunContext, artifacts: dict[str, Any], obs
    ) -> tuple[StageEvent, Any]:
        """Run one stage body (or replay its cached artifact)."""
        key: str | None = None
        cache_status: str | None = None
        spec = stage.spec
        if spec is not None and ctx.cache is not None:
            # Imported lazily: repro.io pulls in the model layers, which in
            # turn import the dataset package this engine underpins.
            from ..io.cache import content_key

            key = content_key(dict(spec.key_parts(ctx, artifacts)))
            cache_status = "miss"
            if ctx.cache.has(spec.kind, key, spec.suffix):
                from ..io.cache import CacheError

                start = time.perf_counter()
                try:
                    value = ctx.cache.fetch(
                        spec.kind, key, spec.suffix, spec.load
                    )
                except CacheError:
                    # An unreadable entry (truncated, hand-edited, stale
                    # format) must never kill the run: recompute and let
                    # the store below overwrite the broken artifact.
                    pass
                else:
                    seconds = time.perf_counter() - start
                    event = StageEvent(
                        stage.name, "cached", seconds, key,
                        payload=self._summarize(stage, value),
                        cache_status="hit",
                    )
                    return event, value
        start = time.perf_counter()
        with obs.profile_stage(stage.name):
            value = stage.fn(ctx, artifacts)
        seconds = time.perf_counter() - start
        if spec is not None and ctx.cache is not None and key is not None:
            ctx.cache.store(
                spec.kind, key, spec.suffix, lambda path: spec.save(path, value)
            )
        event = StageEvent(
            stage.name, "computed", seconds, key,
            payload=self._summarize(stage, value),
            cache_status=cache_status,
        )
        return event, value

    @staticmethod
    def _summarize(stage: Stage, value: Any) -> Mapping[str, Any] | None:
        if stage.summarize is None:
            return None
        return dict(stage.summarize(value))
