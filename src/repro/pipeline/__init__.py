"""Staged run engine: seed streams, executors, pipelines, cached artifacts.

The end-to-end flow of the library (simulate → aggregate → fit → generate →
validate) is expressed as a :class:`~repro.pipeline.stages.Pipeline` of named
stages over typed artifacts.  Three properties make the flow scale the way
the paper's nationwide processing does (each spatial/temporal unit an
independent work item):

* **seed streams** — :class:`~repro.pipeline.context.RunContext` derives an
  independent RNG per (day, BS) work unit via ``np.random.SeedSequence``
  spawn keys, so results never depend on iteration order or worker count;
* **pluggable executors** — :class:`~repro.pipeline.executors.SerialExecutor`
  and the process-backed :class:`~repro.pipeline.executors.ParallelExecutor`
  map per-unit kernels across workers with identical semantics;
* **artifact caching** — stages declare how their product is keyed and
  persisted (:class:`~repro.pipeline.stages.ArtifactSpec`), so repeated runs
  with unchanged config/seed skip re-simulation entirely.
"""

from .context import RunContext, coerce_root_seed, stream_rng, stream_seed
from .executors import (
    ParallelExecutor,
    SerialExecutor,
    make_executor,
)
from .stages import (
    ArtifactSpec,
    Pipeline,
    PipelineError,
    PipelineRun,
    Stage,
    StageEvent,
)

__all__ = [
    "ArtifactSpec",
    "ParallelExecutor",
    "Pipeline",
    "PipelineError",
    "PipelineRun",
    "RunContext",
    "SerialExecutor",
    "Stage",
    "StageEvent",
    "coerce_root_seed",
    "make_executor",
    "stream_rng",
    "stream_seed",
]
