"""Dependency-free threaded HTTP query API over the aggregate store.

A plain WSGI application (:class:`ServeApp`) on the stdlib
``wsgiref``/``socketserver`` stack — no web framework — serving the five
endpoint families of the statistics service:

========================  ====================================================
``GET /v1/campaigns``     ingested campaigns (digests, sizes, manifests)
``GET /v1/services/shares``  per-service session/traffic shares (Table 1/Fig 4)
``GET /v1/pdf/volume``    campaign volume PDF on the global log grid
``GET /v1/pdf/duration``  campaign duration PDF on the Section 3.2 bins
``GET /v1/arrivals/deciles``  decile arrival parameters of the model release
``GET /v1/fidelity``      aggregate-only fidelity verdicts
``POST /v1/submit``       token-authenticated JSONL ingest
========================  ====================================================

Caching: every response carries a strong ``ETag`` derived from the
underlying sketch digest (:func:`repro.serve.views.document_etag`); a
request repeating the tag via ``If-None-Match`` is answered ``304 Not
Modified`` with no body.  ``/v1/campaigns`` and ``/v1/services/shares``
paginate with ``offset``/``limit`` query parameters; the page is folded
into the tag, so each page caches independently.

Submission: ``POST /v1/submit`` requires ``Authorization: Bearer <token>``
(401 otherwise), validates the JSONL body against
:mod:`repro.serve.schema` (400), rejects digest mismatches (409), and is
refused outright in ``--readonly`` mode or when no token is configured
(403).  Ingest is atomic in the store, so concurrent readers never
observe a torn snapshot.

Telemetry is optional and strictly out-of-band: with a telemetry
attached, the app counts ``serve.requests``, ``serve.not_modified``,
``serve.submissions`` and ``serve.rejected`` and keeps the
``serve.campaigns`` gauge current — responses are byte-identical either
way.
"""

from __future__ import annotations

import hmac
import json
import socketserver
import time
from typing import TYPE_CHECKING, Any, Callable, Iterable
from urllib.parse import parse_qs
from wsgiref.simple_server import WSGIRequestHandler, WSGIServer
from wsgiref.simple_server import make_server as _wsgiref_make_server

from ..obs.expose import CONTENT_TYPE as METRICS_CONTENT_TYPE
from ..obs.expose import render_exposition
from ..obs.metrics import MetricsRegistry
from .schema import SubmitSchemaError
from .store import (
    ARRIVALS_FAMILY,
    AggregateStore,
    DigestMismatchError,
    StoreError,
)
from .views import RELEASE_SCOPE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..obs.telemetry import Telemetry

#: Default TCP port of the statistics service.
DEFAULT_PORT = 8321

#: Upper bound on accepted submission bodies (64 MiB of JSONL).
MAX_SUBMIT_BYTES = 64 * 1024 * 1024

_STATUS_LINES = {
    200: "200 OK",
    304: "304 Not Modified",
    400: "400 Bad Request",
    401: "401 Unauthorized",
    403: "403 Forbidden",
    404: "404 Not Found",
    405: "405 Method Not Allowed",
    409: "409 Conflict",
    413: "413 Payload Too Large",
    500: "500 Internal Server Error",
}


class ServeError(RuntimeError):
    """Raised on invalid server configuration."""


def _salted_etag(etag: str, offset: int | None, limit: int | None) -> str:
    """Fold pagination into a document tag so each page caches alone."""
    if offset is None and limit is None:
        return etag
    return f"{etag}-p{offset if offset is not None else 0}" + (
        f"n{limit}" if limit is not None else ""
    )


def _etag_matches(header: str | None, etag: str) -> bool:
    """``If-None-Match`` semantics for one strong entity tag."""
    if header is None:
        return False
    if header.strip() == "*":
        return True
    candidates = [tag.strip() for tag in header.split(",")]
    return f'"{etag}"' in candidates or etag in candidates


class ServeApp:
    """The WSGI application answering the ``/v1`` query API.

    Parameters
    ----------
    store:
        The :class:`~repro.serve.store.AggregateStore` to serve from.
    token:
        Bearer token required by ``POST /v1/submit``; with no token the
        submit endpoint is disabled (403).
    readonly:
        Refuse every mutating request (403), token or not.
    telemetry:
        Optional :class:`~repro.obs.telemetry.Telemetry` for the
        ``serve.*`` metrics; never changes a response byte.
    """

    def __init__(
        self,
        store: AggregateStore,
        *,
        token: str | None = None,
        readonly: bool = False,
        telemetry: "Telemetry | None" = None,
    ):
        self.store = store
        self.token = token
        self.readonly = bool(readonly)
        self.telemetry = telemetry
        # RED instrumentation writes here: the run's registry when a
        # telemetry is attached, a private one otherwise — so /metrics
        # always has something to expose and instrumented code never
        # branches.  Either way the registry is out-of-band.
        self.metrics: MetricsRegistry = (
            telemetry.metrics if telemetry is not None else MetricsRegistry()
        )
        self._routes: dict[str, Callable[[dict, dict], tuple]] = {
            "/v1/campaigns": self._get_campaigns,
            "/v1/services/shares": self._get_shares,
            "/v1/pdf/volume": self._get_volume_pdf,
            "/v1/pdf/duration": self._get_duration_pdf,
            "/v1/arrivals/deciles": self._get_arrivals,
            "/v1/fidelity": self._get_fidelity,
            "/v1/openapi.json": self._get_openapi,
        }
        #: Campaign-scoped routes whose responses carry ``X-Repro-Trace``.
        self._traced_routes = frozenset(
            (
                "/v1/services/shares",
                "/v1/pdf/volume",
                "/v1/pdf/duration",
                "/v1/fidelity",
            )
        )

    # -- metrics (out-of-band) -----------------------------------------
    def _count(self, name: str, amount: int = 1) -> None:
        self.metrics.counter(name).inc(amount)

    def _gauge_campaigns(self) -> None:
        self.metrics.gauge("serve.campaigns").set(
            len(self.store.campaign_names())
        )

    # -- WSGI entry point ------------------------------------------------
    def __call__(self, environ: dict, start_response) -> Iterable[bytes]:
        """RED-instrumented entry: time, count and log every request.

        Wraps :meth:`_handle` with the request-level telemetry of the
        tentpole: a per-(route, method, status) latency histogram, an
        in-flight gauge, and a schema-validated ``access`` event through
        the run's sink.  The wrapper only observes — status and body pass
        through byte-identical.
        """
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        route = (
            path
            if path in self._routes or path in ("/v1/submit", "/metrics")
            else "other"
        )
        captured: dict[str, Any] = {"status": 500}

        def recording_start_response(status, headers, *args):
            captured["status"] = int(status.split()[0])
            return start_response(status, headers, *args)

        self.metrics.gauge("serve.inflight").add(1)
        start = time.perf_counter()
        try:
            body = [
                chunk for chunk in self._handle(environ, recording_start_response)
            ]
        finally:
            self.metrics.gauge("serve.inflight").add(-1)
        seconds = time.perf_counter() - start
        status = int(captured["status"])
        self.metrics.histogram(
            "serve.request.seconds",
            {"route": route, "method": method, "status": str(status)},
        ).observe(seconds)
        if self.telemetry is not None:
            self.telemetry.access(
                route=route,
                method=method,
                status=status,
                seconds=seconds,
                bytes_sent=sum(len(chunk) for chunk in body),
                trace=environ.get("repro.serve.trace"),
            )
        return body

    def _handle(self, environ: dict, start_response) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/")
        self._count("serve.requests")
        try:
            if path == "/metrics":
                if method not in ("GET", "HEAD"):
                    return self._error(start_response, 405, "GET only")
                return self._get_metrics(environ, start_response, method)
            if path == "/v1/submit":
                if method != "POST":
                    return self._error(start_response, 405, "POST only")
                return self._post_submit(environ, start_response)
            handler = self._routes.get(path)
            if handler is None:
                return self._error(
                    start_response, 404, f"no such endpoint: {path}"
                )
            if method not in ("GET", "HEAD"):
                return self._error(start_response, 405, "GET only")
            query = {
                key: values[-1]
                for key, values in parse_qs(
                    environ.get("QUERY_STRING", "")
                ).items()
            }
            status, document, etag = handler(environ, query)
            if status != 200:
                return self._error(start_response, status, document)
            trace_headers: list[tuple[str, str]] = []
            if path in self._traced_routes:
                trace = self._campaign_trace(query)
                if trace:
                    environ["repro.serve.trace"] = trace
                    trace_headers.append(("X-Repro-Trace", trace))
            if _etag_matches(environ.get("HTTP_IF_NONE_MATCH"), etag):
                self._count("serve.not_modified")
                start_response(
                    _STATUS_LINES[304],
                    [("ETag", f'"{etag}"')] + trace_headers,
                )
                return [b""]
            body = (
                document
                if isinstance(document, str)
                else json.dumps(
                    document, sort_keys=True, separators=(",", ":")
                )
            ).encode("utf-8")
            start_response(
                _STATUS_LINES[200],
                [
                    ("Content-Type", "application/json"),
                    ("Content-Length", str(len(body))),
                    ("ETag", f'"{etag}"'),
                    ("Cache-Control", "no-cache"),
                ]
                + trace_headers,
            )
            return [body] if method == "GET" else [b""]
        except _BadRequest as exc:
            return self._error(start_response, 400, str(exc))

    # -- helpers ---------------------------------------------------------
    def _error(
        self, start_response, status: int, message: str
    ) -> Iterable[bytes]:
        body = json.dumps(
            {"error": message, "status": status}, sort_keys=True
        ).encode("utf-8")
        start_response(
            _STATUS_LINES[status],
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]

    def _resolve_campaign(self, query: dict) -> str | tuple[int, str]:
        """The campaign a query addresses: explicit, or the only one."""
        name = query.get("campaign")
        if name:
            return name
        names = self.store.campaign_names()
        if len(names) == 1:
            return names[0]
        if not names:
            return 404, "no campaigns ingested"
        return (
            400,
            f"campaign parameter required (ingested: {', '.join(names)})",
        )

    def _campaign_trace(self, query: dict) -> str | None:
        """Trace id of the campaign a query addresses, if recorded."""
        scope = self._resolve_campaign(query)
        if isinstance(scope, tuple):
            return None
        return self.store.trace(scope)

    @staticmethod
    def _pagination(query: dict) -> tuple[int | None, int | None]:
        offset = limit = None
        try:
            if "offset" in query:
                offset = int(query["offset"])
            if "limit" in query:
                limit = int(query["limit"])
        except ValueError as exc:
            raise _BadRequest(f"invalid pagination parameter: {exc}") from exc
        if (offset is not None and offset < 0) or (
            limit is not None and limit < 0
        ):
            raise _BadRequest("offset and limit must be >= 0")
        return offset, limit

    @staticmethod
    def _paginate(
        document: dict, key: str, offset: int | None, limit: int | None
    ) -> dict:
        """Slice a document's item array, annotating the page window."""
        if offset is None and limit is None:
            return document
        items = document[key]
        lo = offset or 0
        hi = lo + limit if limit is not None else None
        page = dict(document)
        page[key] = items[lo:hi]
        page["offset"] = lo
        page["total"] = len(items)
        if limit is not None:
            page["limit"] = limit
        return page

    def _stored_document(
        self, scope: str, family: str, query: dict, items_key: str | None
    ) -> tuple[int, Any, str]:
        stored = self.store.document(scope, family)
        if stored is None:
            return 404, f"no {family} document for {scope!r}", ""
        etag, body = stored
        offset, limit = self._pagination(query)
        if items_key is None or (offset is None and limit is None):
            return 200, body, etag
        document = self._paginate(
            json.loads(body), items_key, offset, limit
        )
        return 200, document, _salted_etag(etag, offset, limit)

    # -- GET endpoint families -------------------------------------------
    def _get_campaigns(self, environ: dict, query: dict) -> tuple:
        offset, limit = self._pagination(query)
        entries = self.store.campaigns()
        document = self._paginate(
            {"campaigns": entries, "count": len(entries)},
            "campaigns",
            offset,
            limit,
        )
        etag = _salted_etag(self.store.listing_etag(), offset, limit)
        return 200, document, etag

    def _get_shares(self, environ: dict, query: dict) -> tuple:
        scope = self._resolve_campaign(query)
        if isinstance(scope, tuple):
            return scope[0], scope[1], ""
        return self._stored_document(
            scope, "services/shares", query, "services"
        )

    def _get_volume_pdf(self, environ: dict, query: dict) -> tuple:
        scope = self._resolve_campaign(query)
        if isinstance(scope, tuple):
            return scope[0], scope[1], ""
        return self._stored_document(scope, "pdf/volume", query, None)

    def _get_duration_pdf(self, environ: dict, query: dict) -> tuple:
        scope = self._resolve_campaign(query)
        if isinstance(scope, tuple):
            return scope[0], scope[1], ""
        return self._stored_document(scope, "pdf/duration", query, None)

    def _get_arrivals(self, environ: dict, query: dict) -> tuple:
        return self._stored_document(
            RELEASE_SCOPE, ARRIVALS_FAMILY, query, None
        )

    def _get_fidelity(self, environ: dict, query: dict) -> tuple:
        scope = self._resolve_campaign(query)
        if isinstance(scope, tuple):
            return scope[0], scope[1], ""
        return self._stored_document(scope, "fidelity", query, None)

    def _get_openapi(self, environ: dict, query: dict) -> tuple:
        from .openapi import render_spec, spec_etag

        return 200, render_spec(), spec_etag()

    # -- GET /metrics ------------------------------------------------------
    def _get_metrics(
        self, environ: dict, start_response, method: str
    ) -> Iterable[bytes]:
        """Prometheus text exposition of the app's metrics registry."""
        body = render_exposition(self.metrics.snapshot()).encode("utf-8")
        start_response(
            _STATUS_LINES[200],
            [
                ("Content-Type", METRICS_CONTENT_TYPE),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body] if method == "GET" else [b""]

    # -- POST /v1/submit --------------------------------------------------
    def _authorized(self, environ: dict) -> bool:
        header = environ.get("HTTP_AUTHORIZATION", "")
        scheme, _, credential = header.partition(" ")
        return scheme.lower() == "bearer" and hmac.compare_digest(
            credential.strip(), self.token or ""
        )

    def _post_submit(self, environ: dict, start_response) -> Iterable[bytes]:
        if self.readonly:
            self._count("serve.rejected")
            return self._error(
                start_response, 403, "server is read-only"
            )
        if not self.token:
            self._count("serve.rejected")
            return self._error(
                start_response, 403,
                "submissions disabled (no token configured)",
            )
        if not self._authorized(environ):
            self._count("serve.rejected")
            return self._error(
                start_response, 401, "missing or invalid bearer token"
            )
        try:
            length = int(environ.get("CONTENT_LENGTH") or 0)
        except ValueError:
            length = 0
        if length > MAX_SUBMIT_BYTES:
            self._count("serve.rejected")
            return self._error(start_response, 413, "submission too large")
        raw = environ["wsgi.input"].read(length) if length else b""
        try:
            outcome = self.store.submit(raw.decode("utf-8", errors="strict"))
        except DigestMismatchError as exc:
            self._count("serve.rejected")
            return self._error(start_response, 409, str(exc))
        except (SubmitSchemaError, StoreError, UnicodeDecodeError) as exc:
            self._count("serve.rejected")
            return self._error(start_response, 400, str(exc))
        self._count("serve.submissions")
        self._gauge_campaigns()
        body = json.dumps(
            outcome, sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        start_response(
            _STATUS_LINES[200],
            [
                ("Content-Type", "application/json"),
                ("Content-Length", str(len(body))),
            ],
        )
        return [body]


class _BadRequest(ValueError):
    """Internal signal: malformed query parameters (HTTP 400)."""


class ThreadingWSGIServer(socketserver.ThreadingMixIn, WSGIServer):
    """One thread per request; daemonic so shutdown never hangs."""

    daemon_threads = True


class _QuietHandler(WSGIRequestHandler):
    """Request handler with access logging routed through telemetry."""

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        app = getattr(self.server, "_serve_app", None)
        telemetry = getattr(app, "telemetry", None)
        if telemetry is not None and telemetry.verbosity >= 2:
            telemetry.message(format % args, level="debug")


def make_server(
    host: str, port: int, app: ServeApp
) -> ThreadingWSGIServer:
    """A threaded WSGI server bound to ``host:port`` running ``app``."""
    server = _wsgiref_make_server(
        host,
        port,
        app,
        server_class=ThreadingWSGIServer,
        handler_class=_QuietHandler,
    )
    server._serve_app = app  # type: ignore[attr-defined]
    return server
