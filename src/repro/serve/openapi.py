"""OpenAPI description of the query API, plus a dependency-free validator.

The canonical machine-readable contract of :mod:`repro.serve.http` is the
checked-in ``schemas/openapi-serve.json``, generated from the component
schemas below by :func:`openapi_spec` (the test suite asserts the file is
in sync; regenerate with ``python -m repro.serve.openapi``).  The schemas
use a deliberately restricted JSON-Schema subset — ``type``, ``enum``,
``properties``/``required``/``additionalProperties``, ``items`` and local
``$ref`` — so :func:`validate_response` can enforce the contract without
a jsonschema package: CI curls every endpoint and validates the body
right here.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Mapping

#: Version tag of the API description (bump on incompatible change).
OPENAPI_VERSION_TAG = "1.0.0"

#: Repository-relative path of the checked-in OpenAPI document.
SPEC_PATH = "schemas/openapi-serve.json"


class OpenApiError(ValueError):
    """Raised when a response does not conform to the API contract."""


def _array(items: Mapping[str, Any]) -> dict:
    return {"type": "array", "items": dict(items)}


def _object(
    properties: Mapping[str, Any],
    required: list[str],
    *,
    additional: bool = False,
) -> dict:
    return {
        "type": "object",
        "properties": {k: dict(v) for k, v in properties.items()},
        "required": sorted(required),
        "additionalProperties": additional,
    }


_REF = "#/components/schemas/"

_PAGINATION_PROPS = {
    "offset": {"type": "integer"},
    "limit": {"type": "integer"},
    "total": {"type": "integer"},
}


def _component_schemas() -> dict[str, dict]:
    """Every named schema of the API contract."""
    return {
        "Error": _object(
            {"error": {"type": "string"}, "status": {"type": "integer"}},
            ["error", "status"],
        ),
        "CampaignEntry": _object(
            {
                "name": {"type": "string"},
                "digest": {"type": "string"},
                "sessions": {"type": "integer"},
                "units": {"type": "integer"},
                "shards": {"type": "integer"},
                "manifest": {"type": ["object", "null"]},
                "trace": {"type": ["string", "null"]},
            },
            [
                "name",
                "digest",
                "sessions",
                "units",
                "shards",
                "manifest",
                "trace",
            ],
        ),
        "CampaignList": _object(
            {
                "campaigns": _array({"$ref": _REF + "CampaignEntry"}),
                "count": {"type": "integer"},
                **_PAGINATION_PROPS,
            },
            ["campaigns", "count"],
        ),
        "ServiceShare": _object(
            {
                "service": {"type": "string"},
                "session_share": {"type": "number"},
                "traffic_share": {"type": "number"},
            },
            ["service", "session_share", "traffic_share"],
        ),
        "SharesDocument": _object(
            {
                "campaign": {"type": "string"},
                "digest": {"type": "string"},
                "sessions": {"type": "integer"},
                "total_volume_mb": {"type": "number"},
                "services": _array({"$ref": _REF + "ServiceShare"}),
                **_PAGINATION_PROPS,
            },
            [
                "campaign",
                "digest",
                "sessions",
                "total_volume_mb",
                "services",
            ],
        ),
        "PdfDocument": _object(
            {
                "campaign": {"type": "string"},
                "digest": {"type": "string"},
                "axis": {
                    "type": "string",
                    "enum": ["log10_volume_mb", "duration_s"],
                },
                "edges": _array({"type": "number"}),
                "density": _array({"type": "number"}),
                "samples": {"type": "integer"},
            },
            ["campaign", "digest", "axis", "edges", "density", "samples"],
        ),
        "ArrivalDecile": _object(
            {
                "label": {"type": "string"},
                "peak_mu": {"type": "number"},
                "peak_sigma": {"type": "number"},
                "night_scale": {"type": "number"},
                "night_shape": {"type": "number"},
            },
            [
                "label",
                "peak_mu",
                "peak_sigma",
                "night_scale",
                "night_shape",
            ],
        ),
        "ArrivalsDocument": _object(
            {
                "release_digest": {"type": "string"},
                "deciles": _array({"$ref": _REF + "ArrivalDecile"}),
            },
            ["release_digest", "deciles"],
        ),
        "FidelityCheck": _object(
            {
                "claim": {"type": "string"},
                "statistic": {"type": "string"},
                "value": {"type": "number"},
                "lo": {"type": "number"},
                "hi": {"type": "number"},
                "passed": {"type": "boolean"},
                "skipped": {"type": "boolean"},
                "provenance": {"type": "string"},
            },
            [
                "claim",
                "statistic",
                "value",
                "lo",
                "hi",
                "passed",
                "skipped",
                "provenance",
            ],
        ),
        "FidelitySummary": _object(
            {
                "checks": {"type": "integer"},
                "claims": {"type": "integer"},
                "failed": {"type": "integer"},
                "skipped": {"type": "integer"},
                "verdict": {
                    "type": "string",
                    "enum": ["OK", "FAILED", "SKIPPED"],
                },
            },
            ["checks", "claims", "failed", "skipped", "verdict"],
        ),
        "FidelityDocument": _object(
            {
                "campaign": {"type": "string"},
                "digest": {"type": "string"},
                "claims": _array({"type": "string"}),
                "summary": {"$ref": _REF + "FidelitySummary"},
                "checks": _array({"$ref": _REF + "FidelityCheck"}),
            },
            ["campaign", "digest", "claims", "summary", "checks"],
        ),
        "SubmitResult": _object(
            {
                "ingested": {"type": "integer"},
                "campaigns": _array({"type": "string"}),
                "aggregate": {"type": "integer"},
                "manifest": {"type": "integer"},
            },
            ["ingested", "campaigns"],
        ),
    }


def _json_body(ref: str) -> dict:
    return {
        "content": {
            "application/json": {"schema": {"$ref": _REF + ref}}
        }
    }


def _error_responses(*codes: int) -> dict[str, dict]:
    descriptions = {
        400: "malformed request",
        401: "missing or invalid bearer token",
        403: "submissions disabled or server read-only",
        404: "unknown campaign or missing document",
        409: "digest mismatch",
    }
    return {
        str(code): {
            "description": descriptions[code],
            **_json_body("Error"),
        }
        for code in codes
    }


_NOT_MODIFIED = {
    "304": {"description": "entity tag still current (no body)"}
}

_CAMPAIGN_PARAM = {
    "name": "campaign",
    "in": "query",
    "required": False,
    "description": "campaign name (optional when exactly one is ingested)",
    "schema": {"type": "string"},
}

_PAGE_PARAMS = [
    {
        "name": "offset",
        "in": "query",
        "required": False,
        "schema": {"type": "integer", "minimum": 0},
    },
    {
        "name": "limit",
        "in": "query",
        "required": False,
        "schema": {"type": "integer", "minimum": 0},
    },
]


def openapi_spec() -> dict[str, Any]:
    """The full OpenAPI 3.1 document of the query API."""

    def get_op(
        summary: str,
        ref: str,
        *,
        campaign: bool = True,
        paged: bool = False,
        errors: tuple[int, ...] = (404,),
    ) -> dict:
        parameters: list[dict] = []
        if campaign:
            parameters.append(dict(_CAMPAIGN_PARAM))
        if paged:
            parameters.extend(dict(p) for p in _PAGE_PARAMS)
        error_codes = tuple(errors) + ((400,) if campaign or paged else ())
        return {
            "get": {
                "summary": summary,
                "parameters": parameters,
                "responses": {
                    "200": {
                        "description": summary,
                        **_json_body(ref),
                    },
                    **_NOT_MODIFIED,
                    **_error_responses(*sorted(set(error_codes))),
                },
            }
        }

    return {
        "openapi": "3.1.0",
        "info": {
            "title": "repro-traffic statistics service",
            "description": (
                "Query API over ingested campaign aggregates: per-service "
                "shares, volume/duration PDFs, decile arrival parameters "
                "and fidelity verdicts, served from precomputed documents "
                "with sketch-digest ETags."
            ),
            "version": OPENAPI_VERSION_TAG,
        },
        "paths": {
            "/v1/campaigns": get_op(
                "ingested campaigns",
                "CampaignList",
                campaign=False,
                paged=True,
                errors=(),
            ),
            "/v1/services/shares": get_op(
                "per-service session and traffic shares",
                "SharesDocument",
                paged=True,
            ),
            "/v1/pdf/volume": get_op(
                "campaign volume PDF (global log10 grid)", "PdfDocument"
            ),
            "/v1/pdf/duration": get_op(
                "campaign duration PDF (Section 3.2 bins)", "PdfDocument"
            ),
            "/v1/arrivals/deciles": get_op(
                "decile arrival parameters of the model release",
                "ArrivalsDocument",
                campaign=False,
            ),
            "/v1/fidelity": get_op(
                "aggregate-only fidelity verdicts", "FidelityDocument"
            ),
            "/v1/openapi.json": {
                "get": {
                    "summary": "this OpenAPI document",
                    "parameters": [],
                    "responses": {
                        "200": {
                            "description": "the API contract itself",
                            "content": {
                                "application/json": {
                                    "schema": {"type": "object"}
                                }
                            },
                        },
                        **_NOT_MODIFIED,
                    },
                }
            },
            "/metrics": {
                "get": {
                    "summary": "plain-text metrics exposition",
                    "parameters": [],
                    "responses": {
                        "200": {
                            "description": (
                                "one '# TYPE' header plus one sample "
                                "line per instrument"
                            ),
                            "content": {
                                "text/plain": {
                                    "schema": {"type": "string"}
                                }
                            },
                        }
                    },
                }
            },
            "/v1/submit": {
                "post": {
                    "summary": "token-authenticated JSONL ingest",
                    "security": [{"bearerToken": []}],
                    "requestBody": {
                        "required": True,
                        "content": {
                            "application/jsonl": {
                                "schema": {"type": "string"}
                            }
                        },
                    },
                    "responses": {
                        "200": {
                            "description": "submission applied atomically",
                            **_json_body("SubmitResult"),
                        },
                        **_error_responses(400, 401, 403, 409),
                    },
                }
            },
        },
        "components": {
            "schemas": _component_schemas(),
            "securitySchemes": {
                "bearerToken": {"type": "http", "scheme": "bearer"}
            },
        },
    }


def render_spec() -> str:
    """The checked-in spec file's exact text content."""
    return json.dumps(openapi_spec(), indent=2, sort_keys=True) + "\n"


def spec_etag() -> str:
    """Entity tag of the served ``/v1/openapi.json`` document."""
    return hashlib.sha256(render_spec().encode("utf-8")).hexdigest()[:32]


# ----------------------------------------------------------------------
# Dependency-free response validation (the restricted schema subset)
# ----------------------------------------------------------------------
def _json_type_of(value: Any) -> str:
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    raise OpenApiError(f"value {value!r} is not a JSON value")


def _resolve(schema: Mapping[str, Any], spec: Mapping[str, Any]) -> dict:
    ref = schema.get("$ref")
    if ref is None:
        return dict(schema)
    if not ref.startswith(_REF):
        raise OpenApiError(f"unsupported $ref {ref!r}")
    name = ref[len(_REF):]
    try:
        return dict(spec["components"]["schemas"][name])
    except KeyError as exc:
        raise OpenApiError(f"unresolvable $ref {ref!r}") from exc


def _check(
    schema: Mapping[str, Any],
    value: Any,
    spec: Mapping[str, Any],
    where: str,
) -> None:
    schema = _resolve(schema, spec)
    expected = schema.get("type")
    if expected is not None:
        allowed = [expected] if isinstance(expected, str) else list(expected)
        actual = _json_type_of(value)
        if actual == "integer" and "number" in allowed:
            actual = "number"
        if actual not in allowed:
            raise OpenApiError(
                f"{where}: expected {'/'.join(allowed)}, got {actual}"
            )
    enum = schema.get("enum")
    if enum is not None and value not in enum:
        raise OpenApiError(f"{where}: value {value!r} not in {enum}")
    if isinstance(value, dict) and "properties" in schema:
        properties = schema["properties"]
        for name in schema.get("required", ()):
            if name not in value:
                raise OpenApiError(
                    f"{where}: missing required property {name!r}"
                )
        for name, item in value.items():
            if name in properties:
                _check(properties[name], item, spec, f"{where}.{name}")
            elif not schema.get("additionalProperties", True):
                raise OpenApiError(
                    f"{where}: unexpected property {name!r}"
                )
    if isinstance(value, list) and "items" in schema:
        for index, item in enumerate(value):
            _check(schema["items"], item, spec, f"{where}[{index}]")


def validate_response(
    path: str,
    status: int,
    payload: Any,
    *,
    method: str = "get",
    spec: Mapping[str, Any] | None = None,
) -> None:
    """Validate one decoded response body against the API contract.

    ``path`` is the endpoint path (e.g. ``/v1/fidelity``), ``status`` the
    HTTP status the body came with.  Raises :class:`OpenApiError` on any
    contract breach; a 304 must have no payload (pass ``None``).
    """
    document = openapi_spec() if spec is None else spec
    try:
        operation = document["paths"][path][method.lower()]
    except KeyError as exc:
        raise OpenApiError(
            f"no {method.upper()} operation for {path}"
        ) from exc
    try:
        response = operation["responses"][str(status)]
    except KeyError as exc:
        raise OpenApiError(
            f"{method.upper()} {path} does not define status {status}"
        ) from exc
    content = response.get("content")
    if content is None:
        if payload is not None:
            raise OpenApiError(
                f"{method.upper()} {path} -> {status} must have no body"
            )
        return
    schema = content["application/json"]["schema"]
    _check(schema, payload, document, f"{path}[{status}]")


def _main() -> int:
    """Regenerate the checked-in spec, or validate a response file.

    * no arguments — write ``schemas/openapi-serve.json``;
    * ``check PATH STATUS FILE`` — validate a saved JSON response body
      against the contract (used by the CI serve-smoke job).
    """
    import sys

    if len(sys.argv) >= 2 and sys.argv[1] == "check":
        _, _, path, status, body_file = sys.argv[:5]
        payload = json.loads(Path(body_file).read_text(encoding="utf-8"))
        validate_response(path, int(status), payload)
        # repro-lint: disable-next-line=S305 -- module CLI output, no run telemetry exists here
        print(f"{body_file}: conforms to {path} -> {status}")
        return 0
    target = Path(SPEC_PATH)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_spec())
    # repro-lint: disable-next-line=S305 -- module CLI output, no run telemetry exists here
    print(f"wrote {target}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(_main())
