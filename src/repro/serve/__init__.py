"""Statistics-as-a-service: ingest + query API over campaign aggregates.

The serving layer turns the batch CLI into a system that answers
statistical queries for many concurrent clients without touching the
generator, mirroring the aggregator → token-authenticated submit →
DB-backed query webservice split of production measurement stacks:

* :mod:`repro.serve.store` — the SQLite-backed
  :class:`~repro.serve.store.AggregateStore`: ingests spooled shard
  checkpoints, merged aggregate JSON, model releases and telemetry
  manifests, re-verifying every aggregate's canonical digest, and
  precomputes the query documents atomically per ingest;
* :mod:`repro.serve.views` — pure builders of those documents, float-
  identical to the batch fidelity path on the same sketches;
* :mod:`repro.serve.http` — the dependency-free threaded WSGI query API
  (``/v1/...``) with sketch-digest ETags and 304 revalidation;
* :mod:`repro.serve.schema` — the JSONL submit-stream schema and its
  validator;
* :mod:`repro.serve.openapi` — the checked-in OpenAPI contract
  (``schemas/openapi-serve.json``) plus a dependency-free response
  validator for CI.

Serving is strictly out-of-band: ingest reads finished campaign
artifacts, so campaign outputs are byte-identical whether or not a
server ever consumed them.
"""

from .http import DEFAULT_PORT, ServeApp, make_server
from .openapi import openapi_spec, validate_response
from .schema import SubmitSchemaError, validate_submission
from .store import AggregateStore, DigestMismatchError, StoreError

__all__ = [
    "AggregateStore",
    "DEFAULT_PORT",
    "DigestMismatchError",
    "ServeApp",
    "StoreError",
    "SubmitSchemaError",
    "make_server",
    "openapi_spec",
    "validate_response",
    "validate_submission",
]
