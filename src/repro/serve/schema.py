"""Schema of the JSONL submit stream, plus its dependency-free validator.

A submission to ``POST /v1/submit`` is JSON Lines: each line is one JSON
object whose ``type`` field selects its shape, mirroring the field-spec
convention of :mod:`repro.obs.schema` (the telemetry event stream):

* ``aggregate`` — one merged campaign aggregate in the exact versioned
  form of :meth:`~repro.campaign.sketches.CampaignAggregate.to_dict`,
  together with the SHA-256 ``digest`` the submitter computed over the
  canonical serialization.  The store recomputes the digest from the
  payload and rejects mismatches — a truncated or tampered submission can
  never land.
* ``manifest`` — one telemetry run manifest attached to a campaign.

Unknown fields are rejected: the stream is an interchange format, so
anything a producer emits must be in the schema.
"""

from __future__ import annotations

from typing import Any, Iterable

#: Version tag of the submit-stream format (bump on incompatible change).
SUBMIT_SCHEMA_ID = "repro-serve-submit/1"


class SubmitSchemaError(ValueError):
    """Raised when a submission line does not conform to the schema."""


#: Field specifications per line type: ``name -> (json_types, required)``.
SUBMIT_FIELDS: dict[str, dict[str, tuple[tuple[str, ...], bool]]] = {
    "aggregate": {
        "type": (("string",), True),
        "campaign": (("string",), True),
        "digest": (("string",), True),
        "payload": (("object",), True),
    },
    "manifest": {
        "type": (("string",), True),
        "campaign": (("string",), True),
        "payload": (("object",), True),
    },
}


def _json_type_of(value: Any) -> str:
    """JSON Schema type name of a decoded JSON value."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    raise SubmitSchemaError(f"value {value!r} is not a JSON value")


def validate_submission(line: Any) -> str:
    """Check one decoded submission object; returns its type or raises."""
    if not isinstance(line, dict):
        raise SubmitSchemaError(
            f"submission line is not a JSON object: {line!r}"
        )
    line_type = line.get("type")
    fields = SUBMIT_FIELDS.get(line_type)  # type: ignore[arg-type]
    if fields is None:
        raise SubmitSchemaError(
            f"unknown submission type {line_type!r}; "
            f"expected one of {sorted(SUBMIT_FIELDS)}"
        )
    for name, (json_types, required) in fields.items():
        if name not in line:
            if required:
                raise SubmitSchemaError(
                    f"{line_type} submission missing required field {name!r}"
                )
            continue
        actual = _json_type_of(line[name])
        if actual not in json_types:
            raise SubmitSchemaError(
                f"{line_type} submission field {name!r} has type "
                f"{actual}, expected {'/'.join(json_types)}"
            )
    if not line["campaign"]:
        raise SubmitSchemaError("submission campaign name must be non-empty")
    unknown = set(line) - set(fields)
    if unknown:
        raise SubmitSchemaError(
            f"{line_type} submission carries unknown fields {sorted(unknown)}"
        )
    return line_type  # type: ignore[return-value]


def validate_submissions(lines: Iterable[Any]) -> dict[str, int]:
    """Validate a decoded submission stream; returns per-type counts."""
    counts: dict[str, int] = {}
    total = 0
    for index, line in enumerate(lines):
        try:
            line_type = validate_submission(line)
        except SubmitSchemaError as exc:
            raise SubmitSchemaError(f"line #{index}: {exc}") from None
        counts[line_type] = counts.get(line_type, 0) + 1
        total += 1
    if total == 0:
        raise SubmitSchemaError("submission stream is empty")
    return counts
