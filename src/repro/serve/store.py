"""SQLite-backed aggregate store: the serving layer's single source of truth.

The store ingests the artifacts a campaign run leaves behind — spooled
per-shard checkpoints (cache kind ``campaign-shard``), merged aggregate
JSON (``repro-traffic campaign --output``), model releases and telemetry
manifests — and persists, per campaign, the canonical aggregate bytes,
their SHA-256 digest and the precomputed query documents of every
endpoint family (:mod:`repro.serve.views`).  Queries never touch sketches
or the generator: they read finished documents.

Consistency model
-----------------
One SQLite connection, guarded by one lock; every ingest runs as a single
transaction that replaces a campaign's aggregate row *and* all its
documents together.  A reader therefore observes either the complete old
snapshot or the complete new one — never a torn mix — and a crashed
ingest rolls back to the previous snapshot (SQLite atomicity).

Digest discipline
-----------------
Every aggregate entering the store is re-parsed through
:meth:`~repro.campaign.sketches.CampaignAggregate.from_dict` and its
digest recomputed from the canonical serialization.  Submissions carry
the digest their producer computed; a mismatch raises
:class:`DigestMismatchError` (HTTP 409) and nothing is stored.
"""

from __future__ import annotations

import hashlib
import json
import sqlite3
import threading
from pathlib import Path
from typing import Any, Iterable, Mapping

from ..campaign.driver import CHECKPOINT_KIND, CHECKPOINT_SUFFIX
from ..campaign.sketches import CampaignAggregate, SketchError
from ..io.params import load_release
from .schema import SubmitSchemaError, validate_submissions
from .views import (
    RELEASE_SCOPE,
    arrivals_document,
    build_aggregate_documents,
    canonical_body,
    document_etag,
)

#: Bump when the store's on-disk layout changes incompatibly.
STORE_FORMAT_VERSION = 1

#: Family key of the release-level arrival-deciles document.
ARRIVALS_FAMILY = "arrivals/deciles"


class StoreError(ValueError):
    """Raised on malformed ingests or an incompatible store file."""


class DigestMismatchError(StoreError):
    """A submitted digest does not match the payload's canonical bytes."""


class AggregateStore:
    """Campaign aggregates, documents and manifests in one SQLite file.

    Parameters
    ----------
    path:
        SQLite database path; created on first open.  ``":memory:"`` is
        supported (tests, single-process ingest-and-serve).
    baseline:
        The :class:`~repro.verify.baseline.Baseline` fidelity documents
        are judged under; defaults to the checked-in golden baseline.
    """

    def __init__(self, path: str | Path, baseline=None):
        self.path = str(path)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(self.path, check_same_thread=False)
        self._baseline = baseline
        self._init_schema()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _init_schema(self) -> None:
        with self._lock, self._conn as conn:
            conn.execute(
                "CREATE TABLE IF NOT EXISTS meta "
                "(key TEXT PRIMARY KEY, value TEXT NOT NULL)"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS campaigns ("
                " name TEXT PRIMARY KEY,"
                " digest TEXT NOT NULL,"
                " aggregate TEXT NOT NULL,"
                " sessions INTEGER NOT NULL,"
                " units INTEGER NOT NULL,"
                " shards INTEGER NOT NULL,"
                " trace_id TEXT)"
            )
            # Additive migration: stores created before trace provenance
            # landed lack the column; ALTER is idempotent per open, cheap,
            # and keeps the format version at 1 (old readers still work).
            columns = {
                row[1]
                for row in conn.execute("PRAGMA table_info(campaigns)")
            }
            if "trace_id" not in columns:
                conn.execute(
                    "ALTER TABLE campaigns ADD COLUMN trace_id TEXT"
                )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS documents ("
                " scope TEXT NOT NULL,"
                " family TEXT NOT NULL,"
                " etag TEXT NOT NULL,"
                " body TEXT NOT NULL,"
                " PRIMARY KEY (scope, family))"
            )
            conn.execute(
                "CREATE TABLE IF NOT EXISTS manifests ("
                " campaign TEXT PRIMARY KEY,"
                " body TEXT NOT NULL)"
            )
            row = conn.execute(
                "SELECT value FROM meta WHERE key = 'format'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO meta (key, value) VALUES ('format', ?)",
                    (str(STORE_FORMAT_VERSION),),
                )
            elif int(row[0]) != STORE_FORMAT_VERSION:
                raise StoreError(
                    f"store format {row[0]} unsupported "
                    f"(this build reads {STORE_FORMAT_VERSION})"
                )

    def close(self) -> None:
        """Close the underlying connection (idempotent)."""
        with self._lock:
            self._conn.close()

    @property
    def baseline(self):
        """The fidelity baseline, lazily loaded from the golden file."""
        with self._lock:
            if self._baseline is None:
                from ..verify import Baseline, default_baseline_path

                self._baseline = Baseline.load(default_baseline_path())
            return self._baseline

    # ------------------------------------------------------------------
    # Ingestion (each public method = one atomic snapshot swap)
    # ------------------------------------------------------------------
    def _write_campaign(
        self, conn: sqlite3.Connection, name: str,
        aggregate: CampaignAggregate, shards: int,
        trace_id: str | None = None,
    ) -> str:
        """Replace one campaign's aggregate row and all its documents."""
        digest = aggregate.digest()
        documents = build_aggregate_documents(name, aggregate, self.baseline)
        conn.execute(
            "INSERT OR REPLACE INTO campaigns "
            "(name, digest, aggregate, sessions, units, shards, trace_id) "
            "VALUES (?, ?, ?, ?, ?, ?, ?)",
            (
                name,
                digest,
                aggregate.canonical_json(),
                aggregate.n_sessions,
                aggregate.n_units,
                shards,
                trace_id,
            ),
        )
        for family, document in documents.items():
            conn.execute(
                "INSERT OR REPLACE INTO documents "
                "(scope, family, etag, body) VALUES (?, ?, ?, ?)",
                (
                    name,
                    family,
                    document_etag(digest, family),
                    canonical_body(document),
                ),
            )
        return digest

    @staticmethod
    def _parse_aggregate(payload: Mapping[str, Any]) -> CampaignAggregate:
        try:
            return CampaignAggregate.from_dict(dict(payload))
        except SketchError as exc:
            raise StoreError(f"invalid aggregate payload: {exc}") from exc

    @staticmethod
    def _extract_trace(payload: Mapping[str, Any]) -> str | None:
        """The ``provenance.trace_id`` a producer rode on the payload.

        Campaign checkpoints and ``campaign --output`` files carry a
        ``provenance`` envelope key outside the aggregate's own
        serialization (``from_dict`` ignores it); absence is fine —
        provenance is additive, never required.
        """
        provenance = payload.get("provenance")
        if isinstance(provenance, Mapping):
            trace = provenance.get("trace_id")
            if isinstance(trace, str) and trace:
                return trace
        return None

    def ingest_aggregate(
        self,
        name: str,
        payload: Mapping[str, Any],
        *,
        expect_digest: str | None = None,
        shards: int = 0,
        trace_id: str | None = None,
    ) -> str:
        """Ingest one merged aggregate payload; returns its digest.

        ``expect_digest`` is the digest the producer computed; when given,
        it must equal the digest of the re-serialized canonical payload
        (:class:`DigestMismatchError` otherwise — nothing is stored).
        ``trace_id`` overrides the payload's own ``provenance.trace_id``
        when given.
        """
        if not name:
            raise StoreError("campaign name must be non-empty")
        aggregate = self._parse_aggregate(payload)
        if trace_id is None:
            trace_id = self._extract_trace(payload)
        digest = aggregate.digest()
        if expect_digest is not None and expect_digest != digest:
            raise DigestMismatchError(
                f"digest mismatch for campaign {name!r}: "
                f"submitted {expect_digest}, canonical bytes give {digest}"
            )
        with self._lock, self._conn as conn:
            self._write_campaign(conn, name, aggregate, shards, trace_id)
        return digest

    def ingest_aggregate_file(self, name: str, path: str | Path) -> str:
        """Ingest a ``repro-traffic campaign --output`` JSON file."""
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read aggregate at {path}: {exc}") from exc
        return self.ingest_aggregate(name, payload)

    def ingest_checkpoints(
        self, name: str, cache_root: str | Path
    ) -> tuple[str, int]:
        """Merge and ingest a cache's spooled shard checkpoints.

        Scans ``<cache_root>/campaign-shard/*.json`` — the checkpoint
        layout of :mod:`repro.campaign.driver` — folds every checkpoint
        into one aggregate (merge order is irrelevant: sketch merges are
        exact) and ingests the result.  Returns ``(digest, n_shards)``.
        """
        directory = Path(cache_root) / CHECKPOINT_KIND
        paths = sorted(
            p for p in directory.glob(f"*{CHECKPOINT_SUFFIX}")
            if not p.name.startswith(".tmp-")
        )
        if not paths:
            raise StoreError(
                f"no {CHECKPOINT_KIND} checkpoints under {directory}"
            )
        total: CampaignAggregate | None = None
        trace_id: str | None = None
        for path in paths:
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                shard = CampaignAggregate.from_dict(payload)
            except (OSError, json.JSONDecodeError, SketchError) as exc:
                raise StoreError(
                    f"cannot load checkpoint {path}: {exc}"
                ) from exc
            if trace_id is None and isinstance(payload, Mapping):
                trace_id = self._extract_trace(payload)
            total = shard if total is None else total.merge(shard)
        assert total is not None
        with self._lock, self._conn as conn:
            digest = self._write_campaign(
                conn, name, total, len(paths), trace_id
            )
        return digest, len(paths)

    def ingest_release(self, path: str | Path) -> str:
        """Ingest a model release's decile arrival parameters.

        The release is a store-wide document (deciles describe the model,
        not one campaign); its ETag derives from the release file bytes.
        Returns the document's ETag.
        """
        bank, arrivals = load_release(path)
        del bank  # deciles only; service models stay in the release
        release_digest = hashlib.sha256(
            Path(path).read_bytes()
        ).hexdigest()
        document = arrivals_document(arrivals, release_digest)
        etag = document_etag(release_digest, ARRIVALS_FAMILY)
        with self._lock, self._conn as conn:
            conn.execute(
                "INSERT OR REPLACE INTO documents "
                "(scope, family, etag, body) VALUES (?, ?, ?, ?)",
                (
                    RELEASE_SCOPE,
                    ARRIVALS_FAMILY,
                    etag,
                    canonical_body(document),
                ),
            )
        return etag

    def ingest_manifest(
        self, name: str, payload: Mapping[str, Any]
    ) -> None:
        """Attach one telemetry run manifest to a campaign."""
        if not name:
            raise StoreError("campaign name must be non-empty")
        with self._lock, self._conn as conn:
            conn.execute(
                "INSERT OR REPLACE INTO manifests (campaign, body) "
                "VALUES (?, ?)",
                (name, canonical_body(payload)),
            )

    def ingest_manifest_file(self, name: str, path: str | Path) -> None:
        """Attach a ``manifest.json`` (or its telemetry directory)."""
        target = Path(path)
        if target.is_dir():
            target = target / "manifest.json"
        try:
            payload = json.loads(target.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise StoreError(f"cannot read manifest at {target}: {exc}") from exc
        if not isinstance(payload, dict):
            raise StoreError(f"manifest at {target} is not a JSON object")
        self.ingest_manifest(name, payload)

    def submit(self, text: str) -> dict[str, Any]:
        """Apply one schema-validated JSONL submission atomically.

        Every line is validated against :mod:`repro.serve.schema` and
        every aggregate digest re-verified *before* anything is written;
        the whole submission then lands in a single transaction, so a
        rejected line means nothing of the submission is visible.
        """
        lines: list[Any] = []
        for raw in text.splitlines():
            if not raw.strip():
                continue
            try:
                lines.append(json.loads(raw))
            except json.JSONDecodeError as exc:
                raise SubmitSchemaError(
                    f"line #{len(lines)}: not valid JSON: {exc}"
                ) from exc
        counts = validate_submissions(lines)
        aggregates: list[tuple[str, CampaignAggregate, str | None]] = []
        manifests: list[tuple[str, Any]] = []
        campaigns: list[str] = []
        for line in lines:
            if line["type"] == "aggregate":
                aggregate = self._parse_aggregate(line["payload"])
                digest = aggregate.digest()
                if line["digest"] != digest:
                    raise DigestMismatchError(
                        f"digest mismatch for campaign {line['campaign']!r}:"
                        f" submitted {line['digest']},"
                        f" canonical bytes give {digest}"
                    )
                aggregates.append(
                    (
                        line["campaign"],
                        aggregate,
                        self._extract_trace(line["payload"]),
                    )
                )
            else:
                manifests.append((line["campaign"], line["payload"]))
            if line["campaign"] not in campaigns:
                campaigns.append(line["campaign"])
        with self._lock, self._conn as conn:
            for name, aggregate, trace_id in aggregates:
                self._write_campaign(conn, name, aggregate, 0, trace_id)
            for name, payload in manifests:
                conn.execute(
                    "INSERT OR REPLACE INTO manifests (campaign, body) "
                    "VALUES (?, ?)",
                    (name, canonical_body(payload)),
                )
        return {"ingested": len(lines), "campaigns": campaigns, **counts}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def campaign_names(self) -> list[str]:
        """All ingested campaign names, sorted."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name FROM campaigns ORDER BY name"
            ).fetchall()
        return [row[0] for row in rows]

    def campaigns(self) -> list[dict[str, Any]]:
        """One listing entry per campaign, sorted by name."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT c.name, c.digest, c.sessions, c.units, c.shards,"
                " c.trace_id, m.body FROM campaigns c"
                " LEFT JOIN manifests m ON m.campaign = c.name"
                " ORDER BY c.name"
            ).fetchall()
        entries = []
        for name, digest, sessions, units, shards, trace, manifest in rows:
            entry: dict[str, Any] = {
                "name": name,
                "digest": digest,
                "sessions": sessions,
                "units": units,
                "shards": shards,
                "trace": trace,
                "manifest": (
                    json.loads(manifest) if manifest is not None else None
                ),
            }
            entries.append(entry)
        return entries

    def listing_etag(self) -> str:
        """ETag of the campaign listing: a hash over every digest."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT name, digest FROM campaigns ORDER BY name"
            ).fetchall()
        material = ";".join(f"{name}={digest}" for name, digest in rows)
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:32]

    def document(self, scope: str, family: str) -> tuple[str, str] | None:
        """A stored document's ``(etag, canonical body)``, if present."""
        with self._lock:
            row = self._conn.execute(
                "SELECT etag, body FROM documents "
                "WHERE scope = ? AND family = ?",
                (scope, family),
            ).fetchone()
        return (row[0], row[1]) if row is not None else None

    def aggregate(self, name: str) -> CampaignAggregate | None:
        """Rehydrate one campaign's stored aggregate (exact round trip)."""
        with self._lock:
            row = self._conn.execute(
                "SELECT aggregate FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        if row is None:
            return None
        return CampaignAggregate.from_dict(json.loads(row[0]))

    def trace(self, name: str) -> str | None:
        """One campaign's trace id, if its producer recorded provenance."""
        with self._lock:
            row = self._conn.execute(
                "SELECT trace_id FROM campaigns WHERE name = ?", (name,)
            ).fetchone()
        return row[0] if row is not None else None

    def manifest(self, name: str) -> dict[str, Any] | None:
        """One campaign's attached run manifest, if any."""
        with self._lock:
            row = self._conn.execute(
                "SELECT body FROM manifests WHERE campaign = ?", (name,)
            ).fetchone()
        return json.loads(row[0]) if row is not None else None


def scan_checkpoint_paths(cache_root: str | Path) -> list[Path]:
    """The spooled shard-checkpoint files under a cache root, sorted."""
    directory = Path(cache_root) / CHECKPOINT_KIND
    return sorted(
        p for p in directory.glob(f"*{CHECKPOINT_SUFFIX}")
        if not p.name.startswith(".tmp-")
    )


def iter_submission_lines(paths: Iterable[str | Path]) -> Iterable[str]:
    """Concatenate JSONL submission files into one line stream."""
    for path in paths:
        for raw in Path(path).read_text(encoding="utf-8").splitlines():
            if raw.strip():
                yield raw
