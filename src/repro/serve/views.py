"""Pure builders of the documents the query API serves.

Every endpoint family of :mod:`repro.serve.http` answers with a JSON
document precomputed here at ingest time, straight from the same objects
the batch CLI uses — :class:`~repro.campaign.sketches.CampaignAggregate`
derivations, :class:`~repro.core.arrivals.ArrivalModel` release entries
and :class:`~repro.verify.report.FidelityReport` verdicts.  The builders
are pure functions of those objects, so a served value is *float-identical*
to what ``repro-traffic campaign --verify-aggregates`` would print from
the same sketches: floats travel through ``json.dumps``/``repr``, which
round-trips every finite double exactly.

ETags are derived from sketch digests: every aggregate-determined
document's entity tag is a hash of (campaign digest, family), so a client
that cached a response keeps getting ``304 Not Modified`` until the
underlying aggregate's bytes actually change.
"""

from __future__ import annotations

import hashlib
import json
from typing import Any, Mapping

from ..analysis.histogram import LOG_GRID
from ..campaign.fidelity import AGGREGATE_CLAIMS, evaluate_aggregate
from ..campaign.sketches import CampaignAggregate
from ..dataset.aggregation import DURATION_EDGES
from ..dataset.records import SERVICE_NAMES
from ..verify.report import FidelityReport

#: The endpoint families whose documents are precomputed per campaign.
AGGREGATE_FAMILIES = (
    "services/shares",
    "pdf/volume",
    "pdf/duration",
    "fidelity",
)

#: Reserved store key of release-level documents (arrival deciles are a
#: property of the model release, not of any one campaign).
RELEASE_SCOPE = ""


def canonical_body(document: Mapping[str, Any]) -> str:
    """Canonical serialized form of a document (sorted keys, compact)."""
    return json.dumps(document, sort_keys=True, separators=(",", ":"))


def document_etag(source_digest: str, family: str) -> str:
    """Strong entity tag of one document, derived from its sketch digest.

    The tag is a pure function of (source digest, family): two ingests of
    byte-identical aggregates produce byte-identical tags, and any change
    to the aggregate's canonical bytes changes every family's tag.
    """
    material = f"{source_digest}:{family}".encode("utf-8")
    return hashlib.sha256(material).hexdigest()[:32]


def shares_document(name: str, aggregate: CampaignAggregate) -> dict:
    """Per-service session/traffic shares (Table 1 / Fig 4 source data).

    Service order and share values come from
    :meth:`CampaignAggregate.shares_table` — the exact floats the
    aggregate fidelity gate ranks and judges.
    """
    shares = aggregate.shares_table()
    return {
        "campaign": name,
        "digest": aggregate.digest(),
        "sessions": aggregate.n_sessions,
        "total_volume_mb": aggregate.total_volume_mb(),
        "services": [
            {
                "service": service,
                "session_share": shares[service][0],
                "traffic_share": shares[service][1],
            }
            for service in SERVICE_NAMES
        ],
    }


def volume_pdf_document(name: str, aggregate: CampaignAggregate) -> dict:
    """Campaign volume PDF over the global ``log10(MB)`` grid."""
    return {
        "campaign": name,
        "digest": aggregate.digest(),
        "axis": "log10_volume_mb",
        "edges": [float(e) for e in LOG_GRID],
        "density": [float(d) for d in aggregate.volume_pdf()],
        "samples": aggregate.volume_hist.total,
    }


def duration_pdf_document(name: str, aggregate: CampaignAggregate) -> dict:
    """Campaign duration PDF over the Section 3.2 geometric bins."""
    return {
        "campaign": name,
        "digest": aggregate.digest(),
        "axis": "duration_s",
        "edges": [float(e) for e in DURATION_EDGES],
        "density": [float(d) for d in aggregate.duration_pdf()],
        "samples": aggregate.duration_hist.total,
    }


def fidelity_document(
    name: str, aggregate: CampaignAggregate, baseline
) -> dict:
    """Aggregate-only fidelity verdicts under the golden baseline.

    The checks are exactly :func:`~repro.campaign.fidelity.evaluate_aggregate`'s
    — same claims, same tolerance bands, same measured floats.  An
    all-empty campaign yields the deterministic per-claim ``skipped``
    verdicts instead of a division error.
    """
    report = evaluate_aggregate(aggregate, baseline)
    return {
        "campaign": name,
        "digest": aggregate.digest(),
        "claims": list(AGGREGATE_CLAIMS),
        "summary": report.summary(),
        "checks": [result.to_dict() for result in report.results],
    }


def fidelity_report_from_document(document: Mapping[str, Any]) -> FidelityReport:
    """Rebuild the judged report from a served fidelity document."""
    return FidelityReport.from_dict({"results": document["checks"]})


def arrivals_document(
    arrivals: Mapping[str, Any], release_digest: str
) -> dict:
    """Decile arrival parameters of one model release.

    ``arrivals`` is the label → :class:`~repro.core.arrivals.ArrivalModel`
    mapping of :func:`~repro.io.params.load_release`; labels sort
    lexicographically so the document is independent of mapping order.
    """
    return {
        "release_digest": release_digest,
        "deciles": [
            {
                "label": label,
                "peak_mu": float(model.peak_mu),
                "peak_sigma": float(model.peak_sigma),
                "night_scale": float(model.night_scale),
                "night_shape": float(model.night_shape),
            }
            for label, model in sorted(arrivals.items())
        ],
    }


def build_aggregate_documents(
    name: str, aggregate: CampaignAggregate, baseline
) -> dict[str, dict]:
    """All precomputed per-campaign documents, keyed by family."""
    return {
        "services/shares": shares_document(name, aggregate),
        "pdf/volume": volume_pdf_document(name, aggregate),
        "pdf/duration": duration_pdf_document(name, aggregate),
        "fidelity": fidelity_document(name, aggregate, baseline),
    }
