"""Session-level invariance analysis across space, time and RAT (Fig 8).

Section 4.4 quantifies how much a service's session-level statistics change
across (i) working days vs weekends, (ii) urbanization levels, (iii) large
cities, and (iv) 4G vs 5G RATs — always concluding that these differences
are negligible compared to the inter-service diversity ("Apps").  The
comparison metric is EMD for volume PDFs and SED for duration–volume pairs.

Each function returns the raw sample vectors; the Fig 8 boxplots are their
:class:`~repro.analysis.metrics.BoxplotStats` summaries.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

import numpy as np

from ..dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from ..dataset.network import CITIES, RAT, Network, Region
from ..dataset.records import SessionTable
from .emd import emd
from .histogram import LogHistogram
from .normalization import zero_mean
from .sed import PairsError, sed

#: Minimum sessions a (service, slice) subset needs to yield a stable PDF.
MIN_SESSIONS = 200


class ComparisonError(ValueError):
    """Raised when comparison input is insufficient."""


@dataclass
class InvarianceReport:
    """EMD and SED sample vectors per comparison tag (the Fig 8 data)."""

    emd_samples: dict[str, np.ndarray]
    sed_samples: dict[str, np.ndarray]


def _service_tables(
    table: SessionTable, services: list[str], min_sessions: int
) -> dict[str, SessionTable]:
    out = {}
    for service in services:
        sub = table.for_service(service)
        if len(sub) >= min_sessions:
            out[service] = sub
    if len(out) < 2:
        raise ComparisonError("fewer than two services have enough sessions")
    return out


def _pdf(table: SessionTable) -> LogHistogram:
    return pooled_volume_pdf(table)


def _pairwise_app_distances(
    tables: dict[str, SessionTable]
) -> tuple[np.ndarray, np.ndarray]:
    """Inter-service EMDs (zero-mean PDFs, as in Fig 6a) and SEDs."""
    names = sorted(tables)
    pdfs = {name: zero_mean(_pdf(tables[name])) for name in names}
    curves = {name: pooled_duration_volume(tables[name]) for name in names}
    emds, seds = [], []
    for a, b in combinations(names, 2):
        emds.append(emd(pdfs[a], pdfs[b]))
        try:
            ca, cb = curves[a], curves[b]
            da, va, _ = ca.observed()
            db, vb, _ = cb.observed()
            seds.append(sed(da, va, db, vb))
        except PairsError:
            continue
    return np.array(emds), np.array(seds)


def _split_distances(
    tables: dict[str, SessionTable],
    split_masks: dict,
    min_sessions: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Same-service distances between every pair of subsets of a split.

    ``split_masks`` maps a subset label to a predicate that, given a
    service's sub-table, returns the boolean row mask of that subset.
    """
    emds, seds = [], []
    for sub in tables.values():
        # Build per-part tables from the split predicates evaluated on `sub`.
        parts = [
            sub.select(predicate(sub)) for predicate in split_masks.values()
        ]
        usable = [p for p in parts if len(p) >= min_sessions]
        if len(usable) < 2:
            continue
        pdfs = [_pdf(p) for p in usable]
        curves = [pooled_duration_volume(p) for p in usable]
        for i, j in combinations(range(len(usable)), 2):
            emds.append(emd(pdfs[i], pdfs[j]))
            try:
                di, vi, _ = curves[i].observed()
                dj, vj, _ = curves[j].observed()
                seds.append(sed(di, vi, dj, vj))
            except PairsError:
                continue
    return np.array(emds), np.array(seds)


def invariance_report(
    table: SessionTable,
    network: Network,
    services: list[str],
    weekend_days: list[int],
    min_sessions: int = MIN_SESSIONS,
) -> InvarianceReport:
    """Compute every Fig 8 comparison in one pass.

    Tags produced (matching the figure's x-axis): ``Apps``, ``Days``,
    ``Regions``, ``Cities``, ``RATs``, ``Apps (4G)``, ``Apps (5G)``.
    """
    tables = _service_tables(table, services, min_sessions)
    weekend = set(weekend_days)

    emd_samples: dict[str, np.ndarray] = {}
    sed_samples: dict[str, np.ndarray] = {}

    emd_samples["Apps"], sed_samples["Apps"] = _pairwise_app_distances(tables)

    def day_split(sub: SessionTable, wanted_weekend: bool) -> np.ndarray:
        is_weekend = np.isin(sub.day, list(weekend))
        return is_weekend if wanted_weekend else ~is_weekend

    emd_samples["Days"], sed_samples["Days"] = _split_distances(
        tables,
        {
            "workdays": lambda sub: day_split(sub, False),
            "weekend": lambda sub: day_split(sub, True),
        },
        min_sessions,
    )

    region_masks = {
        region.value: (
            lambda sub, ids=frozenset(network.bs_ids_in_region(region)): np.isin(
                sub.bs_id, list(ids)
            )
        )
        for region in Region
    }
    emd_samples["Regions"], sed_samples["Regions"] = _split_distances(
        tables, region_masks, min_sessions
    )

    city_masks = {
        city: (
            lambda sub, ids=frozenset(network.bs_ids_in_city(city)): np.isin(
                sub.bs_id, list(ids)
            )
        )
        for city in CITIES
    }
    emd_samples["Cities"], sed_samples["Cities"] = _split_distances(
        tables, city_masks, min_sessions
    )

    rat_masks = {
        rat.value: (
            lambda sub, ids=frozenset(network.bs_ids_with_rat(rat)): np.isin(
                sub.bs_id, list(ids)
            )
        )
        for rat in RAT
    }
    emd_samples["RATs"], sed_samples["RATs"] = _split_distances(
        tables, rat_masks, min_sessions
    )

    for rat in RAT:
        ids = network.bs_ids_with_rat(rat)
        rat_tables = {}
        for service, sub in tables.items():
            part = sub.for_bs_ids(ids)
            if len(part) >= min_sessions:
                rat_tables[service] = part
        tag = f"Apps ({rat.value})"
        if len(rat_tables) >= 2:
            emd_samples[tag], sed_samples[tag] = _pairwise_app_distances(rat_tables)
        else:
            emd_samples[tag] = np.array([])
            sed_samples[tag] = np.array([])

    return InvarianceReport(emd_samples=emd_samples, sed_samples=sed_samples)
