"""Squared Euclidean distance between duration–volume pair vectors.

Section 4.4 compares the duration–volume relationships ``v_s(d)`` of a
service across days, regions, cities and RATs using a simple squared
Euclidean distance of the value vectors, evaluated on the duration bins both
curves cover.
"""

from __future__ import annotations

import numpy as np


class PairsError(ValueError):
    """Raised when duration–volume pair input is malformed."""


def align_pairs(
    durations_a: np.ndarray,
    values_a: np.ndarray,
    durations_b: np.ndarray,
    values_b: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Return the value vectors of two curves on their common duration bins.

    Duration bins present in only one curve are dropped: a missing bin means
    no session of that duration was observed, not a zero mean volume, so
    imputing zeros would inflate the distance.
    """
    durations_a = np.asarray(durations_a, dtype=float)
    durations_b = np.asarray(durations_b, dtype=float)
    values_a = np.asarray(values_a, dtype=float)
    values_b = np.asarray(values_b, dtype=float)
    if durations_a.shape != values_a.shape or durations_b.shape != values_b.shape:
        raise PairsError("durations and values must align within each curve")

    common, idx_a, idx_b = np.intersect1d(
        durations_a, durations_b, return_indices=True
    )
    if common.size == 0:
        raise PairsError("curves share no duration bins")
    return values_a[idx_a], values_b[idx_b]


def sed(
    durations_a: np.ndarray,
    values_a: np.ndarray,
    durations_b: np.ndarray,
    values_b: np.ndarray,
    log_space: bool = True,
) -> float:
    """Mean squared Euclidean distance between two ``v(d)`` curves.

    Volumes span several orders of magnitude, so by default the comparison is
    carried out on ``log10`` values, mirroring the log-scale plots the paper
    reasons on; set ``log_space=False`` for a plain linear-space distance.
    The sum is divided by the number of shared bins so that curves with more
    overlap are not penalized.
    """
    a, b = align_pairs(durations_a, values_a, durations_b, values_b)
    if log_space:
        ok = (a > 0) & (b > 0)
        if not np.any(ok):
            raise PairsError("no strictly positive shared bins for log-space SED")
        a, b = np.log10(a[ok]), np.log10(b[ok])
    return float(np.mean((a - b) ** 2))
