"""Scalar goodness-of-fit and dispersion metrics used across the paper.

* ``r_squared`` — coefficient of determination, reported for the power-law
  duration fits (Fig 10) and the exponential service-ranking fit (Fig 4).
* ``absolute_percentage_error`` — APE, the metric of the vRAN use case
  (Fig 13b).
* ``coefficient_of_variation`` — CV, reported next to every share in
  Table 1.
* ``BoxplotStats`` — the five-number summaries drawn in Fig 8.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


class MetricError(ValueError):
    """Raised when a metric receives unusable input."""


def r_squared(observed: np.ndarray, predicted: np.ndarray) -> float:
    """Coefficient of determination ``R^2 = 1 - SS_res / SS_tot``.

    Returns 1.0 for a perfect fit; can be negative when the model is worse
    than predicting the mean.
    """
    observed = np.asarray(observed, dtype=float)
    predicted = np.asarray(predicted, dtype=float)
    if observed.shape != predicted.shape:
        raise MetricError("observed and predicted must have the same shape")
    if observed.size < 2:
        raise MetricError("need at least two points for R^2")
    ss_res = float(np.sum((observed - predicted) ** 2))
    ss_tot = float(np.sum((observed - observed.mean()) ** 2))
    if ss_tot == 0:
        return 1.0 if ss_res == 0 else 0.0
    return 1.0 - ss_res / ss_tot


def absolute_percentage_error(reference, estimate) -> np.ndarray:
    """Element-wise APE in percent: ``100 * |estimate - reference| / reference``."""
    reference = np.asarray(reference, dtype=float)
    estimate = np.asarray(estimate, dtype=float)
    if reference.shape != estimate.shape:
        raise MetricError("reference and estimate must have the same shape")
    if np.any(reference == 0):
        raise MetricError("APE is undefined where the reference is zero")
    return 100.0 * np.abs(estimate - reference) / np.abs(reference)


def coefficient_of_variation(samples: np.ndarray) -> float:
    """CV = standard deviation / mean, as reported in Table 1."""
    samples = np.asarray(samples, dtype=float)
    if samples.size < 2:
        raise MetricError("need at least two samples for a CV")
    mean = samples.mean()
    if mean == 0:
        raise MetricError("CV is undefined for zero-mean samples")
    return float(samples.std(ddof=0) / abs(mean))


@dataclass(frozen=True)
class BoxplotStats:
    """Five-number summary with the whisker convention of Fig 8.

    Whiskers are the 5th and 95th percentiles; the box outlines the first,
    second (median) and third quartiles — exactly the convention stated in
    the Fig 8 caption.
    """

    p5: float
    q1: float
    median: float
    q3: float
    p95: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "BoxplotStats":
        """Compute the summary from raw samples."""
        samples = np.asarray(samples, dtype=float)
        if samples.size == 0:
            raise MetricError("cannot summarize an empty sample")
        p5, q1, median, q3, p95 = np.percentile(samples, [5, 25, 50, 75, 95])
        return cls(float(p5), float(q1), float(median), float(q3), float(p95))

    def as_row(self) -> tuple[float, float, float, float, float]:
        """Return the summary as a plain tuple (for table rendering)."""
        return (self.p5, self.q1, self.median, self.q3, self.p95)
