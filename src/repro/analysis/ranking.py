"""Service popularity ranking and its exponential law (Section 4.1, Fig 4).

Ranking services by the fraction of sessions they generate yields a curve
that "predominantly follows a negative exponential law" with R² ≈ 0.97, and
a strong concentration: the top-20 services account for over 78 % of all
sessions.  This module extracts the ranking from a measurement table, fits
``share(rank) = A * exp(-lambda * rank)`` and computes the concentration
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.aggregation import service_shares
from ..dataset.records import SessionTable
from .metrics import MetricError, r_squared


@dataclass(frozen=True)
class RankedService:
    """One row of the Fig 4 ranking."""

    rank: int
    service: str
    session_fraction: float
    traffic_fraction: float


@dataclass(frozen=True)
class ExponentialLawFit:
    """Fitted negative exponential law of the session-share ranking."""

    amplitude: float
    decay: float
    r2: float

    def predict(self, ranks) -> np.ndarray:
        """Session fraction predicted at the given 1-based ranks."""
        ranks = np.asarray(ranks, dtype=float)
        return self.amplitude * np.exp(-self.decay * ranks)


def rank_services(table: SessionTable) -> list[RankedService]:
    """Services sorted by decreasing session fraction (Fig 4's x-axis)."""
    shares = service_shares(table)
    ordered = sorted(shares.items(), key=lambda kv: kv[1][0], reverse=True)
    return [
        RankedService(
            rank=i + 1,
            service=name,
            session_fraction=sessions,
            traffic_fraction=traffic,
        )
        for i, (name, (sessions, traffic)) in enumerate(ordered)
        if sessions > 0
    ]


def fit_exponential_law(ranking: list[RankedService]) -> ExponentialLawFit:
    """Fit the negative exponential law to a session-share ranking.

    The fit is a linear regression of ``log(share)`` on the rank, which is
    the maximum-R² line for an exponential trend; R² is evaluated on the
    log shares (the straight-line view of Fig 4).
    """
    if len(ranking) < 3:
        raise MetricError("need at least 3 ranked services")
    ranks = np.array([r.rank for r in ranking], dtype=float)
    shares = np.array([r.session_fraction for r in ranking])
    log_shares = np.log(shares)

    slope, intercept = np.polyfit(ranks, log_shares, 1)
    predicted = intercept + slope * ranks
    return ExponentialLawFit(
        amplitude=float(np.exp(intercept)),
        decay=float(-slope),
        r2=r_squared(log_shares, predicted),
    )


def top_k_session_fraction(ranking: list[RankedService], k: int) -> float:
    """Fraction of all sessions contributed by the top-``k`` services.

    The paper reports ≈ 0.78 for ``k = 20``.
    """
    if k < 1:
        raise MetricError("k must be >= 1")
    return float(sum(r.session_fraction for r in ranking[:k]))
