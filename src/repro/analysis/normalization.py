"""Zero-mean normalization of log-volume PDFs.

Step (i) of the quantitative analysis in Section 4.3: before comparing the
shapes of per-service PDFs, each is shifted so that its mean in log-space is
zero.  This removes the sheer per-session volume of a service and leaves
only shape features (spread, modes, peaks) to drive the EMD comparison and
the clustering.
"""

from __future__ import annotations

import numpy as np

from .histogram import BIN_WIDTH, N_BINS, LogHistogram


def zero_mean(hist: LogHistogram) -> LogHistogram:
    """Return a copy of ``hist`` shifted to zero mean in log-space.

    The shift is realized by rolling the density an integer number of bins
    (the grid is uniform, so a roll is an exact translation up to one bin of
    rounding); mass rolled past the grid edge is accumulated at the edge so
    the histogram stays normalized.
    """
    normalized = hist.normalized()
    shift_bins = int(round(normalized.mean_log10() / BIN_WIDTH))
    if shift_bins == 0:
        return normalized

    density = normalized.density.copy()
    if shift_bins > 0:
        head = density[:shift_bins].sum()
        rolled = np.concatenate([density[shift_bins:], np.zeros(shift_bins)])
        rolled[0] += head  # conserve any mass pushed past the lower edge
    else:
        k = -shift_bins
        tail = density[N_BINS - k :].sum()
        rolled = np.concatenate([np.zeros(k), density[: N_BINS - k]])
        rolled[-1] += tail
    return LogHistogram(rolled, n_samples=normalized.n_samples)


def center_of_mass(hist: LogHistogram) -> float:
    """Mean of ``u = log10(x)`` — the quantity zeroed by :func:`zero_mean`."""
    return hist.mean_log10()


def zero_mean_all(histograms: list[LogHistogram]) -> list[LogHistogram]:
    """Apply :func:`zero_mean` to a collection of PDFs."""
    return [zero_mean(h) for h in histograms]
