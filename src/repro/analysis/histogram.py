"""Log-binned probability density containers.

The paper represents per-session traffic-volume distributions ``F_s(x)`` as
probability density functions over a *logarithmic* traffic axis: Eq (3) is a
Gaussian in ``log10(x)`` with no Jacobian term, i.e. a density over
``u = log10(x / MB)``.  This module provides the shared container used by the
whole code base for such densities: a histogram over a fixed, global
``log10``-spaced grid, so that PDFs from different base stations, days and
services can be averaged, compared and mixed without re-binning.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

#: Lower edge of the global log10(MB) grid (100 B = 1e-4 MB).
LOG_U_MIN = -4.0
#: Upper edge of the global log10(MB) grid (100 GB = 1e5 MB).
LOG_U_MAX = 5.0
#: Number of bins of the global grid (0.025 decades per bin).
N_BINS = 360

#: Shared bin edges in ``u = log10(x/MB)`` used by every volume PDF.
LOG_GRID = np.linspace(LOG_U_MIN, LOG_U_MAX, N_BINS + 1)
#: Bin centers of :data:`LOG_GRID`.
LOG_CENTERS = 0.5 * (LOG_GRID[:-1] + LOG_GRID[1:])
#: Width of one bin of :data:`LOG_GRID` in decades.
BIN_WIDTH = float(LOG_GRID[1] - LOG_GRID[0])


class HistogramError(ValueError):
    """Raised when a histogram operation receives inconsistent input."""


@dataclass
class LogHistogram:
    """A probability density over ``u = log10(traffic volume / MB)``.

    The density lives on the shared global grid :data:`LOG_GRID`; the value
    ``density[i]`` is the probability density (per decade) in bin ``i``, so
    ``sum(density) * BIN_WIDTH == 1`` for a normalized histogram.

    Parameters
    ----------
    density:
        Array of ``N_BINS`` non-negative densities.  It is not required to be
        normalized at construction; call :meth:`normalized` when a proper PDF
        is needed.
    n_samples:
        Number of raw samples that produced this histogram (used as the
        weight in mixture averaging, Eq (2) of the paper).
    """

    density: np.ndarray
    n_samples: float = 0.0
    _cdf_cache: np.ndarray | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        self.density = np.asarray(self.density, dtype=float)
        if self.density.shape != (N_BINS,):
            raise HistogramError(
                f"density must have shape ({N_BINS},), got {self.density.shape}"
            )
        if np.any(self.density < 0):
            raise HistogramError("density must be non-negative")
        if not np.all(np.isfinite(self.density)):
            raise HistogramError("density must be finite")

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "LogHistogram":
        """Return an all-zero histogram (no observed sessions)."""
        return cls(np.zeros(N_BINS), n_samples=0.0)

    @classmethod
    def from_volumes(cls, volumes_mb: np.ndarray) -> "LogHistogram":
        """Build a normalized PDF from raw per-session volumes in MB.

        Volumes outside the global grid are clipped to its edges rather than
        dropped, so probability mass is conserved.
        """
        volumes_mb = np.asarray(volumes_mb, dtype=float)
        if volumes_mb.size == 0:
            return cls.empty()
        if np.any(volumes_mb <= 0):
            raise HistogramError("session volumes must be strictly positive")
        u = np.clip(np.log10(volumes_mb), LOG_U_MIN, LOG_U_MAX - 1e-12)
        counts, _ = np.histogram(u, bins=LOG_GRID)
        density = counts / (volumes_mb.size * BIN_WIDTH)
        return cls(density, n_samples=float(volumes_mb.size))

    @classmethod
    def from_log_density(
        cls, pdf_log10, n_samples: float = 0.0
    ) -> "LogHistogram":
        """Discretize a callable density ``pdf_log10(u)`` onto the grid."""
        density = np.clip(np.asarray(pdf_log10(LOG_CENTERS), dtype=float), 0.0, None)
        return cls(density, n_samples=n_samples)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def total_mass(self) -> float:
        """Integral of the density over the grid (1.0 when normalized)."""
        return float(np.sum(self.density) * BIN_WIDTH)

    @property
    def is_empty(self) -> bool:
        """Whether the histogram carries no probability mass at all."""
        return not np.any(self.density > 0)

    def normalized(self) -> "LogHistogram":
        """Return a copy scaled to unit probability mass."""
        mass = self.total_mass
        if mass <= 0:
            raise HistogramError("cannot normalize an empty histogram")
        return LogHistogram(self.density / mass, n_samples=self.n_samples)

    # ------------------------------------------------------------------
    # Moments in u = log10(x) space
    # ------------------------------------------------------------------
    def mean_log10(self) -> float:
        """Mean of ``u = log10(x)`` under the (normalized) density."""
        pdf = self.normalized().density
        return float(np.sum(pdf * LOG_CENTERS) * BIN_WIDTH)

    def std_log10(self) -> float:
        """Standard deviation of ``u = log10(x)``."""
        pdf = self.normalized().density
        mu = np.sum(pdf * LOG_CENTERS) * BIN_WIDTH
        var = np.sum(pdf * (LOG_CENTERS - mu) ** 2) * BIN_WIDTH
        return float(np.sqrt(max(var, 0.0)))

    def skewness_log10(self) -> float:
        """Skewness of ``u = log10(x)`` (0 for symmetric log-densities)."""
        pdf = self.normalized().density
        mu = np.sum(pdf * LOG_CENTERS) * BIN_WIDTH
        var = np.sum(pdf * (LOG_CENTERS - mu) ** 2) * BIN_WIDTH
        if var <= 0:
            return 0.0
        third = np.sum(pdf * (LOG_CENTERS - mu) ** 3) * BIN_WIDTH
        return float(third / var**1.5)

    def mode_mb(self) -> float:
        """Traffic volume (MB) at the highest-density bin."""
        if self.is_empty:
            raise HistogramError("empty histogram has no mode")
        return float(10.0 ** LOG_CENTERS[int(np.argmax(self.density))])

    def mean_mb(self) -> float:
        """Mean traffic volume in MB (expectation of x, not of log x)."""
        pdf = self.normalized().density
        return float(np.sum(pdf * 10.0**LOG_CENTERS) * BIN_WIDTH)

    # ------------------------------------------------------------------
    # CDF / sampling
    # ------------------------------------------------------------------
    def cdf(self) -> np.ndarray:
        """Cumulative distribution evaluated at the upper edge of each bin."""
        if self._cdf_cache is None:
            pdf = self.normalized().density
            self._cdf_cache = np.cumsum(pdf) * BIN_WIDTH
        return self._cdf_cache

    def quantile_mb(self, q: float) -> float:
        """Return the traffic volume (MB) at cumulative probability ``q``."""
        if not 0.0 <= q <= 1.0:
            raise HistogramError(f"quantile must be in [0, 1], got {q}")
        cdf = self.cdf()
        idx = int(np.searchsorted(cdf, q, side="left"))
        idx = min(idx, N_BINS - 1)
        return float(10.0 ** LOG_GRID[idx + 1])

    def sample_mb(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` volumes (MB) by inverse-CDF sampling.

        Samples are uniformly jittered within their bin so the output is a
        continuous variate rather than a grid-valued one.
        """
        if self.is_empty:
            raise HistogramError("cannot sample from an empty histogram")
        pdf = self.normalized().density
        probs = pdf * BIN_WIDTH
        probs = probs / probs.sum()
        bins = rng.choice(N_BINS, size=size, p=probs)
        u = LOG_GRID[bins] + rng.random(size) * BIN_WIDTH
        return 10.0**u

    # ------------------------------------------------------------------
    # Arithmetic used by averaging / mixtures
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "LogHistogram":
        """Return a copy with the density multiplied by ``factor >= 0``."""
        if factor < 0:
            raise HistogramError("scale factor must be non-negative")
        return LogHistogram(self.density * factor, n_samples=self.n_samples)

    @staticmethod
    def weighted_average(
        histograms: list["LogHistogram"], weights: list[float] | None = None
    ) -> "LogHistogram":
        """Weighted mixture of PDFs — Eq (2) of the paper.

        When ``weights`` is omitted, each histogram's ``n_samples`` is used,
        which matches the session-count weighting ``w_s^{c,t}`` of Eq (2).
        """
        if not histograms:
            raise HistogramError("need at least one histogram to average")
        if weights is None:
            weights = [h.n_samples for h in histograms]
        if len(weights) != len(histograms):
            raise HistogramError("weights and histograms must align")
        w = np.asarray(weights, dtype=float)
        if np.any(w < 0):
            raise HistogramError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            return LogHistogram.empty()
        density = np.zeros(N_BINS)
        for hist, weight in zip(histograms, w):
            if weight > 0 and not hist.is_empty:
                density += weight * hist.normalized().density
        return LogHistogram(density / total, n_samples=float(total))

    def residual_against(self, other: "LogHistogram") -> np.ndarray:
        """Positive part of ``self - other`` (Section 5.2, step 1)."""
        return np.clip(
            self.normalized().density - other.normalized().density, 0.0, None
        )
