"""Centroid hierarchical clustering of service PDFs (Section 4.3).

The paper groups the zero-mean-normalized volume PDFs of all services with
a bespoke centroid-agglomerative procedure: repeatedly merge the two PDFs
at minimum earth-mover distance, replace them with their session-count-
weighted average (Eq 2), and recompute distances from the merged PDF to the
rest.  The hierarchy is then cut at every level and scored with the
silhouette index, whose sharp drop after 3 clusters (Fig 6b) shows that no
finer service taxonomy exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .emd import emd, emd_matrix
from .histogram import LogHistogram


class ClusteringError(ValueError):
    """Raised on malformed clustering input."""


@dataclass(frozen=True)
class MergeStep:
    """One agglomeration step: clusters ``a`` and ``b`` merged at
    ``distance`` into a new cluster ``merged_id``."""

    a: int
    b: int
    distance: float
    merged_id: int


class CentroidHierarchicalClustering:
    """The paper's EMD + weighted-average agglomerative procedure.

    Parameters
    ----------
    histograms:
        One (normalized) volume PDF per item; zero-mean-normalize them
        first (:func:`repro.analysis.normalization.zero_mean`) to reproduce
        the Section 4.3 pipeline.
    weights:
        Session counts used when averaging merged PDFs (Eq 2); defaults to
        each histogram's ``n_samples``.
    """

    def __init__(
        self,
        histograms: list[LogHistogram],
        weights: list[float] | None = None,
    ):
        if len(histograms) < 2:
            raise ClusteringError("need at least two PDFs to cluster")
        self._n = len(histograms)
        self._histograms = [h.normalized() for h in histograms]
        if weights is None:
            weights = [max(h.n_samples, 1.0) for h in histograms]
        if len(weights) != self._n:
            raise ClusteringError("weights must align with histograms")
        self._weights = [float(w) for w in weights]
        self._merges: list[MergeStep] | None = None

    # ------------------------------------------------------------------
    def fit(self) -> list[MergeStep]:
        """Run the agglomeration to a single cluster; returns the merges."""
        if self._merges is not None:
            return self._merges

        # Active clusters: id -> (pdf, weight, members).
        active: dict[int, tuple[LogHistogram, float, list[int]]] = {
            i: (self._histograms[i], self._weights[i], [i])
            for i in range(self._n)
        }
        distances: dict[tuple[int, int], float] = {}
        ids = sorted(active)
        for pos, i in enumerate(ids):
            for j in ids[pos + 1 :]:
                distances[(i, j)] = emd(active[i][0], active[j][0])

        merges: list[MergeStep] = []
        next_id = self._n
        while len(active) > 1:
            (a, b), distance = min(distances.items(), key=lambda kv: kv[1])
            pdf_a, weight_a, members_a = active.pop(a)
            pdf_b, weight_b, members_b = active.pop(b)
            merged = LogHistogram.weighted_average(
                [pdf_a, pdf_b], [weight_a, weight_b]
            )
            active[next_id] = (merged, weight_a + weight_b, members_a + members_b)
            distances = {
                key: value
                for key, value in distances.items()
                if a not in key and b not in key
            }
            for other in active:
                if other != next_id:
                    distances[(other, next_id)] = emd(active[other][0], merged)
            merges.append(MergeStep(a=a, b=b, distance=distance, merged_id=next_id))
            next_id += 1

        self._merges = merges
        return merges

    def labels(self, n_clusters: int) -> np.ndarray:
        """Flat cluster labels after cutting the hierarchy at ``n_clusters``."""
        if not 1 <= n_clusters <= self._n:
            raise ClusteringError(
                f"n_clusters must be in 1..{self._n}, got {n_clusters}"
            )
        merges = self.fit()
        # Replay merges until n_clusters remain.
        membership: dict[int, list[int]] = {i: [i] for i in range(self._n)}
        for step in merges:
            if len(membership) == n_clusters:
                break
            members = membership.pop(step.a) + membership.pop(step.b)
            membership[step.merged_id] = members
        labels = np.empty(self._n, dtype=int)
        for label, (_, members) in enumerate(sorted(membership.items())):
            for item in members:
                labels[item] = label
        return labels


def silhouette_score(distance_matrix: np.ndarray, labels: np.ndarray) -> float:
    """Mean silhouette index of a flat clustering over a distance matrix.

    For each item, ``s = (b - a) / max(a, b)`` with ``a`` the mean distance
    to its own cluster and ``b`` the smallest mean distance to another
    cluster; singleton clusters contribute 0 (the Rousseeuw convention).
    """
    distance_matrix = np.asarray(distance_matrix, dtype=float)
    labels = np.asarray(labels)
    n = labels.size
    if distance_matrix.shape != (n, n):
        raise ClusteringError("distance matrix must be square over the items")
    unique = np.unique(labels)
    if unique.size < 2:
        raise ClusteringError("need at least two clusters for a silhouette")

    scores = np.zeros(n)
    for i in range(n):
        own = labels == labels[i]
        own[i] = False
        if not np.any(own):
            scores[i] = 0.0  # singleton
            continue
        a = distance_matrix[i, own].mean()
        b = min(
            distance_matrix[i, labels == other].mean()
            for other in unique
            if other != labels[i]
        )
        denom = max(a, b)
        scores[i] = 0.0 if denom == 0 else (b - a) / denom
    return float(scores.mean())


def silhouette_profile(
    histograms: list[LogHistogram],
    weights: list[float] | None = None,
    max_clusters: int | None = None,
) -> list[tuple[int, float]]:
    """Silhouette score at every cut level 2..max (the Fig 6b curve)."""
    clustering = CentroidHierarchicalClustering(histograms, weights)
    matrix = emd_matrix([h.normalized() for h in histograms])
    top = max_clusters if max_clusters is not None else len(histograms) - 1
    top = min(top, len(histograms) - 1)
    profile = []
    for k in range(2, top + 1):
        profile.append((k, silhouette_score(matrix, clustering.labels(k))))
    return profile
