"""Earth mover (1-D Wasserstein) distance between volume PDFs.

Section 4.3 of the paper compares normalized traffic-volume PDFs with the
earth mover distance; on a one-dimensional ordered support, EMD has the
closed form ``integral |CDF_a(u) - CDF_b(u)| du``, which on the shared
histogram grid reduces to a cumulative-sum difference.
"""

from __future__ import annotations

import numpy as np

from .histogram import BIN_WIDTH, LogHistogram


def emd(a: LogHistogram, b: LogHistogram) -> float:
    """Earth mover distance between two (normalized) log-volume PDFs.

    The distance is measured in decades of traffic volume (the unit of the
    ``u = log10(x)`` axis).  Identical PDFs return exactly 0.
    """
    cdf_a = np.cumsum(a.normalized().density) * BIN_WIDTH
    cdf_b = np.cumsum(b.normalized().density) * BIN_WIDTH
    return float(np.sum(np.abs(cdf_a - cdf_b)) * BIN_WIDTH)


def emd_matrix(histograms: list[LogHistogram]) -> np.ndarray:
    """Symmetric matrix of pairwise EMDs (the Fig 6a similarity matrix)."""
    n = len(histograms)
    cdfs = np.stack(
        [np.cumsum(h.normalized().density) * BIN_WIDTH for h in histograms]
    )
    matrix = np.zeros((n, n))
    for i in range(n):
        diffs = np.abs(cdfs[i + 1 :] - cdfs[i]).sum(axis=1) * BIN_WIDTH
        matrix[i, i + 1 :] = diffs
        matrix[i + 1 :, i] = diffs
    return matrix
