"""Characterization toolkit: PDFs, distances, clustering, ranking (Sec. 4).

The low-level pieces (histograms, distances, clustering, metrics) are
imported eagerly.  :mod:`~repro.analysis.comparisons` and
:mod:`~repro.analysis.ranking` consume the dataset layer (which itself
builds on the histograms here), so they are exposed lazily to keep the
import graph acyclic.
"""

from .clustering import (
    CentroidHierarchicalClustering,
    silhouette_profile,
    silhouette_score,
)
from .emd import emd, emd_matrix
from .histogram import LOG_CENTERS, LOG_GRID, LogHistogram
from .metrics import (
    BoxplotStats,
    absolute_percentage_error,
    coefficient_of_variation,
    r_squared,
)
from .normalization import zero_mean, zero_mean_all
from .replication import MetricSummary, ReplicationSummary, replicate
from .sed import sed
from .throughput import (
    mean_throughput_mbps,
    measured_throughput_pdf,
    model_throughput_pdf,
    throughput_pdf_from_samples,
)

_LAZY = {
    "InvarianceReport": ("comparisons", "InvarianceReport"),
    "invariance_report": ("comparisons", "invariance_report"),
    "ExponentialLawFit": ("ranking", "ExponentialLawFit"),
    "RankedService": ("ranking", "RankedService"),
    "fit_exponential_law": ("ranking", "fit_exponential_law"),
    "rank_services": ("ranking", "rank_services"),
    "top_k_session_fraction": ("ranking", "top_k_session_fraction"),
    "CampaignReport": ("validation", "CampaignReport"),
    "Finding": ("validation", "Finding"),
    "Severity": ("validation", "Severity"),
    "ks_distance": ("validation", "ks_distance"),
    "qq_max_deviation": ("validation", "qq_max_deviation"),
    "qq_points": ("validation", "qq_points"),
    "validate_campaign": ("validation", "validate_campaign"),
}


def __getattr__(name: str):
    """Lazily resolve the dataset-dependent members (PEP 562)."""
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BoxplotStats",
    "CampaignReport",
    "CentroidHierarchicalClustering",
    "ExponentialLawFit",
    "InvarianceReport",
    "LOG_CENTERS",
    "LOG_GRID",
    "LogHistogram",
    "MetricSummary",
    "RankedService",
    "ReplicationSummary",
    "absolute_percentage_error",
    "coefficient_of_variation",
    "emd",
    "emd_matrix",
    "fit_exponential_law",
    "invariance_report",
    "r_squared",
    "replicate",
    "rank_services",
    "ks_distance",
    "qq_max_deviation",
    "qq_points",
    "sed",
    "silhouette_profile",
    "silhouette_score",
    "top_k_session_fraction",
    "mean_throughput_mbps",
    "measured_throughput_pdf",
    "model_throughput_pdf",
    "throughput_pdf_from_samples",
    "validate_campaign",
    "zero_mean",
    "zero_mean_all",
]
