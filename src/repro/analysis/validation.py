"""Goodness-of-fit helpers and campaign sanity validation.

Two audiences:

* **modelers** get the Kolmogorov–Smirnov distance and QQ points to judge
  a fitted volume model against its measurement beyond the single EMD
  number of Section 5.4;
* **data producers** get :func:`validate_campaign`, a structural check of
  a measurement campaign against the paper's stylized facts (circadian
  bi-modality, Table 1 share stability, transient-session presence) that
  flags simulation/collection mistakes before they poison downstream
  fits.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ..dataset.records import SERVICE_INDEX, SessionTable
from ..dataset.services import session_share_fractions
from .histogram import BIN_WIDTH, LOG_GRID, LogHistogram


class ValidationError(ValueError):
    """Raised on unusable validation input."""


# ----------------------------------------------------------------------
# Goodness of fit
# ----------------------------------------------------------------------

def ks_distance(a: LogHistogram, b: LogHistogram) -> float:
    """Kolmogorov–Smirnov distance: max |CDF_a - CDF_b| on the grid.

    Complements EMD: KS is sensitive to the worst local mismatch, EMD to
    the total transported mass.
    """
    cdf_a = np.cumsum(a.normalized().density) * BIN_WIDTH
    cdf_b = np.cumsum(b.normalized().density) * BIN_WIDTH
    return float(np.max(np.abs(cdf_a - cdf_b)))


def qq_points(
    measured: LogHistogram,
    model: LogHistogram,
    quantiles: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Quantile–quantile points of two volume PDFs, in ``log10(MB)``.

    A perfect model lies on the diagonal; the returned arrays are the
    measured and modelled quantiles at the requested probabilities
    (default: 1 %...99 % in 49 steps).
    """
    if quantiles is None:
        quantiles = np.linspace(0.01, 0.99, 49)
    quantiles = np.asarray(quantiles, dtype=float)
    if np.any((quantiles <= 0) | (quantiles >= 1)):
        raise ValidationError("quantiles must lie strictly in (0, 1)")
    measured_q = np.array(
        [np.log10(measured.quantile_mb(q)) for q in quantiles]
    )
    model_q = np.array([np.log10(model.quantile_mb(q)) for q in quantiles])
    return measured_q, model_q


def qq_max_deviation(measured: LogHistogram, model: LogHistogram) -> float:
    """Largest |measured - model| quantile gap in decades (1 %..99 %)."""
    measured_q, model_q = qq_points(measured, model)
    return float(np.max(np.abs(measured_q - model_q)))


# ----------------------------------------------------------------------
# Campaign validation
# ----------------------------------------------------------------------

class Severity(enum.Enum):
    """How bad a finding is."""

    INFO = "info"
    WARNING = "warning"
    ERROR = "error"


@dataclass(frozen=True)
class Finding:
    """One observation of the campaign validator."""

    severity: Severity
    check: str
    message: str


@dataclass
class CampaignReport:
    """Outcome of :func:`validate_campaign`."""

    findings: list[Finding]

    @property
    def ok(self) -> bool:
        """True when no ERROR-level finding was raised."""
        return all(f.severity is not Severity.ERROR for f in self.findings)

    def errors(self) -> list[Finding]:
        """The ERROR-level findings."""
        return [f for f in self.findings if f.severity is Severity.ERROR]

    def warnings(self) -> list[Finding]:
        """The WARNING-level findings."""
        return [f for f in self.findings if f.severity is Severity.WARNING]


def validate_campaign(
    table: SessionTable,
    n_days: int,
    share_tolerance: float = 0.05,
) -> CampaignReport:
    """Check a measurement campaign against the paper's stylized facts.

    Checks performed:

    * non-emptiness and day coverage;
    * circadian bi-modality: daytime arrival rates far above nighttime;
    * Table 1 share stability: the head services' session shares within
      ``share_tolerance`` (absolute) of the catalog;
    * transient sessions present but not dominant (insight e);
    * volumes within the global PDF grid (silent clipping would bias
      every downstream fit).
    """
    findings: list[Finding] = []

    if len(table) == 0:
        findings.append(
            Finding(Severity.ERROR, "non-empty", "campaign has no sessions")
        )
        return CampaignReport(findings)

    observed_days = set(np.unique(table.day).tolist())
    missing = sorted(set(range(n_days)) - observed_days)
    if missing:
        findings.append(
            Finding(
                Severity.ERROR,
                "day-coverage",
                f"days without any session: {missing}",
            )
        )

    # Circadian structure.
    minute_counts = np.bincount(table.start_minute, minlength=MINUTES_PER_DAY)
    mask = peak_minute_mask()
    day_rate = minute_counts[mask].mean()
    night_rate = max(minute_counts[~mask].mean(), 1e-9)
    if day_rate < 2.0 * night_rate:
        findings.append(
            Finding(
                Severity.WARNING,
                "circadian",
                f"day/night arrival ratio {day_rate / night_rate:.2f} < 2: "
                "the bi-modal structure of Fig 3 is missing",
            )
        )
    else:
        findings.append(
            Finding(
                Severity.INFO,
                "circadian",
                f"day/night arrival ratio {day_rate / night_rate:.1f}",
            )
        )

    # Table 1 share stability for the head services.
    counts = np.bincount(table.service_idx, minlength=len(SERVICE_INDEX))
    total = counts.sum()
    expected = session_share_fractions()
    for name in ("Facebook", "Instagram", "SnapChat"):
        share = counts[SERVICE_INDEX[name]] / total
        gap = abs(share - expected[name])
        if gap > share_tolerance:
            findings.append(
                Finding(
                    Severity.WARNING,
                    "table1-shares",
                    f"{name} session share {100 * share:.1f} % deviates "
                    f"{100 * gap:.1f} pp from Table 1",
                )
            )

    # Transient sessions (insight e).
    transient_share = float(table.truncated.mean())
    if transient_share == 0.0:
        findings.append(
            Finding(
                Severity.WARNING,
                "transients",
                "no truncated sessions at all — mobility is off, the "
                "low-volume head of every PDF will be missing",
            )
        )
    elif transient_share > 0.6:
        findings.append(
            Finding(
                Severity.WARNING,
                "transients",
                f"{100 * transient_share:.0f} % of sessions truncated — "
                "mobility dominates the statistics",
            )
        )
    else:
        findings.append(
            Finding(
                Severity.INFO,
                "transients",
                f"truncated-session share {100 * transient_share:.1f} %",
            )
        )

    # Grid coverage.
    log_volumes = np.log10(table.volume_mb.astype(float))
    clipped = float(
        np.mean((log_volumes <= LOG_GRID[0]) | (log_volumes >= LOG_GRID[-1]))
    )
    if clipped > 0.001:
        findings.append(
            Finding(
                Severity.WARNING,
                "grid-coverage",
                f"{100 * clipped:.2f} % of volumes fall outside the global "
                "log grid and would be clipped in every PDF",
            )
        )

    return CampaignReport(findings)
