"""Replication helpers: mean ± spread over independent experiment runs.

The paper reports single-run use-case results; a production evaluation
wants error bars.  :func:`replicate` reruns any seeded experiment with
independent generators and summarizes each scalar metric across the
replicas, so a Table 2 row can carry a confidence interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


class ReplicationError(ValueError):
    """Raised on unusable replication input."""


@dataclass(frozen=True)
class MetricSummary:
    """Across-replica summary of one scalar metric."""

    mean: float
    std: float
    low: float
    high: float
    n: int

    def __str__(self) -> str:
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


@dataclass
class ReplicationSummary:
    """Summaries of every metric produced by the replicated experiment."""

    metrics: dict[str, MetricSummary]

    def __getitem__(self, name: str) -> MetricSummary:
        return self.metrics[name]

    def rows(self) -> list[list]:
        """Table rows: metric, mean, std, min, max."""
        return [
            [name, m.mean, m.std, m.low, m.high]
            for name, m in self.metrics.items()
        ]


def replicate(
    experiment: Callable[[np.random.Generator], dict[str, float]],
    n_replicas: int,
    seed: int = 0,
) -> ReplicationSummary:
    """Run a seeded experiment ``n_replicas`` times and summarize.

    ``experiment`` receives a fresh independent generator per replica
    (spawned from one seed sequence, so replicas never share streams) and
    returns a flat dict of scalar metrics; every replica must return the
    same metric names.
    """
    if n_replicas < 2:
        raise ReplicationError("need at least 2 replicas to summarize")

    streams = np.random.SeedSequence(seed).spawn(n_replicas)
    samples: dict[str, list[float]] = {}
    for i, stream in enumerate(streams):
        result = experiment(np.random.default_rng(stream))
        if not result:
            raise ReplicationError("experiment returned no metrics")
        if samples and set(result) != set(samples):
            raise ReplicationError(
                f"replica {i} returned different metrics: "
                f"{sorted(result)} vs {sorted(samples)}"
            )
        for name, value in result.items():
            samples.setdefault(name, []).append(float(value))

    return ReplicationSummary(
        metrics={
            name: MetricSummary(
                mean=float(np.mean(values)),
                std=float(np.std(values, ddof=1)),
                low=float(np.min(values)),
                high=float(np.max(values)),
                n=len(values),
            )
            for name, values in samples.items()
        }
    )
