"""Per-session average-throughput distributions.

Section 5.4: the released models reproduce "realistic session-level
statistics for the traffic volume ..., duration ... and average throughput
(computed as the ratio of the volume to the duration)".  This module
derives that third quantity — for measured tables and for fitted models —
as a density over ``log10(throughput / Mbps)`` on the shared global grid,
so it can be compared with the same EMD machinery as the volume PDFs.
"""

from __future__ import annotations

import numpy as np

from ..dataset.records import SessionTable
from .histogram import HistogramError, LogHistogram


def throughput_pdf_from_samples(
    volumes_mb: np.ndarray, durations_s: np.ndarray
) -> LogHistogram:
    """Density of ``log10(8 * volume / duration)`` (throughput in Mbps).

    The returned :class:`LogHistogram` lives on the global log grid; its
    axis is decades of Mbps rather than decades of MB.
    """
    volumes_mb = np.asarray(volumes_mb, dtype=float)
    durations_s = np.asarray(durations_s, dtype=float)
    if volumes_mb.shape != durations_s.shape:
        raise HistogramError("volumes and durations must align")
    if volumes_mb.size == 0:
        return LogHistogram.empty()
    if np.any(durations_s <= 0):
        raise HistogramError("durations must be positive")
    throughput = 8.0 * volumes_mb / durations_s
    return LogHistogram.from_volumes(throughput)


def measured_throughput_pdf(table: SessionTable) -> LogHistogram:
    """Throughput PDF of all sessions in a measurement table."""
    return throughput_pdf_from_samples(
        table.volume_mb.astype(float), table.duration_s.astype(float)
    )


def model_throughput_pdf(
    model, rng: np.random.Generator, n_samples: int = 100_000
) -> LogHistogram:
    """Throughput PDF implied by a fitted :class:`SessionLevelModel`.

    The model couples throughput to volume through the deterministic
    inverse power law, so the distribution is obtained by sampling.
    """
    if n_samples < 1:
        raise HistogramError("need at least one sample")
    batch = model.sample_sessions(rng, n_samples)
    return throughput_pdf_from_samples(batch.volumes_mb, batch.durations_s)


def mean_throughput_mbps(table: SessionTable) -> float:
    """Mean per-session average throughput of a table (Mbps)."""
    if len(table) == 0:
        raise HistogramError("empty table")
    return float(table.throughput_mbps().mean())
