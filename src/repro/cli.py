"""Command-line interface: simulate, fit, generate.

Subcommands cover the library's end-to-end flow, each assembled from the
staged pipeline engine (:mod:`repro.pipeline`) so campaigns run as
independent per-(day, BS) seed-stream work units:

* ``repro-traffic simulate`` — run a synthetic measurement campaign and
  print its headline statistics;
* ``repro-traffic fit`` — run a campaign, fit the session-level models and
  write a release file with every parameter tuple;
* ``repro-traffic generate`` — load a release file and generate synthetic
  session-level traffic from the models;
* ``repro-traffic campaign`` — run a sharded, aggregate-only campaign at
  scale: (day, BS-range) shards stream through per-worker arenas, only
  mergeable sketches are kept (bounded memory at any BS count), completed
  shards checkpoint through the cache and ``--resume`` folds them back in;
* ``repro-traffic validate`` — check a campaign (simulated and cached, or
  an exported trace) against the paper's stylized facts;
* ``repro-traffic verify`` — run the statistical fidelity gate: simulate
  the baseline campaign, measure the paper's headline statistics and judge
  them against the golden tolerance bands (exit 1 on any breach);
* ``repro-traffic reproduce`` — regenerate a paper artefact at laptop
  scale;
* ``repro-traffic serve`` — run the statistics service: ingest spooled
  campaign checkpoints, merged aggregate JSON, model releases and
  telemetry manifests into a SQLite aggregate store, then answer the
  ``/v1`` query API (per-service shares, volume/duration PDFs, decile
  arrival parameters, fidelity verdicts) for many concurrent clients
  with sketch-digest ETags — strictly out-of-band: campaigns are
  byte-identical whether or not a server ever ingested them;
* ``repro-traffic report`` — render the telemetry of a previous run
  (manifest, stage table, metrics, slowest spans);
* ``repro-traffic lint`` — run the AST-based invariant checker
  (:mod:`repro.lint`) over ``src/``, ``tools/`` and ``benchmarks/``:
  determinism (D), parallel-safety (P) and structure (S) rules, with
  inline suppressions and a checked-in baseline (see
  ``docs/LINTING.md``).

Every subcommand accepts ``--jobs N`` to fan the heavy stages out across
worker processes — output is bit-identical for any worker count thanks to
the per-unit seed streams.  ``simulate``/``fit``/``validate`` cache the
simulated campaign under ``--cache-dir`` (default ``.repro-cache`` or
``$REPRO_CACHE_DIR``), so repeated runs with unchanged config and seed skip
re-simulation; pass ``--no-cache`` to opt out.  ``generate`` runs the
batched synthesis engine: ``--chunk-size`` bounds peak memory by spooling
the campaign chunk-wise through the cache, and repeated runs resume from
already-spooled chunks.

Every run carries a :class:`~repro.obs.telemetry.Telemetry`: pass
``--telemetry-dir DIR`` to stream span/stage/metric events into
``DIR/events.jsonl`` and write a run manifest, ``--log-json`` for
machine-readable stage lines, ``-v``/``-q`` to raise or lower verbosity,
and ``--profile`` to capture per-stage cProfile dumps.  Telemetry is
strictly out-of-band — identical seeds keep producing byte-identical
campaigns whether it is enabled or not.
"""

from __future__ import annotations

import argparse
import sys

from .io.cache import ArtifactCache
from .obs.telemetry import Telemetry
from .pipeline.context import RunContext
from .pipeline.stages import Pipeline
from .pipeline.standard import (
    fit_arrivals_stage,
    fit_models_stage,
    network_stage,
    read_trace_stage,
    simulate_stage,
    validate_stage,
)


def _add_telemetry_flags(sub: argparse.ArgumentParser) -> None:
    """Attach the telemetry/verbosity flags every run subcommand shares."""
    sub.add_argument(
        "--telemetry-dir", default=None, metavar="DIR",
        help="write events.jsonl + manifest.json (+ profiles) into DIR",
    )
    sub.add_argument(
        "--log-json", action="store_true",
        help="render stage outcomes as JSON lines instead of text",
    )
    sub.add_argument(
        "-v", "--verbose", action="count", default=0,
        help="raise verbosity (repeatable; -v adds span timing lines)",
    )
    sub.add_argument(
        "-q", "--quiet", action="count", default=0,
        help="lower verbosity (repeatable; -q silences stage lines)",
    )
    sub.add_argument(
        "--profile", action="store_true",
        help="capture per-stage cProfile dumps into the telemetry dir",
    )
    sub.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="expose the run's live metrics as Prometheus text at "
        "http://127.0.0.1:PORT/metrics for the run's duration "
        "(0 picks an ephemeral port; strictly out-of-band)",
    )


def _add_run_flags(sub: argparse.ArgumentParser, cache: bool = True) -> None:
    """Attach the pipeline flags (``--jobs``, cache control) to a subcommand."""
    sub.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the fan-out stages (default 1 = serial)",
    )
    if cache:
        sub.add_argument(
            "--cache-dir", default=None,
            help="artifact cache root (default: $REPRO_CACHE_DIR or .repro-cache)",
        )
        sub.add_argument(
            "--no-cache", action="store_true",
            help="disable the artifact cache for this run",
        )
    _add_telemetry_flags(sub)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-traffic",
        description="Session-level mobile traffic models (IMC'23 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a synthetic measurement campaign")
    sim.add_argument("--bs", type=int, default=50, help="number of base stations")
    sim.add_argument("--days", type=int, default=1, help="number of days")
    sim.add_argument(
        "--trace", default=None,
        help="also export the campaign as a CSV(.gz) session trace",
    )
    _add_run_flags(sim)

    fit = sub.add_parser("fit", help="fit models from a campaign and save them")
    fit.add_argument("--bs", type=int, default=50)
    fit.add_argument("--days", type=int, default=2)
    fit.add_argument("--output", required=True, help="release file path")
    fit.add_argument(
        "--from-trace", default=None,
        help="fit from an existing CSV(.gz) trace instead of simulating",
    )
    _add_run_flags(fit)

    gen = sub.add_parser("generate", help="generate traffic from saved models")
    gen.add_argument("--models", required=True, help="release file path")
    gen.add_argument("--days", type=int, default=1)
    gen.add_argument("--bs", type=int, default=5, help="number of generated BSs")
    gen.add_argument(
        "--decile", type=int, default=5, help="load decile of the generated BSs"
    )
    gen.add_argument(
        "--chunk-size", type=int, default=None, metavar="SESSIONS",
        help="expected sessions per output chunk (bounds peak memory; "
        "default 1000000)",
    )
    gen.add_argument(
        "--trace", default=None,
        help="also export the generated campaign as a CSV(.gz) trace",
    )
    gen.add_argument(
        "--arena-mb", type=float, default=None, metavar="MB",
        help="preallocate the reused session arena at this budget instead "
        "of sizing it from chunk expectations",
    )
    gen.add_argument(
        "--memmap-spool", action="store_true",
        help="spool cached chunks as raw columnar segments (memory-"
        "mappable) instead of .npz archives",
    )
    _add_run_flags(gen)

    camp = sub.add_parser(
        "campaign",
        help="run a sharded aggregate-only campaign (bounded memory at scale)",
    )
    camp.add_argument("--models", required=True, help="release file path")
    camp.add_argument(
        "--bs", type=int, default=100, help="number of generated BSs"
    )
    camp.add_argument("--days", type=int, default=1, help="number of days")
    camp.add_argument(
        "--decile", type=int, default=5, help="load decile of the generated BSs"
    )
    camp.add_argument(
        "--shard-size", type=int, default=None, metavar="BS",
        help="base stations per (day, BS-range) shard (default 64)",
    )
    camp.add_argument(
        "--chunk-size", type=int, default=None, metavar="SESSIONS",
        help="expected sessions a worker materializes at once (bounds its "
        "arena; default 250000; never changes the aggregates)",
    )
    camp.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help="fold completed shards back in from cached checkpoints "
        "(--no-resume recomputes every shard)",
    )
    camp.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the merged campaign aggregate as canonical JSON",
    )
    camp.add_argument(
        "--verify-aggregates", action="store_true",
        help="judge the aggregate-determined paper claims against the "
        "golden baseline (exit 1 on any breach)",
    )
    _add_run_flags(camp)

    val = sub.add_parser(
        "validate", help="validate a campaign against stylized facts"
    )
    val.add_argument(
        "--trace", default=None,
        help="CSV(.gz) trace path (default: simulate a campaign instead)",
    )
    val.add_argument("--days", type=int, required=True, help="days covered")
    val.add_argument(
        "--bs", type=int, default=20,
        help="number of base stations when simulating (no --trace)",
    )
    _add_run_flags(val)

    ver = sub.add_parser(
        "verify", help="run the statistical fidelity gate against the baseline"
    )
    ver.add_argument(
        "--baseline", default=None,
        help="baseline JSON path (default: $REPRO_BASELINE or the "
        "checked-in baselines/paper_claims.json)",
    )
    ver.add_argument(
        "--report", default=None,
        help="also write the machine-readable JSON report to this path",
    )
    ver.add_argument(
        "--update-baseline", action="store_true",
        help="rewrite the baseline's informational 'observed' values from "
        "this run (tolerance bands are never touched)",
    )
    _add_run_flags(ver)

    rep = sub.add_parser(
        "reproduce", help="reproduce a paper experiment at laptop scale"
    )
    rep.add_argument(
        "experiment",
        choices=["table2", "fig10", "fig13b"],
        help="which paper artefact to regenerate",
    )
    _add_run_flags(rep, cache=False)

    srv = sub.add_parser(
        "serve",
        help="serve ingested campaign aggregates over the /v1 query API",
    )
    srv.add_argument(
        "--db", required=True,
        help="SQLite aggregate-store path (created on first ingest)",
    )
    srv.add_argument(
        "--host", default="127.0.0.1", help="bind address (default local)"
    )
    srv.add_argument(
        "--port", type=int, default=None,
        help="TCP port (default 8321; 0 picks an ephemeral port)",
    )
    srv.add_argument(
        "--token", default=None,
        help="bearer token required by POST /v1/submit "
        "(unset leaves submissions disabled)",
    )
    srv.add_argument(
        "--readonly", action="store_true",
        help="refuse every mutating request, token or not",
    )
    srv.add_argument(
        "--ingest-aggregate", action="append", default=[],
        metavar="NAME=PATH",
        help="ingest a merged aggregate JSON (campaign --output) "
        "as campaign NAME (repeatable)",
    )
    srv.add_argument(
        "--ingest-checkpoints", action="append", default=[],
        metavar="NAME=CACHE_ROOT",
        help="merge and ingest the campaign-shard checkpoints spooled "
        "under a cache root (repeatable)",
    )
    srv.add_argument(
        "--ingest-release", default=None, metavar="PATH",
        help="ingest a model release's decile arrival parameters",
    )
    srv.add_argument(
        "--ingest-manifest", action="append", default=[],
        metavar="NAME=DIR",
        help="attach a run's telemetry manifest (directory or "
        "manifest.json) to campaign NAME (repeatable)",
    )
    srv.add_argument(
        "--baseline", default=None,
        help="fidelity baseline JSON (default: the checked-in "
        "baselines/paper_claims.json)",
    )
    srv.add_argument(
        "--ingest-only", action="store_true",
        help="ingest, print the store contents and exit without serving",
    )
    _add_telemetry_flags(srv)

    rpt = sub.add_parser(
        "report", help="render the telemetry of a previous run"
    )
    rpt.add_argument(
        "directory",
        help="telemetry directory of the run (as given to --telemetry-dir)",
    )
    rpt.add_argument(
        "--follow", action="store_true",
        help="tail a live run: stream heartbeat/stage/access events and "
        "progress.json updates until the run finalizes",
    )
    rpt.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="poll interval while following (default 0.5)",
    )
    rpt.add_argument(
        "--follow-timeout", type=float, default=None, metavar="SECONDS",
        help="give up following after this many seconds (exit 1)",
    )

    from .lint.app import add_lint_arguments

    lint = sub.add_parser(
        "lint",
        help="run the repro-lint invariant checker (determinism, "
        "parallel safety, structure)",
    )
    add_lint_arguments(lint)
    return parser


def _make_context(
    args: argparse.Namespace, telemetry: Telemetry
) -> RunContext:
    """Build the run context a subcommand executes under.

    The run's telemetry is threaded through everything that reports into
    it: the artifact cache (hit/miss/bytes counters), the context (stage
    spans, default stage observer) and — via the context — the executors.
    """
    cache = None
    if hasattr(args, "no_cache") and not args.no_cache:
        cache = ArtifactCache(args.cache_dir, telemetry=telemetry)
    return RunContext(
        seed=args.seed,
        jobs=getattr(args, "jobs", 1),
        cache=cache,
        telemetry=telemetry,
    )


def _cmd_simulate(args: argparse.Namespace, ctx: RunContext) -> int:
    from .dataset.aggregation import service_shares
    from .io.tables import print_table

    pipeline = Pipeline(
        [network_stage(args.bs), simulate_stage(args.days)]
    )
    run = pipeline.run(ctx)
    table = run.artifact("campaign")
    shares = service_shares(table)
    top = sorted(shares.items(), key=lambda kv: kv[1][0], reverse=True)[:10]
    print(f"sessions: {len(table)}")
    print(f"total traffic: {table.total_volume_mb() / 1e3:.1f} GB")
    print_table(
        ["service", "session %", "traffic %"],
        [[name, 100 * s, 100 * t] for name, (s, t) in top],
        title="Top services",
    )
    if args.trace:
        from .io.traces import write_trace

        rows = write_trace(table, args.trace)
        print(f"trace: {rows} sessions -> {args.trace}")
    return 0


def _cmd_fit(args: argparse.Namespace, ctx: RunContext) -> int:
    from .io.params import save_release

    if args.from_trace:
        pipeline = Pipeline(
            [read_trace_stage(args.from_trace), fit_models_stage()]
        )
        run = pipeline.run(ctx)
        bank = run.artifact("bank")
        save_release(args.output, bank)
        print(
            f"fitted {len(bank)} service models from {args.from_trace} "
            f"-> {args.output}"
        )
        return 0
    pipeline = Pipeline(
        [
            network_stage(args.bs),
            simulate_stage(args.days),
            fit_models_stage(),
            fit_arrivals_stage(args.days),
        ]
    )
    run = pipeline.run(ctx)
    bank = run.artifact("bank")
    save_release(args.output, bank, run.artifact("arrivals"))
    print(f"fitted {len(bank)} service models -> {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace, ctx: RunContext) -> int:
    from .core.generator import TrafficGenerator
    from .core.service_mix import ServiceMix
    from .dataset.network import decile_peak_rate
    from .io.params import load_release
    from .pipeline.standard import generate_stage

    bank, arrivals = load_release(args.models)
    label = f"decile-{args.decile}"
    if label in arrivals:
        arrival = arrivals[label]
    else:
        # Release without arrival fits: fall back to the published decile
        # anchors of Section 5.1.
        peak = decile_peak_rate(args.decile)
        from .core.arrivals import ArrivalModel

        arrival = ArrivalModel(peak, peak / 10.0, peak / 8.0)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    generator = TrafficGenerator(
        {bs: arrival for bs in range(args.bs)}, mix, bank
    )
    pipeline = Pipeline(
        [
            generate_stage(
                args.days,
                chunk_sessions=args.chunk_size,
                materialize=bool(args.trace),
                arena_mb=args.arena_mb,
                memmap_spool=args.memmap_spool,
            )
        ],
        inputs=("generator",),
    )
    run = pipeline.run(ctx, initial={"generator": generator})
    result = run.artifact("generated")
    print(
        f"generated {result.n_sessions} sessions over {args.bs} BSs, "
        f"{args.days} day(s) in {result.n_chunks} chunk(s)"
    )
    print(f"total traffic: {result.total_volume_mb / 1e3:.1f} GB")
    if args.trace:
        from .io.traces import write_trace

        rows = write_trace(result.table, args.trace)
        print(f"trace: {rows} sessions -> {args.trace}")
    return 0


def _cmd_campaign(args: argparse.Namespace, ctx: RunContext) -> int:
    from .campaign import run_campaign
    from .campaign.driver import DEFAULT_SHARD_BS, DEFAULT_SHARD_CHUNK_SESSIONS
    from .core.generator import TrafficGenerator
    from .core.service_mix import ServiceMix
    from .dataset.network import decile_peak_rate
    from .io.params import load_release

    bank, arrivals = load_release(args.models)
    label = f"decile-{args.decile}"
    if label in arrivals:
        arrival = arrivals[label]
    else:
        # Release without arrival fits: fall back to the published decile
        # anchors of Section 5.1 (same convention as ``generate``).
        peak = decile_peak_rate(args.decile)
        from .core.arrivals import ArrivalModel

        arrival = ArrivalModel(peak, peak / 10.0, peak / 8.0)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    generator = TrafficGenerator(
        {bs: arrival for bs in range(args.bs)}, mix, bank
    )
    with ctx.executor() as executor:
        result = run_campaign(
            generator,
            args.days,
            ctx.seed,
            shard_bs=(
                args.shard_size if args.shard_size is not None
                else DEFAULT_SHARD_BS
            ),
            chunk_sessions=(
                args.chunk_size if args.chunk_size is not None
                else DEFAULT_SHARD_CHUNK_SESSIONS
            ),
            executor=executor,
            cache=ctx.cache,
            resume=args.resume,
            telemetry=ctx.telemetry,
        )
    summary = result.summary()
    print(
        f"campaign: {summary['sessions']} sessions over {args.bs} BSs, "
        f"{args.days} day(s) in {summary['shards']} shard(s) "
        f"({summary['resumed_shards']} resumed, "
        f"{summary['computed_shards']} computed)"
    )
    print(f"total traffic: {summary['volume_gb']:.1f} GB")
    print(f"distinct sessions (HLL): ~{summary['distinct_estimate']:.0f}")
    print(f"aggregate digest: {summary['digest']}")
    if args.output:
        import json

        # The merged aggregate rides under a provenance envelope: the
        # trace id sits *outside* the aggregate's canonical serialization,
        # so digests and resume keys are unchanged and ``from_dict``
        # (which ignores unknown keys) still round-trips the document.
        document = result.aggregate.to_dict()
        document["provenance"] = result.provenance()
        with open(args.output, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(document, sort_keys=True, separators=(",", ":")))
        print(f"aggregate: {args.output}")
    if args.verify_aggregates:
        from .campaign.fidelity import evaluate_aggregate
        from .io.tables import print_table
        from .verify import Baseline, default_baseline_path

        path = default_baseline_path()
        report = evaluate_aggregate(result.aggregate, Baseline.load(path))
        print_table(
            ["claim", "value", "lo", "hi", "verdict"],
            [
                [
                    r.claim, r.value, r.lo, r.hi,
                    "skip" if r.skipped else
                    ("pass" if r.passed else "FAIL"),
                ]
                for r in report.results
            ],
            title=f"Aggregate fidelity (seed {ctx.seed}, baseline {path})",
        )
        print("verdict:", report.summary()["verdict"])
        if not report.ok:
            return 1
    return 0


def _parse_ingest_pairs(
    entries: list[str], flag: str
) -> list[tuple[str, str]]:
    """Split repeatable ``NAME=PATH`` ingest flags, rejecting malformed ones."""
    pairs = []
    for entry in entries:
        name, sep, path = entry.partition("=")
        if not sep or not name or not path:
            raise SystemExit(
                f"error: {flag} expects NAME=PATH, got {entry!r}"
            )
        pairs.append((name, path))
    return pairs


def _cmd_serve(args: argparse.Namespace, ctx: RunContext) -> int:
    from .serve import DEFAULT_PORT, AggregateStore, ServeApp, make_server
    from .serve.store import StoreError

    telemetry = ctx.telemetry
    baseline = None
    if args.baseline:
        from .verify import Baseline

        baseline = Baseline.load(args.baseline)
    store = AggregateStore(args.db, baseline=baseline)

    aggregates = _parse_ingest_pairs(
        args.ingest_aggregate, "--ingest-aggregate"
    )
    checkpoints = _parse_ingest_pairs(
        args.ingest_checkpoints, "--ingest-checkpoints"
    )
    manifests = _parse_ingest_pairs(
        args.ingest_manifest, "--ingest-manifest"
    )
    try:
        if aggregates or checkpoints or manifests or args.ingest_release:
            with telemetry.span("serve:ingest", kind="serve") as span:
                for name, path in aggregates:
                    digest = store.ingest_aggregate_file(name, path)
                    print(f"ingested aggregate {name}: digest {digest}")
                for name, root in checkpoints:
                    digest, n = store.ingest_checkpoints(name, root)
                    print(
                        f"ingested {n} checkpoint(s) as {name}: "
                        f"digest {digest}"
                    )
                for name, path in manifests:
                    store.ingest_manifest_file(name, path)
                    print(f"attached manifest to {name}")
                if args.ingest_release:
                    store.ingest_release(args.ingest_release)
                    print(f"ingested release: {args.ingest_release}")
                span.attrs["campaigns"] = len(store.campaign_names())
            telemetry.metrics.counter("serve.ingested").inc(
                len(aggregates) + len(checkpoints)
            )
    except StoreError as exc:
        print(f"ingest error: {exc}", file=sys.stderr)
        return 2
    names = store.campaign_names()
    telemetry.metrics.gauge("serve.campaigns").set(len(names))
    print(
        f"store {args.db}: {len(names)} campaign(s)"
        + (f" ({', '.join(names)})" if names else "")
    )
    if args.ingest_only:
        return 0

    app = ServeApp(
        store,
        token=args.token,
        readonly=args.readonly,
        telemetry=telemetry,
    )
    port = args.port if args.port is not None else DEFAULT_PORT
    server = make_server(args.host, port, app)
    mode = "read-only" if args.readonly else (
        "submit enabled" if args.token else "submit disabled"
    )
    print(
        f"serving on http://{args.host}:{server.server_port}/v1 ({mode}); "
        f"Ctrl-C to stop"
    )
    with telemetry.span(
        "serve:listen",
        kind="serve",
        attrs={"port": server.server_port, "readonly": args.readonly},
    ):
        try:
            server.serve_forever(poll_interval=0.2)
        except KeyboardInterrupt:
            pass
        finally:
            server.server_close()
    return 0


def _cmd_validate(args: argparse.Namespace, ctx: RunContext) -> int:
    from .io.tables import print_table

    if args.trace:
        stages = [read_trace_stage(args.trace), validate_stage(args.days)]
        source = args.trace
    else:
        stages = [
            network_stage(args.bs),
            simulate_stage(args.days),
            validate_stage(args.days),
        ]
        source = f"simulated campaign ({args.bs} BSs, {args.days} day(s))"
    run = Pipeline(stages).run(ctx)
    table = run.artifact("campaign")
    report = run.artifact("report")
    print_table(
        ["severity", "check", "message"],
        [[f.severity.value, f.check, f.message] for f in report.findings],
        title=f"Validation of {source} ({len(table)} sessions)",
    )
    print("verdict:", "OK" if report.ok else "FAILED")
    return 0 if report.ok else 1


def _cmd_verify(args: argparse.Namespace, ctx: RunContext) -> int:
    from .io.tables import print_table
    from .verify import Baseline, default_baseline_path, run_verification

    path = (
        args.baseline if args.baseline is not None else default_baseline_path()
    )
    baseline = Baseline.load(path)
    report, _run = run_verification(ctx, baseline=baseline)
    report.meta["baseline"] = str(path)
    print_table(
        ["claim", "value", "lo", "hi", "verdict"],
        [
            [r.claim, r.value, r.lo, r.hi, "pass" if r.passed else "FAIL"]
            for r in report.results
        ],
        title=f"Fidelity gate (seed {ctx.seed}, baseline {path})",
    )
    summary = report.summary()
    print(
        f"claims: {summary['claims']}  checks: {summary['checks']}  "
        f"failed: {summary['failed']}"
    )
    print("verdict:", summary["verdict"])
    if args.report:
        report.write(args.report)
        print(f"report: {args.report}")
    if args.update_baseline:
        measured = {r.statistic: r.value for r in report.results}
        baseline.with_observed(measured).save(path)
        print(f"baseline observations refreshed: {path}")
    return 0 if report.ok else 1


def _cmd_reproduce(args: argparse.Namespace, ctx: RunContext) -> int:
    from .dataset.network import Network, NetworkConfig
    from .dataset.simulator import SimulationConfig, simulate
    from .io.tables import print_table

    if args.experiment == "table2":
        from .usecases.slicing import SlicingScenario, run_slicing_experiment

        outcome = run_slicing_experiment(
            ctx.rng("reproduce", "table2"),
            SlicingScenario(n_antennas=10, n_days=2, n_model_days=4),
        )
        print_table(
            ["strategy", "no-drop %", "std %"],
            [
                [name, 100 * r.mean_satisfaction, 100 * r.std_satisfaction]
                for name, r in outcome.results.items()
            ],
            title="Table 2 (paper: model 95.15 / bm a 89.8 / bm b 87.25)",
        )
        return 0

    if args.experiment == "fig10":
        from .core.duration_model import fit_power_law
        from .dataset.aggregation import pooled_duration_volume
        from .dataset.records import SERVICE_NAMES

        network = Network(NetworkConfig(n_bs=20), ctx.rng("network"))
        with ctx.executor() as executor:
            table = simulate(
                network, SimulationConfig(n_days=1), ctx.seed, executor=executor
            )
        rows = []
        for name in SERVICE_NAMES:
            sub = table.for_service(name)
            if len(sub) < 2000:
                continue
            model = fit_power_law(pooled_duration_volume(sub))
            rows.append([name, model.beta, model.r2])
        rows.sort(key=lambda r: -r[1])
        print_table(
            ["service", "beta", "R^2"],
            rows,
            title="Fig 10 (paper: beta in [0.1, 1.8], video super-linear)",
        )
        return 0

    if args.experiment == "fig13b":
        from .usecases.vran import (
            VranScenario,
            VranTopology,
            run_vran_experiment,
        )

        network = Network(NetworkConfig(n_bs=20), ctx.rng("network"))
        with ctx.executor() as executor:
            table = simulate(
                network, SimulationConfig(n_days=1), ctx.seed, executor=executor
            )
        outcome = run_vran_experiment(
            table,
            ctx.rng("reproduce", "fig13b"),
            VranScenario(
                topology=VranTopology(n_es=5, n_ru_per_es=4),
                horizon_s=1200.0,
                warmup_s=400.0,
            ),
        )
        print_table(
            ["strategy", "APE power median %", "p95 %"],
            [
                [name, stats["power"].median, stats["power"].p95]
                for name, stats in outcome.summary().items()
            ],
            title="Fig 13b (paper: model < 5 %, benchmarks 100-1000 %)",
        )
        return 0

    raise AssertionError(f"unhandled experiment {args.experiment!r}")


def _cmd_report(args: argparse.Namespace) -> int:
    """Render the telemetry of a previous run (no context needed)."""
    from .obs.report import ReportRenderError, follow_run, render_run

    if args.follow:
        try:
            outcome = follow_run(
                args.directory,
                poll_s=args.poll,
                timeout_s=args.follow_timeout,
            )
        except BrokenPipeError:
            # Downstream pager/head closed the pipe; not a follow failure.
            return 0
        if outcome == "timeout":
            print("follow: timed out before the run finalized", file=sys.stderr)
            return 1
        return 0
    try:
        lines = render_run(args.directory)
    except ReportRenderError as exc:
        print(f"report error: {exc}", file=sys.stderr)
        return 1
    for line in lines:
        print(line)
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code.

    Run subcommands execute under one :class:`~repro.obs.telemetry.Telemetry`
    built from the telemetry flags: the whole command runs inside a ``run``
    span, stage events flow through the telemetry's verbosity-aware
    renderer, and — telemetry directory or not — the run is finalized on
    the way out, writing the manifest and the final metric snapshot when a
    directory was given.
    """
    args = _build_parser().parse_args(argv)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "lint":
        from .lint.app import run as run_lint

        return run_lint(args)
    from .pipeline.context import mint_trace_id

    telemetry = Telemetry(
        directory=getattr(args, "telemetry_dir", None),
        verbosity=1 + getattr(args, "verbose", 0) - getattr(args, "quiet", 0),
        log_json=getattr(args, "log_json", False),
        profile=getattr(args, "profile", False),
        trace_id=mint_trace_id(args.seed),
    )
    sidecar = None
    metrics_port = getattr(args, "metrics_port", None)
    if metrics_port is not None:
        from .obs.expose import MetricsSidecar

        sidecar = MetricsSidecar(telemetry.metrics.snapshot, metrics_port)
        print(
            f"metrics: http://127.0.0.1:{sidecar.port}/metrics",
            file=sys.stderr,
        )
    ctx = _make_context(args, telemetry)
    handlers = {
        "simulate": _cmd_simulate,
        "fit": _cmd_fit,
        "generate": _cmd_generate,
        "campaign": _cmd_campaign,
        "serve": _cmd_serve,
        "validate": _cmd_validate,
        "verify": _cmd_verify,
        "reproduce": _cmd_reproduce,
    }
    status = "error"
    try:
        with telemetry.span(f"run:{args.command}", kind="run"):
            code = handlers[args.command](args, ctx)
        status = "ok" if code == 0 else "failed"
        return code
    finally:
        telemetry.finalize(
            command=args.command,
            seed=args.seed,
            argv=list(argv) if argv is not None else sys.argv[1:],
            config=vars(args),
            status=status,
        )
        if sidecar is not None:
            sidecar.close()


if __name__ == "__main__":
    sys.exit(main())
