"""Command-line interface: simulate, fit, generate.

Three subcommands cover the library's end-to-end flow:

* ``repro-traffic simulate`` — run a synthetic measurement campaign and
  print its headline statistics;
* ``repro-traffic fit`` — run a campaign, fit the session-level models and
  write a release file with every parameter tuple;
* ``repro-traffic generate`` — load a release file and generate synthetic
  session-level traffic from the models;
* ``repro-traffic validate`` — export a campaign as a trace and check it
  against the paper's stylized facts;
* ``repro-traffic reproduce`` — regenerate a paper artefact at laptop
  scale.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from .core.arrivals import fit_decile_arrival_models
from .core.generator import TrafficGenerator
from .core.model_bank import ModelBank
from .core.service_mix import ServiceMix
from .dataset.aggregation import service_shares
from .dataset.network import Network, NetworkConfig, decile_peak_rate
from .dataset.simulator import SimulationConfig, simulate
from .io.params import load_release, save_release
from .io.tables import print_table


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-traffic",
        description="Session-level mobile traffic models (IMC'23 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser("simulate", help="run a synthetic measurement campaign")
    sim.add_argument("--bs", type=int, default=50, help="number of base stations")
    sim.add_argument("--days", type=int, default=1, help="number of days")
    sim.add_argument(
        "--trace", default=None,
        help="also export the campaign as a CSV(.gz) session trace",
    )

    fit = sub.add_parser("fit", help="fit models from a campaign and save them")
    fit.add_argument("--bs", type=int, default=50)
    fit.add_argument("--days", type=int, default=2)
    fit.add_argument("--output", required=True, help="release file path")
    fit.add_argument(
        "--from-trace", default=None,
        help="fit from an existing CSV(.gz) trace instead of simulating",
    )

    gen = sub.add_parser("generate", help="generate traffic from saved models")
    gen.add_argument("--models", required=True, help="release file path")
    gen.add_argument("--days", type=int, default=1)
    gen.add_argument("--bs", type=int, default=5, help="number of generated BSs")
    gen.add_argument(
        "--decile", type=int, default=5, help="load decile of the generated BSs"
    )

    val = sub.add_parser(
        "validate", help="validate a session trace against stylized facts"
    )
    val.add_argument("--trace", required=True, help="CSV(.gz) trace path")
    val.add_argument("--days", type=int, required=True, help="days covered")

    rep = sub.add_parser(
        "reproduce", help="reproduce a paper experiment at laptop scale"
    )
    rep.add_argument(
        "experiment",
        choices=["table2", "fig10", "fig13b"],
        help="which paper artefact to regenerate",
    )
    return parser


def _cmd_simulate(args: argparse.Namespace, rng: np.random.Generator) -> int:
    network = Network(NetworkConfig(n_bs=args.bs), rng)
    table = simulate(network, SimulationConfig(n_days=args.days), rng)
    shares = service_shares(table)
    top = sorted(shares.items(), key=lambda kv: kv[1][0], reverse=True)[:10]
    print(f"sessions: {len(table)}")
    print(f"total traffic: {table.total_volume_mb() / 1e3:.1f} GB")
    print_table(
        ["service", "session %", "traffic %"],
        [[name, 100 * s, 100 * t] for name, (s, t) in top],
        title="Top services",
    )
    if args.trace:
        from .io.traces import write_trace

        rows = write_trace(table, args.trace)
        print(f"trace: {rows} sessions -> {args.trace}")
    return 0


def _cmd_fit(args: argparse.Namespace, rng: np.random.Generator) -> int:
    if args.from_trace:
        from .io.traces import read_trace

        table = read_trace(args.from_trace)
        bank = ModelBank.fit_from_table(table)
        save_release(args.output, bank)
        print(
            f"fitted {len(bank)} service models from {args.from_trace} "
            f"-> {args.output}"
        )
        return 0
    network = Network(NetworkConfig(n_bs=args.bs), rng)
    table = simulate(network, SimulationConfig(n_days=args.days), rng)
    bank = ModelBank.fit_from_table(table)
    arrivals = {
        f"decile-{decile}": model
        for decile, model in fit_decile_arrival_models(
            table, network, args.days
        ).items()
    }
    save_release(args.output, bank, arrivals)
    print(f"fitted {len(bank)} service models -> {args.output}")
    return 0


def _cmd_generate(args: argparse.Namespace, rng: np.random.Generator) -> int:
    bank, arrivals = load_release(args.models)
    label = f"decile-{args.decile}"
    if label in arrivals:
        arrival = arrivals[label]
    else:
        # Release without arrival fits: fall back to the published decile
        # anchors of Section 5.1.
        peak = decile_peak_rate(args.decile)
        from .core.arrivals import ArrivalModel

        arrival = ArrivalModel(peak, peak / 10.0, peak / 8.0)
    mix = ServiceMix.from_table1().restricted_to(bank.services())
    generator = TrafficGenerator(
        {bs: arrival for bs in range(args.bs)}, mix, bank
    )
    table = generator.generate_campaign(args.days, rng)
    print(f"generated {len(table)} sessions over {args.bs} BSs, {args.days} day(s)")
    print(f"total traffic: {table.total_volume_mb() / 1e3:.1f} GB")
    return 0


def _cmd_validate(args: argparse.Namespace, rng: np.random.Generator) -> int:
    from .analysis.validation import validate_campaign
    from .io.traces import read_trace

    table = read_trace(args.trace)
    report = validate_campaign(table, args.days)
    print_table(
        ["severity", "check", "message"],
        [[f.severity.value, f.check, f.message] for f in report.findings],
        title=f"Validation of {args.trace} ({len(table)} sessions)",
    )
    print("verdict:", "OK" if report.ok else "FAILED")
    return 0 if report.ok else 1


def _cmd_reproduce(args: argparse.Namespace, rng: np.random.Generator) -> int:
    if args.experiment == "table2":
        from .usecases.slicing import SlicingScenario, run_slicing_experiment

        outcome = run_slicing_experiment(
            rng, SlicingScenario(n_antennas=10, n_days=2, n_model_days=4)
        )
        print_table(
            ["strategy", "no-drop %", "std %"],
            [
                [name, 100 * r.mean_satisfaction, 100 * r.std_satisfaction]
                for name, r in outcome.results.items()
            ],
            title="Table 2 (paper: model 95.15 / bm a 89.8 / bm b 87.25)",
        )
        return 0

    if args.experiment == "fig10":
        from .core.duration_model import fit_power_law
        from .dataset.aggregation import pooled_duration_volume
        from .dataset.records import SERVICE_NAMES

        network = Network(NetworkConfig(n_bs=20), rng)
        table = simulate(network, SimulationConfig(n_days=1), rng)
        rows = []
        for name in SERVICE_NAMES:
            sub = table.for_service(name)
            if len(sub) < 2000:
                continue
            model = fit_power_law(pooled_duration_volume(sub))
            rows.append([name, model.beta, model.r2])
        rows.sort(key=lambda r: -r[1])
        print_table(
            ["service", "beta", "R^2"],
            rows,
            title="Fig 10 (paper: beta in [0.1, 1.8], video super-linear)",
        )
        return 0

    if args.experiment == "fig13b":
        from .usecases.vran import (
            VranScenario,
            VranTopology,
            run_vran_experiment,
        )

        network = Network(NetworkConfig(n_bs=20), rng)
        table = simulate(network, SimulationConfig(n_days=1), rng)
        outcome = run_vran_experiment(
            table,
            rng,
            VranScenario(
                topology=VranTopology(n_es=5, n_ru_per_es=4),
                horizon_s=1200.0,
                warmup_s=400.0,
            ),
        )
        print_table(
            ["strategy", "APE power median %", "p95 %"],
            [
                [name, stats["power"].median, stats["power"].p95]
                for name, stats in outcome.summary().items()
            ],
            title="Fig 13b (paper: model < 5 %, benchmarks 100-1000 %)",
        )
        return 0

    raise AssertionError(f"unhandled experiment {args.experiment!r}")


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = _build_parser().parse_args(argv)
    rng = np.random.default_rng(args.seed)
    handlers = {
        "simulate": _cmd_simulate,
        "fit": _cmd_fit,
        "generate": _cmd_generate,
        "validate": _cmd_validate,
        "reproduce": _cmd_reproduce,
    }
    return handlers[args.command](args, rng)


if __name__ == "__main__":
    sys.exit(main())
