"""Columnar container for transport-layer session records.

A simulated campaign easily produces millions of sessions, so records are
stored column-wise in numpy arrays rather than as one object per session.
:class:`SessionTable` is the interchange format between the simulator, the
probe-emulation layer and the aggregation pipeline; :class:`SessionRecord`
is a convenience row view for tests and examples.

The column layout itself lives in one place — :data:`TABLE_SCHEMA`, a
tuple of :class:`ColumnSpec` descriptors — and everything else (table
construction, empty tables, the :class:`SessionArena` buffers, the spool
format, the S301 lint mirror) derives from it.  Generation-scale producers
write straight into a :class:`SessionArena`: one preallocated buffer per
column, grown geometrically (or backed by memmap files), handing out
zero-copy slices so the synthesis hot path never allocates per chunk.
Validation is a separate :meth:`SessionTable.validate` pass — arena
producers construct views in O(1) and validate once where it matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from .services import all_service_names

#: Canonical service index order used by every :class:`SessionTable`.
SERVICE_NAMES: tuple[str, ...] = tuple(all_service_names())
SERVICE_INDEX: dict[str, int] = {name: i for i, name in enumerate(SERVICE_NAMES)}


class RecordsError(ValueError):
    """Raised when session-table columns are inconsistent."""


@dataclass(frozen=True)
class ColumnSpec:
    """One column of the session-table schema: its name and dtype literal.

    ``dtype`` is kept as the canonical numpy dtype *string* so the schema
    reads as data (and the S301 lint rule can pin call sites against it
    syntactically); :attr:`np_dtype` is the resolved ``np.dtype``.
    """

    name: str
    dtype: str

    @property
    def np_dtype(self) -> np.dtype:
        """The resolved numpy dtype of this column."""
        return np.dtype(self.dtype)


#: The session-table schema — the single source of truth for column names,
#: order and dtypes across the whole stack (tables, arenas, spool format,
#: lint).  Mirrored (deliberately, as a drift tripwire) by
#: ``repro.lint.structure.SESSION_TABLE_DTYPES``.
TABLE_SCHEMA: tuple[ColumnSpec, ...] = (
    ColumnSpec("service_idx", "int16"),
    ColumnSpec("bs_id", "int32"),
    ColumnSpec("day", "int16"),
    ColumnSpec("start_minute", "int16"),
    ColumnSpec("duration_s", "float32"),
    ColumnSpec("volume_mb", "float32"),
    ColumnSpec("truncated", "bool"),
)

#: Column name → resolved numpy dtype, in schema order.
SCHEMA_DTYPES: dict[str, np.dtype] = {
    spec.name: spec.np_dtype for spec in TABLE_SCHEMA
}

#: Bytes one session occupies across all schema columns.
ROW_BYTES: int = sum(spec.np_dtype.itemsize for spec in TABLE_SCHEMA)

#: Default capacity (sessions) of a fresh :class:`SessionArena`.
DEFAULT_ARENA_CAPACITY = 1 << 20


class SessionArena:
    """Preallocated columnar buffer that session producers write into.

    One contiguous array per schema column, all sharing a session
    capacity.  Producers call :meth:`reserve` to claim the next ``n`` rows
    and fill the returned column slices in place; the arena grows
    geometrically when a reservation does not fit, so amortized writes
    never reallocate.  :meth:`view` wraps the filled region as a zero-copy
    :class:`SessionTable`; :meth:`snapshot` copies it out into an owning
    table.  :meth:`reset` rewinds the write cursor for reuse (buffers are
    kept), which is how chunked generation reuses one allocation across an
    entire campaign.

    With ``memmap_dir`` set, the column buffers live in memory-mapped
    files under that directory instead of anonymous memory — the spool
    path of country-scale campaigns, where the OS pages cold columns out.
    """

    def __init__(
        self,
        capacity: int = DEFAULT_ARENA_CAPACITY,
        memmap_dir: str | Path | None = None,
    ):
        if capacity < 1:
            raise RecordsError("arena capacity must be >= 1")
        self._capacity = int(capacity)
        self._size = 0
        self._memmap_dir = Path(memmap_dir) if memmap_dir is not None else None
        self._generation = 0
        self._columns: dict[str, np.ndarray] = {}
        self._allocate(self._capacity)

    @classmethod
    def from_budget_mb(
        cls, budget_mb: float, memmap_dir: str | Path | None = None
    ) -> "SessionArena":
        """Arena sized to hold ``budget_mb`` MiB of session rows."""
        if budget_mb <= 0:
            raise RecordsError("arena budget must be positive")
        capacity = max(1, int(budget_mb * (1 << 20) / ROW_BYTES))
        return cls(capacity=capacity, memmap_dir=memmap_dir)

    # -- buffer management ---------------------------------------------
    def _allocate(self, capacity: int) -> None:
        """(Re)allocate every column at ``capacity``, preserving content."""
        old = self._columns
        fresh: dict[str, np.ndarray] = {}
        self._generation += 1
        for spec in TABLE_SCHEMA:
            if self._memmap_dir is None:
                column = np.empty(capacity, dtype=spec.np_dtype)
            else:
                self._memmap_dir.mkdir(parents=True, exist_ok=True)
                path = self._memmap_dir / (
                    f"{spec.name}.g{self._generation}.dat"
                )
                column = np.memmap(
                    path, dtype=spec.np_dtype, mode="w+", shape=(capacity,)
                )
            if self._size:
                column[: self._size] = old[spec.name][: self._size]
            fresh[spec.name] = column
        if self._memmap_dir is not None and old:
            # Old-generation files are dead once their data is copied over.
            for spec in TABLE_SCHEMA:
                stale = getattr(old[spec.name], "filename", None)
                del old[spec.name]
                if stale is not None:
                    Path(stale).unlink(missing_ok=True)
        self._columns = fresh
        self._capacity = capacity

    def reserve(self, n: int) -> slice:
        """Claim the next ``n`` rows; returns their slice into the columns.

        Grows the arena geometrically (factor 2, at least to the needed
        size) when the reservation does not fit, so a long sequence of
        reservations costs amortized O(1) allocations.
        """
        if n < 0:
            raise RecordsError("cannot reserve a negative row count")
        needed = self._size + n
        if needed > self._capacity:
            self._allocate(max(needed, self._capacity * 2))
        claimed = slice(self._size, needed)
        self._size = needed
        return claimed

    def column(self, name: str) -> np.ndarray:
        """Full-capacity buffer of one column (write through a slice)."""
        return self._columns[name]

    def reset(self) -> None:
        """Rewind the write cursor; buffers (and capacity) are kept."""
        self._size = 0

    # -- introspection --------------------------------------------------
    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Sessions the arena can hold before the next growth."""
        return self._capacity

    @property
    def nbytes(self) -> int:
        """Bytes currently allocated across all column buffers."""
        return self._capacity * ROW_BYTES

    @property
    def fill_ratio(self) -> float:
        """Filled fraction of the allocated capacity (0..1)."""
        return self._size / self._capacity

    # -- table export ---------------------------------------------------
    def view(self, lo: int = 0, hi: int | None = None) -> "SessionTable":
        """Zero-copy :class:`SessionTable` over filled rows ``[lo, hi)``.

        The returned table aliases the arena buffers: it is valid until
        the arena grows, resets, or its rows are overwritten.  Callers
        that outlive the arena's next write must :meth:`snapshot` instead.
        """
        hi = self._size if hi is None else hi
        if not 0 <= lo <= hi <= self._size:
            raise RecordsError("arena view out of the filled range")
        return SessionTable(
            *(self._columns[spec.name][lo:hi] for spec in TABLE_SCHEMA),
            validate=False,
        )

    def snapshot(self, lo: int = 0, hi: int | None = None) -> "SessionTable":
        """Owning copy of filled rows ``[lo, hi)`` as a table."""
        hi = self._size if hi is None else hi
        if not 0 <= lo <= hi <= self._size:
            raise RecordsError("arena snapshot out of the filled range")
        return SessionTable(
            *(
                np.array(self._columns[spec.name][lo:hi])
                for spec in TABLE_SCHEMA
            ),
            validate=False,
        )


@dataclass(frozen=True)
class SessionRecord:
    """One transport-layer session, as seen by the gateway+RAN probes."""

    service: str
    bs_id: int
    day: int
    start_minute: int
    duration_s: float
    volume_mb: float
    truncated: bool

    @property
    def throughput_mbps(self) -> float:
        """Average session throughput in Mbit/s.

        Raises :class:`RecordsError` on a zero-duration row (a float32
        rounding artifact) rather than emitting ``inf``.
        """
        if self.duration_s == 0:
            raise RecordsError(
                "zero-duration session has no defined throughput"
            )
        return self.volume_mb * 8.0 / self.duration_s


class SessionTable:
    """Column-wise collection of session records.

    Columns (see :data:`TABLE_SCHEMA`, the canonical definition)
    -------
    service_idx : int16 — index into :data:`SERVICE_NAMES`
    bs_id       : int32 — serving base station
    day         : int16 — day index of the campaign
    start_minute: int16 — minute-of-day of session establishment (0..1439)
    duration_s  : float32 — served duration in seconds
    volume_mb   : float32 — served traffic volume in MB
    truncated   : bool — whether the session was cut by mobility/handover

    Construction coerces dtypes and, by default, runs the full
    :meth:`validate` pass.  Hot paths that hand over columns already known
    to be schema-exact (arena views, concatenations of validated tables)
    pass ``validate=False`` and get O(1) construction.
    """

    COLUMNS = tuple(spec.name for spec in TABLE_SCHEMA)

    def __init__(
        self,
        service_idx: np.ndarray,
        bs_id: np.ndarray,
        day: np.ndarray,
        start_minute: np.ndarray,
        duration_s: np.ndarray,
        volume_mb: np.ndarray,
        truncated: np.ndarray,
        *,
        validate: bool = True,
    ):
        self.service_idx = np.asarray(service_idx, dtype=np.int16)
        self.bs_id = np.asarray(bs_id, dtype=np.int32)
        self.day = np.asarray(day, dtype=np.int16)
        self.start_minute = np.asarray(start_minute, dtype=np.int16)
        self.duration_s = np.asarray(duration_s, dtype=np.float32)
        self.volume_mb = np.asarray(volume_mb, dtype=np.float32)
        self.truncated = np.asarray(truncated, dtype=bool)
        if validate:
            self.validate()

    def validate(self) -> "SessionTable":
        """Check column alignment and value ranges; returns ``self``.

        Raises :class:`RecordsError` on misaligned columns, service
        indices outside the catalog, non-positive durations or volumes
        (zero durations included — the rows that would otherwise emit
        infinite throughput), or start minutes outside 0..1439.
        """
        n = self.service_idx.size
        for column in self.COLUMNS:
            if getattr(self, column).shape != (n,):
                raise RecordsError(f"column {column} misaligned")
        if n:
            if self.service_idx.min() < 0 or self.service_idx.max() >= len(
                SERVICE_NAMES
            ):
                raise RecordsError("service_idx out of catalog range")
            if np.any(self.duration_s <= 0):
                raise RecordsError("durations must be positive")
            if np.any(self.volume_mb <= 0):
                raise RecordsError("volumes must be positive")
            if self.start_minute.min() < 0 or self.start_minute.max() > 1439:
                raise RecordsError("start_minute out of 0..1439")
        return self

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "SessionTable":
        """Return a table with zero rows and exact schema dtypes.

        Columns are allocated in their schema dtypes directly (not coerced
        from a float64 placeholder), so concatenating any number of empty
        tables — e.g. a campaign where every BS sampled zero arrivals —
        preserves the schema bit-for-bit.
        """
        return cls(
            *(np.empty(0, dtype=spec.np_dtype) for spec in TABLE_SCHEMA),
            validate=False,
        )

    def __len__(self) -> int:
        return int(self.service_idx.size)

    def select(self, mask: np.ndarray) -> "SessionTable":
        """Return the sub-table of rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.shape != (len(self),):
            raise RecordsError("mask must align with the table")
        return SessionTable(
            *(getattr(self, column)[mask] for column in self.COLUMNS),
            validate=False,
        )

    def for_service(self, service: str) -> "SessionTable":
        """Rows belonging to one service."""
        if service not in SERVICE_INDEX:
            raise RecordsError(f"unknown service {service!r}")
        return self.select(self.service_idx == SERVICE_INDEX[service])

    def for_bs_ids(self, bs_ids) -> "SessionTable":
        """Rows served by any of the given base stations."""
        return self.select(np.isin(self.bs_id, np.asarray(list(bs_ids))))

    def for_days(self, days) -> "SessionTable":
        """Rows recorded on any of the given day indices."""
        return self.select(np.isin(self.day, np.asarray(list(days))))

    @staticmethod
    def concatenate(tables: list["SessionTable"]) -> "SessionTable":
        """Stack several tables into one."""
        if not tables:
            return SessionTable.empty()
        return SessionTable(
            *(
                np.concatenate([getattr(t, column) for t in tables])
                for column in SessionTable.COLUMNS
            ),
            validate=False,
        )

    # ------------------------------------------------------------------
    def throughput_mbps(self) -> np.ndarray:
        """Per-session average throughput in Mbit/s.

        Raises :class:`RecordsError` if any row has a zero duration (a
        float32 rounding artifact on unvalidated tables) — an explicit
        error beats silently propagating ``inf`` into aggregates.
        """
        if len(self) and np.any(self.duration_s == 0):
            raise RecordsError(
                "zero-duration sessions have no defined throughput; "
                "run validate() to locate them"
            )
        return self.volume_mb.astype(float) * 8.0 / self.duration_s.astype(float)

    def rows(self):
        """Iterate rows as :class:`SessionRecord` objects (small tables)."""
        for i in range(len(self)):
            yield SessionRecord(
                service=SERVICE_NAMES[self.service_idx[i]],
                bs_id=int(self.bs_id[i]),
                day=int(self.day[i]),
                start_minute=int(self.start_minute[i]),
                duration_s=float(self.duration_s[i]),
                volume_mb=float(self.volume_mb[i]),
                truncated=bool(self.truncated[i]),
            )

    def total_volume_mb(self) -> float:
        """Sum of all served volumes in MB."""
        return float(self.volume_mb.sum())
