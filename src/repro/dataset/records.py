"""Columnar container for transport-layer session records.

A simulated campaign easily produces millions of sessions, so records are
stored column-wise in numpy arrays rather than as one object per session.
:class:`SessionTable` is the interchange format between the simulator, the
probe-emulation layer and the aggregation pipeline; :class:`SessionRecord`
is a convenience row view for tests and examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .services import all_service_names

#: Canonical service index order used by every :class:`SessionTable`.
SERVICE_NAMES: tuple[str, ...] = tuple(all_service_names())
SERVICE_INDEX: dict[str, int] = {name: i for i, name in enumerate(SERVICE_NAMES)}


class RecordsError(ValueError):
    """Raised when session-table columns are inconsistent."""


@dataclass(frozen=True)
class SessionRecord:
    """One transport-layer session, as seen by the gateway+RAN probes."""

    service: str
    bs_id: int
    day: int
    start_minute: int
    duration_s: float
    volume_mb: float
    truncated: bool

    @property
    def throughput_mbps(self) -> float:
        """Average session throughput in Mbit/s."""
        return self.volume_mb * 8.0 / self.duration_s


class SessionTable:
    """Column-wise collection of session records.

    Columns
    -------
    service_idx : int16 — index into :data:`SERVICE_NAMES`
    bs_id       : int32 — serving base station
    day         : int16 — day index of the campaign
    start_minute: int16 — minute-of-day of session establishment (0..1439)
    duration_s  : float32 — served duration in seconds
    volume_mb   : float32 — served traffic volume in MB
    truncated   : bool — whether the session was cut by mobility/handover
    """

    COLUMNS = (
        "service_idx",
        "bs_id",
        "day",
        "start_minute",
        "duration_s",
        "volume_mb",
        "truncated",
    )

    def __init__(
        self,
        service_idx: np.ndarray,
        bs_id: np.ndarray,
        day: np.ndarray,
        start_minute: np.ndarray,
        duration_s: np.ndarray,
        volume_mb: np.ndarray,
        truncated: np.ndarray,
    ):
        self.service_idx = np.asarray(service_idx, dtype=np.int16)
        self.bs_id = np.asarray(bs_id, dtype=np.int32)
        self.day = np.asarray(day, dtype=np.int16)
        self.start_minute = np.asarray(start_minute, dtype=np.int16)
        self.duration_s = np.asarray(duration_s, dtype=np.float32)
        self.volume_mb = np.asarray(volume_mb, dtype=np.float32)
        self.truncated = np.asarray(truncated, dtype=bool)

        n = self.service_idx.size
        for column in self.COLUMNS:
            if getattr(self, column).shape != (n,):
                raise RecordsError(f"column {column} misaligned")
        if n:
            if self.service_idx.min() < 0 or self.service_idx.max() >= len(
                SERVICE_NAMES
            ):
                raise RecordsError("service_idx out of catalog range")
            if np.any(self.duration_s <= 0):
                raise RecordsError("durations must be positive")
            if np.any(self.volume_mb <= 0):
                raise RecordsError("volumes must be positive")
            if self.start_minute.min() < 0 or self.start_minute.max() > 1439:
                raise RecordsError("start_minute out of 0..1439")

    # ------------------------------------------------------------------
    @classmethod
    def empty(cls) -> "SessionTable":
        """Return a table with zero rows and exact schema dtypes.

        Columns are allocated in their schema dtypes directly (not coerced
        from a float64 placeholder), so concatenating any number of empty
        tables — e.g. a campaign where every BS sampled zero arrivals —
        preserves the schema bit-for-bit.
        """
        return cls(
            service_idx=np.empty(0, dtype=np.int16),
            bs_id=np.empty(0, dtype=np.int32),
            day=np.empty(0, dtype=np.int16),
            start_minute=np.empty(0, dtype=np.int16),
            duration_s=np.empty(0, dtype=np.float32),
            volume_mb=np.empty(0, dtype=np.float32),
            truncated=np.empty(0, dtype=bool),
        )

    def __len__(self) -> int:
        return int(self.service_idx.size)

    def select(self, mask: np.ndarray) -> "SessionTable":
        """Return the sub-table of rows where ``mask`` is True."""
        mask = np.asarray(mask)
        if mask.shape != (len(self),):
            raise RecordsError("mask must align with the table")
        return SessionTable(
            *(getattr(self, column)[mask] for column in self.COLUMNS)
        )

    def for_service(self, service: str) -> "SessionTable":
        """Rows belonging to one service."""
        if service not in SERVICE_INDEX:
            raise RecordsError(f"unknown service {service!r}")
        return self.select(self.service_idx == SERVICE_INDEX[service])

    def for_bs_ids(self, bs_ids) -> "SessionTable":
        """Rows served by any of the given base stations."""
        return self.select(np.isin(self.bs_id, np.asarray(list(bs_ids))))

    def for_days(self, days) -> "SessionTable":
        """Rows recorded on any of the given day indices."""
        return self.select(np.isin(self.day, np.asarray(list(days))))

    @staticmethod
    def concatenate(tables: list["SessionTable"]) -> "SessionTable":
        """Stack several tables into one."""
        if not tables:
            return SessionTable.empty()
        return SessionTable(
            *(
                np.concatenate([getattr(t, column) for t in tables])
                for column in SessionTable.COLUMNS
            )
        )

    # ------------------------------------------------------------------
    def throughput_mbps(self) -> np.ndarray:
        """Per-session average throughput in Mbit/s."""
        return self.volume_mb.astype(float) * 8.0 / self.duration_s.astype(float)

    def rows(self):
        """Iterate rows as :class:`SessionRecord` objects (small tables)."""
        for i in range(len(self)):
            yield SessionRecord(
                service=SERVICE_NAMES[self.service_idx[i]],
                bs_id=int(self.bs_id[i]),
                day=int(self.day[i]),
                start_minute=int(self.start_minute[i]),
                duration_s=float(self.duration_s[i]),
                volume_mb=float(self.volume_mb[i]),
                truncated=bool(self.truncated[i]),
            )

    def total_volume_mb(self) -> float:
        """Sum of all served volumes in MB."""
        return float(self.volume_mb.sum())
