"""Streaming aggregation: paper-duration campaigns in bounded memory.

The paper's campaign covers 45 days; materializing every transport session
of such a run would take tens of gigabytes.  The fitting pipeline, however,
only consumes *aggregates* (Section 3.2) — so this module simulates one
(BS, day) work unit at a time, folds each batch into running statistics,
and drops the raw sessions immediately.  Peak memory is one BS-day of
sessions plus the fixed-size accumulators, independent of campaign length.

Units are grouped into fixed-size chunks, each chunk reduced to one
:class:`CampaignAccumulator`, and the chunk accumulators merged in
canonical order.  Because the chunking is independent of the executor and
every unit runs on its own spawned seed stream (the same per-(day, BS)
streams the materializing simulator uses), serial and parallel runs produce
bit-identical statistics.

``CampaignAccumulator`` is also useful on its own to aggregate externally
produced tables batch by batch (e.g. while reading a huge trace file).
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..analysis.histogram import BIN_WIDTH, N_BINS, LogHistogram
from ..pipeline.context import coerce_root_seed
from ..pipeline.executors import ParallelExecutor, SerialExecutor
from .aggregation import (
    N_DURATION_BINS,
    DurationVolumeCurve,
    _digitize_durations,
    _digitize_volumes,
)
from .circadian import MINUTES_PER_DAY, sample_day_arrival_counts
from .network import BaseStation, Network
from .records import SERVICE_NAMES, SessionTable
from .simulator import (
    SimulationConfig,
    _sessions_from_counts,
    campaign_units,
    unit_seed,
)

#: Work units folded into one accumulator per executor task.  Fixed (not a
#: function of worker count) so the merge tree — and therefore the floating
#: point sums — are identical for serial and parallel execution.
UNITS_PER_CHUNK = 16


class StreamingError(ValueError):
    """Raised on inconsistent streaming-aggregation input."""


class CampaignAccumulator:
    """Running per-service statistics over arbitrarily many session batches.

    Accumulates exactly the Section 3.2 aggregates the fitting pipeline
    needs, pooled over all BSs and days:

    * per-service volume histograms (``F_s``);
    * per-service duration-bin volume sums and counts (``v_s(d)``);
    * per-service session counts and traffic totals (Table 1 shares);
    * per-decile per-minute arrival-count histograms (Fig 3), when decile
      membership is provided.
    """

    def __init__(self) -> None:
        n_services = len(SERVICE_NAMES)
        self._volume_counts = np.zeros((n_services, N_BINS), dtype=np.int64)
        self._dv_sums = np.zeros((n_services, N_DURATION_BINS))
        self._dv_counts = np.zeros((n_services, N_DURATION_BINS), dtype=np.int64)
        self._sessions = np.zeros(n_services, dtype=np.int64)
        self._traffic_mb = np.zeros(n_services)
        self._truncated = 0
        # Per decile: histogram of per-minute arrival counts.
        self._arrival_hist: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    def update(self, table: SessionTable) -> None:
        """Fold one batch of sessions into the running statistics."""
        if len(table) == 0:
            return
        volumes = table.volume_mb.astype(float)
        service = table.service_idx.astype(np.int64)
        vol_bins = _digitize_volumes(volumes)
        dur_bins = _digitize_durations(table.duration_s.astype(float))

        np.add.at(self._volume_counts, (service, vol_bins), 1)
        np.add.at(self._dv_sums, (service, dur_bins), volumes)
        np.add.at(self._dv_counts, (service, dur_bins), 1)
        np.add.at(self._sessions, service, 1)
        np.add.at(self._traffic_mb, service, volumes)
        self._truncated += int(table.truncated.sum())

    def update_arrivals(self, decile: int, minute_counts: np.ndarray) -> None:
        """Fold one BS-day of per-minute arrival counts for a load decile."""
        minute_counts = np.asarray(minute_counts)
        if minute_counts.shape != (MINUTES_PER_DAY,):
            raise StreamingError("minute_counts must cover one day")
        top = int(minute_counts.max()) + 1
        hist = self._arrival_hist.get(decile)
        if hist is None or hist.size < top:
            grown = np.zeros(max(top, 2 * (hist.size if hist is not None else 64)),
                             dtype=np.int64)
            if hist is not None:
                grown[: hist.size] = hist
            self._arrival_hist[decile] = hist = grown
        np.add.at(hist, minute_counts.astype(np.int64), 1)

    def merge(self, other: "CampaignAccumulator") -> None:
        """Fold another accumulator into this one (in place).

        The reduction step of the chunked streaming pipeline: chunk
        accumulators are merged in canonical chunk order, which keeps the
        floating-point sums identical across executors.
        """
        self._volume_counts += other._volume_counts
        self._dv_sums += other._dv_sums
        self._dv_counts += other._dv_counts
        self._sessions += other._sessions
        self._traffic_mb += other._traffic_mb
        self._truncated += other._truncated
        for decile, hist in other._arrival_hist.items():
            mine = self._arrival_hist.get(decile)
            if mine is None:
                self._arrival_hist[decile] = hist.copy()
            elif mine.size >= hist.size:
                mine[: hist.size] += hist
            else:
                grown = hist.copy()
                grown[: mine.size] += mine
                self._arrival_hist[decile] = grown

    # ------------------------------------------------------------------
    @property
    def n_sessions(self) -> int:
        """Total accumulated session count."""
        return int(self._sessions.sum())

    @property
    def truncated_fraction(self) -> float:
        """Share of accumulated sessions cut by mobility."""
        if self.n_sessions == 0:
            raise StreamingError("no sessions accumulated")
        return self._truncated / self.n_sessions

    def volume_pdf(self, service: str) -> LogHistogram:
        """Pooled volume PDF of one service (Eq 2 over everything seen)."""
        idx = SERVICE_NAMES.index(service)
        n = int(self._sessions[idx])
        if n == 0:
            return LogHistogram.empty()
        return LogHistogram(
            self._volume_counts[idx] / (n * BIN_WIDTH), n_samples=float(n)
        )

    def duration_volume(self, service: str) -> DurationVolumeCurve:
        """Pooled duration–volume pairs of one service (Eq 1)."""
        idx = SERVICE_NAMES.index(service)
        means = np.zeros(N_DURATION_BINS)
        counts = self._dv_counts[idx]
        observed = counts > 0
        means[observed] = self._dv_sums[idx][observed] / counts[observed]
        return DurationVolumeCurve(means, counts.astype(float))

    def service_shares(self) -> dict[str, tuple[float, float]]:
        """Accumulated (session share, traffic share) per service."""
        if self.n_sessions == 0:
            raise StreamingError("no sessions accumulated")
        session_share = self._sessions / self._sessions.sum()
        traffic_share = self._traffic_mb / self._traffic_mb.sum()
        return {
            name: (float(session_share[i]), float(traffic_share[i]))
            for i, name in enumerate(SERVICE_NAMES)
        }

    def arrival_count_pmf(self, decile: int) -> np.ndarray:
        """PMF of per-minute arrival counts for one decile (the Fig 3 data)."""
        hist = self._arrival_hist.get(decile)
        if hist is None or hist.sum() == 0:
            raise StreamingError(f"no arrival data for decile {decile}")
        return hist / hist.sum()

    def fit_bank(self, min_sessions: int = 500):
        """Fit a :class:`~repro.core.model_bank.ModelBank` from the
        accumulated statistics (no raw sessions needed)."""
        from ..core.duration_model import DurationModelError
        from ..core.model_bank import ModelBank
        from ..core.service_model import ServiceModelError, fit_service_model

        bank = ModelBank()
        for name in SERVICE_NAMES:
            if self._sessions[SERVICE_NAMES.index(name)] < min_sessions:
                continue
            try:
                bank.add(
                    fit_service_model(
                        name, self.volume_pdf(name), self.duration_volume(name)
                    )
                )
            except (DurationModelError, ServiceModelError):
                continue
        return bank


def _aggregate_chunk(
    item: tuple[list[tuple[BaseStation, int]], SimulationConfig, int],
) -> CampaignAccumulator:
    """Executor work function: reduce one chunk of (BS, day) units.

    Each unit runs on the same spawned seed stream the materializing
    simulator would use, so the streamed statistics match ``simulate``'s
    output for the same root seed (up to the dropped continuations).
    """
    units, config, root_seed = item
    accumulator = CampaignAccumulator()
    no_peers = np.empty(0, dtype=np.int64)
    for station, day in units:
        rng = np.random.default_rng(unit_seed(root_seed, day, station.bs_id))
        counts = sample_day_arrival_counts(
            station, rng, config.rate_scale_for_day(day)
        )
        accumulator.update_arrivals(station.decile, counts)
        accumulator.update(
            _sessions_from_counts(
                station.bs_id, day, counts, config, no_peers, rng
            )
        )
    return accumulator


def simulate_aggregated(
    network: Network,
    config: SimulationConfig,
    rng: np.random.Generator | int,
    executor: SerialExecutor | ParallelExecutor | None = None,
) -> CampaignAccumulator:
    """Simulate a campaign of any length in bounded memory.

    Statistically equivalent to ``aggregate(simulate(...))`` with one
    simplification: truncated sessions are *not* re-injected at neighbour
    BSs (cross-BS continuations would require cross-batch state).  Their
    contribution is second-order for pooled statistics — the truncated
    part itself is still recorded — and the regular simulator remains the
    reference for per-BS analyses.

    ``rng`` may be an integer root seed or a ``Generator``; units are
    chunked deterministically and mapped over ``executor``, with
    bit-identical results for any worker count.
    """
    root_seed = coerce_root_seed(rng)
    # Continuations are disabled per-unit rather than globally so that the
    # base draws stay on the same streams as the materializing simulator.
    unit_config = dataclasses.replace(config, handover_continuation=False)
    units = [
        (network.station(bs_id), day)
        for day, bs_id in campaign_units(network, config)
    ]
    chunks = [
        (units[lo: lo + UNITS_PER_CHUNK], unit_config, root_seed)
        for lo in range(0, len(units), UNITS_PER_CHUNK)
    ]
    accumulators = (executor or SerialExecutor()).map(_aggregate_chunk, chunks)
    total = CampaignAccumulator()
    for accumulator in accumulators:
        total.merge(accumulator)
    return total
