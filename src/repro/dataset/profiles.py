"""Ground-truth session behaviour profiles for the synthetic substrate.

The paper fits its models on proprietary operator measurements.  Our
substitute is a generator whose *ground truth* per-service behaviours are
seeded from everything the paper publishes about each application:

* the characteristic probability peaks of the volume PDFs (Section 4.2:
  Netflix modes at ~40 MB with a drop past 200 MB, Deezer modes at 3.5 and
  7.6 MB, Twitch mode at 20 MB with a knee at 800 MB, ...);
* the broad log-normal trend of every PDF (Section 5.2);
* the power-law duration–volume relation with per-service exponents in
  [0.1, 1.8], super-linear for video streaming and sub-linear for
  interactive services (Section 5.3, Fig 10);
* the per-service session and traffic shares of Table 1 — the mean session
  volume of each profile is *solved* so that ``session_share × mean_volume``
  reproduces the tabulated traffic shares.

A profile describes the behaviour of a *complete* application session; the
short transient sessions that dominate the left side of the measured PDFs
are not part of the profile — they emerge from the mobility model
(:mod:`repro.dataset.mobility`) truncating sessions at cell boundaries,
exactly as the paper explains (Section 4.2, last paragraph).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..core.distributions import LogNormal10, LogNormalMixture
from .services import all_service_names, get_service

_LN10 = math.log(10.0)

#: Anchor translating Table 1 share ratios into absolute mean volumes (MB):
#: a service whose traffic share equals its session share has a mean session
#: volume of ANCHOR_MEAN_MB.  Chosen so Netflix lands at ~37 MB mean, in line
#: with its described 40 MB mode.
ANCHOR_MEAN_MB = 8.0

#: Log10 standard deviation of the multiplicative noise applied when mapping
#: a session volume to its duration through the power law.
DURATION_NOISE_DEX = 0.12

#: Bounds on generated full-session durations (seconds).
MIN_DURATION_S = 1.0
MAX_DURATION_S = 86400.0


class ProfileError(ValueError):
    """Raised when a ground-truth profile specification is inconsistent."""


@dataclass(frozen=True)
class VolumePeak:
    """One characteristic probability peak of a service's volume PDF.

    ``weight`` is the residual probability mass ``k_n`` of Eq (4)-(5),
    relative to a main component of weight 1; ``mu``/``sigma`` are in
    ``log10(MB)``.
    """

    weight: float
    mu: float
    sigma: float

    def mean_mb(self) -> float:
        """Mean (linear MB) of the peak's log-normal."""
        return math.exp(self.mu * _LN10 + (self.sigma * _LN10) ** 2 / 2.0)


@dataclass(frozen=True)
class GroundTruthProfile:
    """Complete generative description of one service's sessions.

    Attributes
    ----------
    service:
        Catalog name of the service.
    mixture:
        Normalized log-normal mixture of the full-session traffic volume.
    alpha, beta:
        Ground-truth power law ``v(d) = alpha * d**beta`` (MB, seconds).
    typical_duration_s:
        Duration assigned to a session at the median volume of the main
        component (anchors ``alpha``).
    """

    service: str
    mixture: LogNormalMixture
    alpha: float
    beta: float
    typical_duration_s: float

    def sample_full_volumes(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw full-session traffic volumes in MB."""
        return self.mixture.sample(rng, size=size)

    def duration_for_volume(
        self, volumes_mb: np.ndarray, rng: np.random.Generator | None = None
    ) -> np.ndarray:
        """Invert the power law to obtain durations for given volumes.

        ``d = (x / alpha) ** (1 / beta)``, with multiplicative log-normal
        noise of :data:`DURATION_NOISE_DEX` decades when ``rng`` is given;
        output clipped to ``[MIN_DURATION_S, MAX_DURATION_S]``.
        """
        volumes_mb = np.asarray(volumes_mb, dtype=float)
        if np.any(volumes_mb <= 0):
            raise ProfileError("volumes must be strictly positive")
        durations = (volumes_mb / self.alpha) ** (1.0 / self.beta)
        if rng is not None:
            durations = durations * 10.0 ** rng.normal(
                0.0, DURATION_NOISE_DEX, size=durations.shape
            )
        return np.clip(durations, MIN_DURATION_S, MAX_DURATION_S)

    def expected_volume_at(self, durations_s: np.ndarray) -> np.ndarray:
        """Ground-truth ``v(d) = alpha * d**beta`` (no noise)."""
        durations_s = np.asarray(durations_s, dtype=float)
        return self.alpha * durations_s**self.beta

    def mean_volume_mb(self) -> float:
        """Analytic mean session volume of the mixture (MB)."""
        total = 0.0
        for comp, weight in zip(self.mixture.components, self.mixture.weights):
            total += weight * math.exp(
                comp.mu * _LN10 + (comp.sigma * _LN10) ** 2 / 2.0
            )
        return total


def _solve_main_mu(
    target_mean_mb: float, sigma_main: float, peaks: tuple[VolumePeak, ...]
) -> float:
    """Solve the main-component ``mu`` so the mixture mean hits the target.

    With main weight 1 and peak weights ``k_n``, the mixture mean is
    ``(main_mean + sum(k_n * peak_mean_n)) / (1 + sum(k_n))``; the main
    log-normal mean is ``exp(mu ln10 + (sigma ln10)^2 / 2)``.
    """
    k_total = sum(p.weight for p in peaks)
    peak_mass = sum(p.weight * p.mean_mb() for p in peaks)
    main_mean = target_mean_mb * (1.0 + k_total) - peak_mass
    if main_mean <= 0:
        raise ProfileError(
            f"peaks carry more mean volume ({peak_mass:.3g} MB) than the "
            f"target ({target_mean_mb:.3g} MB) allows"
        )
    return (math.log(main_mean) - (sigma_main * _LN10) ** 2 / 2.0) / _LN10


def _build_profile(
    service: str,
    sigma_main: float,
    peaks: tuple[VolumePeak, ...],
    beta: float,
    typical_duration_s: float,
) -> GroundTruthProfile:
    """Assemble a profile whose mean volume matches the Table 1 shares."""
    info = get_service(service)
    target_mean = (
        info.traffic_share_pct / info.session_share_pct
    ) * ANCHOR_MEAN_MB
    mu_main = _solve_main_mu(target_mean, sigma_main, peaks)
    components = [LogNormal10(mu_main, sigma_main)] + [
        LogNormal10(p.mu, p.sigma) for p in peaks
    ]
    weights = [1.0] + [p.weight for p in peaks]
    mixture = LogNormalMixture.from_unnormalized(components, weights)
    # Anchor alpha so the main-component median volume maps to the typical
    # duration: median = 10**mu_main, alpha = median / d_typ**beta.
    alpha = 10.0**mu_main / typical_duration_s**beta
    return GroundTruthProfile(
        service=service,
        mixture=mixture,
        alpha=alpha,
        beta=beta,
        typical_duration_s=typical_duration_s,
    )


# ----------------------------------------------------------------------
# Profile specification table.
#
# Columns: sigma of the main log-normal (decades), characteristic peaks
# (weight k_n, log10 MB position, log10 sigma), power-law exponent beta
# (Fig 10: 0.1..1.8, video super-linear), typical duration in seconds.
#
# Peak positions for the showcase services come straight from the paper's
# narrative (Netflix 40 & 200 MB, Deezer 3.5 & 7.6 MB, Twitch 20 & 800 MB);
# the rest are plausible values at each service's own volume scale.
# ----------------------------------------------------------------------
_LOG = math.log10
# The main-component sigmas encode the paper's coarse shape dichotomy
# (Section 4.3 / Fig 6): streaming sessions span far more orders of
# magnitude (sigma ~0.8-1.0 decades) than message-exchange sessions
# (sigma ~0.4-0.6), while the outliers (iCloud / Telegram / App Store) are
# strongly bimodal thanks to their heavy bulk-transfer peaks.
_SPECS: dict[str, tuple[float, tuple[VolumePeak, ...], float, float]] = {
    "Facebook": (0.55, (VolumePeak(0.05, _LOG(1.5), 0.05),), 0.70, 75.0),
    "Instagram": (0.60, (VolumePeak(0.06, _LOG(4.0), 0.06),), 0.90, 90.0),
    "SnapChat": (0.55, (VolumePeak(0.06, _LOG(1.0), 0.05),), 0.80, 60.0),
    "Youtube": (0.85, (VolumePeak(0.06, _LOG(0.9), 0.06),), 1.20, 180.0),
    "Google Maps": (0.45, (VolumePeak(0.05, _LOG(0.25), 0.05),), 0.35, 60.0),
    "Netflix": (
        0.95,
        (VolumePeak(0.10, _LOG(40.0), 0.06), VolumePeak(0.04, _LOG(200.0), 0.08)),
        1.50,
        600.0,
    ),
    "Waze": (0.45, (VolumePeak(0.06, _LOG(0.4), 0.05),), 0.30, 120.0),
    "Twitter": (0.50, (VolumePeak(0.05, _LOG(0.7), 0.05),), 0.60, 60.0),
    "Apple iCloud": (0.50, (VolumePeak(0.45, _LOG(60.0), 0.15),), 0.90, 120.0),
    "FB Live": (0.90, (VolumePeak(0.07, _LOG(15.0), 0.06),), 1.40, 420.0),
    "Spotify": (0.80, (VolumePeak(0.07, _LOG(3.2), 0.05),), 1.00, 200.0),
    "Deezer": (
        0.85,
        (VolumePeak(0.10, _LOG(3.5), 0.045), VolumePeak(0.06, _LOG(7.6), 0.045)),
        1.05,
        220.0,
    ),
    "Amazon": (0.50, (VolumePeak(0.07, _LOG(0.12), 0.05),), 0.45, 50.0),
    "Twitch": (
        1.00,
        (VolumePeak(0.08, _LOG(20.0), 0.06), VolumePeak(0.03, _LOG(800.0), 0.09)),
        1.80,
        240.0,
    ),
    "WhatsApp": (0.50, (VolumePeak(0.06, _LOG(0.45), 0.05),), 0.50, 45.0),
    "Clothes": (0.50, (VolumePeak(0.05, _LOG(1.2), 0.05),), 0.50, 70.0),
    "Gmail": (0.45, (VolumePeak(0.04, _LOG(0.08), 0.04),), 0.30, 30.0),
    "LinkedIn": (0.50, (VolumePeak(0.04, _LOG(1.0), 0.05),), 0.50, 55.0),
    "Telegram": (0.45, (VolumePeak(0.30, _LOG(10.0), 0.22),), 0.60, 60.0),
    "Yahoo": (0.45, (VolumePeak(0.04, _LOG(0.3), 0.05),), 0.45, 40.0),
    "FB Messenger": (0.45, (VolumePeak(0.04, _LOG(0.12), 0.04),), 0.40, 40.0),
    "Google Meet": (0.85, (VolumePeak(0.05, _LOG(8.0), 0.06),), 1.10, 600.0),
    "Clash of Clans": (0.40, (VolumePeak(0.04, _LOG(0.5), 0.04),), 0.35, 120.0),
    "Microsoft Mail": (0.45, (VolumePeak(0.03, _LOG(0.08), 0.04),), 0.30, 30.0),
    "Google Docs": (0.45, (VolumePeak(0.03, _LOG(0.3), 0.05),), 0.40, 90.0),
    "Uber": (0.40, (VolumePeak(0.03, _LOG(0.12), 0.04),), 0.20, 120.0),
    "Wikipedia": (0.45, (VolumePeak(0.03, _LOG(0.2), 0.05),), 0.40, 45.0),
    "Pokemon GO": (0.40, (VolumePeak(0.05, _LOG(0.10), 0.04),), 0.25, 90.0),
    "Dailymotion": (0.90, (VolumePeak(0.05, _LOG(10.0), 0.06),), 1.30, 300.0),
    "Skype": (0.85, (VolumePeak(0.05, _LOG(5.0), 0.06),), 1.00, 400.0),
    "App Store": (0.45, (VolumePeak(0.40, _LOG(45.0), 0.18),), 0.80, 180.0),
}


def _build_registry() -> dict[str, GroundTruthProfile]:
    registry: dict[str, GroundTruthProfile] = {}
    for name in all_service_names():
        if name not in _SPECS:
            raise ProfileError(f"no ground-truth spec for service {name!r}")
        sigma_main, peaks, beta, typical_duration = _SPECS[name]
        registry[name] = _build_profile(
            name, sigma_main, peaks, beta, typical_duration
        )
    return registry


#: Registry of ground-truth profiles, one per cataloged service.
PROFILES: dict[str, GroundTruthProfile] = _build_registry()


def get_profile(service: str) -> GroundTruthProfile:
    """Look up the ground-truth profile of a service."""
    try:
        return PROFILES[service]
    except KeyError:
        raise ProfileError(f"unknown service {service!r}") from None
