"""UE mobility model: cell dwell times and session truncation.

Section 4.2 stresses that "many sessions of mobile users occur only in part
within a same BS, and generate a smaller-than-expected volume of traffic",
producing the dense low-volume head of every measured PDF — and that such
transient sessions "have been ignored by traffic models proposed in the
literature so far".

We model the dwell time of the UE in the serving cell as a two-population
log-normal mixture: *in-transit* users with short dwells (about a minute, the
paper's "reasonable mean dwell time in the BS for in-transit UEs") and
*stationary* users with dwells much longer than most sessions.  A session
whose duration exceeds the dwell is truncated at the cell boundary; the rest
of it continues as a brand-new transport session in a neighbouring cell
(Section 3.2: handovers are "recorded in the measurement dataset as newly
established or concluded transport-layer sessions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class MobilityModel:
    """Two-population log-normal dwell-time model.

    Attributes
    ----------
    transit_fraction:
        Probability that the UE behind a session is in transit.
    transit_median_s / transit_sigma_dex:
        Median (seconds) and log10-spread of in-transit dwell times.
    stationary_median_s / stationary_sigma_dex:
        Median and log10-spread of stationary dwell times.
    """

    transit_fraction: float = 0.12
    transit_median_s: float = 90.0
    transit_sigma_dex: float = 0.25
    stationary_median_s: float = 14400.0
    stationary_sigma_dex: float = 0.50

    def __post_init__(self) -> None:
        if not 0.0 <= self.transit_fraction <= 1.0:
            raise ValueError("transit_fraction must be in [0, 1]")
        for value in (self.transit_median_s, self.stationary_median_s):
            if value <= 0:
                raise ValueError("dwell medians must be positive")

    def sample_dwell_s(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` dwell times in seconds."""
        in_transit = rng.random(size) < self.transit_fraction
        dwell = np.empty(size)
        n_transit = int(in_transit.sum())
        if n_transit:
            dwell[in_transit] = self.transit_median_s * 10.0 ** rng.normal(
                0.0, self.transit_sigma_dex, size=n_transit
            )
        n_stationary = size - n_transit
        if n_stationary:
            dwell[~in_transit] = self.stationary_median_s * 10.0 ** rng.normal(
                0.0, self.stationary_sigma_dex, size=n_stationary
            )
        return dwell


def truncate_sessions(
    volumes_mb: np.ndarray,
    durations_s: np.ndarray,
    dwells_s: np.ndarray,
    betas: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Cut sessions at the cell boundary.

    For a session of full volume ``x`` and duration ``d`` cut after a dwell
    ``T < d``, the observed volume is ``x * (T/d)**beta``: volume accrual
    inside a session follows the same power law that links duration to
    volume across sessions, so truncated sessions stay on their service's
    ``v(d)`` curve (at the session's own offset from it).

    Returns
    -------
    observed_volumes, observed_durations, truncated:
        Arrays of the served volume (MB), served duration (s) and a boolean
        flag marking sessions that were cut short.
    """
    volumes_mb = np.asarray(volumes_mb, dtype=float)
    durations_s = np.asarray(durations_s, dtype=float)
    dwells_s = np.asarray(dwells_s, dtype=float)
    betas = np.asarray(betas, dtype=float)
    if not (volumes_mb.shape == durations_s.shape == dwells_s.shape == betas.shape):
        raise ValueError("all inputs must have the same shape")

    truncated = dwells_s < durations_s
    observed_durations = np.where(truncated, dwells_s, durations_s)
    fraction = np.ones_like(durations_s)
    fraction[truncated] = (
        dwells_s[truncated] / durations_s[truncated]
    ) ** betas[truncated]
    observed_volumes = volumes_mb * fraction
    return observed_volumes, observed_durations, truncated
