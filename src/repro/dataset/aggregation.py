"""Aggregation of raw sessions into the paper's per-(s, c, t) statistics.

Section 3.2: for every service ``s``, BS ``c`` and day ``t`` the dataset
keeps (i) the number of sessions arriving each minute ``w_s^{c,m}`` (and its
daily total ``w_s^{c,t}``), (ii) the PDF of the per-session traffic volume
``F_s^{c,t}(x)`` and (iii) pairs of discretized duration and mean traffic
volume ``v_s^{c,t}(d)``.  This module computes exactly those objects from a
:class:`~repro.dataset.records.SessionTable`, plus fast *pooled* variants
that merge over any subset of BSs and days in one pass (mathematically
identical to the weighted averages of Section 3.3, since the weights are the
session counts themselves).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..analysis.histogram import (
    BIN_WIDTH,
    LOG_U_MAX,
    LOG_U_MIN,
    N_BINS,
    LogHistogram,
)
from .records import SERVICE_INDEX, SERVICE_NAMES, SessionTable

#: Number of discretized duration bins of the v(d) pairs.
N_DURATION_BINS = 40
#: Geometric duration bin edges, 1 second .. 24 hours.
DURATION_EDGES = np.geomspace(1.0, 86400.0, N_DURATION_BINS + 1)
#: Geometric centers of the duration bins (seconds).
DURATION_CENTERS = np.sqrt(DURATION_EDGES[:-1] * DURATION_EDGES[1:])


class AggregationError(ValueError):
    """Raised when aggregation input is inconsistent."""


@dataclass
class DurationVolumeCurve:
    """Discretized duration – mean traffic volume pairs ``v(d)``.

    ``mean_volume_mb[i]`` is the mean served volume of sessions whose
    duration falls in bin ``i``; ``counts[i]`` is how many sessions back
    that mean (zero marks an empty bin).
    """

    mean_volume_mb: np.ndarray
    counts: np.ndarray

    def __post_init__(self) -> None:
        self.mean_volume_mb = np.asarray(self.mean_volume_mb, dtype=float)
        self.counts = np.asarray(self.counts, dtype=float)
        if self.mean_volume_mb.shape != (N_DURATION_BINS,):
            raise AggregationError("mean_volume_mb must have one value per bin")
        if self.counts.shape != (N_DURATION_BINS,):
            raise AggregationError("counts must have one value per bin")

    @classmethod
    def from_sessions(
        cls, durations_s: np.ndarray, volumes_mb: np.ndarray
    ) -> "DurationVolumeCurve":
        """Build the curve directly from raw per-session arrays.

        The entry point for downstream users with their own session data
        (e.g. read from a trace): durations are binned on the global
        geometric grid and the mean volume per bin computed.
        """
        durations_s = np.asarray(durations_s, dtype=float)
        volumes_mb = np.asarray(volumes_mb, dtype=float)
        if durations_s.shape != volumes_mb.shape:
            raise AggregationError("durations and volumes must align")
        if durations_s.size == 0:
            return cls(np.zeros(N_DURATION_BINS), np.zeros(N_DURATION_BINS))
        if np.any(durations_s <= 0) or np.any(volumes_mb <= 0):
            raise AggregationError("durations and volumes must be positive")
        bins = _digitize_durations(durations_s)
        sums = np.bincount(bins, weights=volumes_mb, minlength=N_DURATION_BINS)
        counts = np.bincount(bins, minlength=N_DURATION_BINS)
        means = np.zeros(N_DURATION_BINS)
        observed = counts > 0
        means[observed] = sums[observed] / counts[observed]
        return cls(means, counts.astype(float))

    @property
    def durations_s(self) -> np.ndarray:
        """Duration bin centers in seconds."""
        return DURATION_CENTERS

    def observed(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (durations, mean volumes, counts) of the non-empty bins."""
        mask = self.counts > 0
        return DURATION_CENTERS[mask], self.mean_volume_mb[mask], self.counts[mask]

    def throughput_mbps(self) -> tuple[np.ndarray, np.ndarray]:
        """Mean throughput (Mbit/s) per observed duration bin."""
        durations, volumes, _ = self.observed()
        return durations, volumes * 8.0 / durations


@dataclass
class ServiceDayStats:
    """The (s, c, t) statistics tuple of Section 3.2.

    Attributes
    ----------
    service / bs_id / day:
        The aggregation key.
    n_sessions:
        Daily session count ``w_s^{c,t}`` — the weight of Eqs (1)–(2).
    volume_counts:
        Session counts per bin of the global log-volume grid; divide by
        ``n_sessions * BIN_WIDTH`` for the PDF ``F_s^{c,t}(x)``.
    dv_sums / dv_counts:
        Per-duration-bin volume sums and session counts backing
        ``v_s^{c,t}(d)``.
    minute_counts:
        Per-minute arrival counts ``w_s^{c,m}`` (length 1440).
    """

    service: str
    bs_id: int
    day: int
    n_sessions: int
    volume_counts: np.ndarray
    dv_sums: np.ndarray
    dv_counts: np.ndarray
    minute_counts: np.ndarray

    def volume_pdf(self) -> LogHistogram:
        """The volume PDF ``F_s^{c,t}(x)`` as a :class:`LogHistogram`."""
        if self.n_sessions == 0:
            return LogHistogram.empty()
        density = self.volume_counts / (self.n_sessions * BIN_WIDTH)
        return LogHistogram(density, n_samples=float(self.n_sessions))

    def duration_volume(self) -> DurationVolumeCurve:
        """The pairs ``v_s^{c,t}(d)``."""
        means = np.zeros(N_DURATION_BINS)
        mask = self.dv_counts > 0
        means[mask] = self.dv_sums[mask] / self.dv_counts[mask]
        return DurationVolumeCurve(means, self.dv_counts.astype(float))


def _digitize_volumes(volumes_mb: np.ndarray) -> np.ndarray:
    """Map volumes to global log-grid bin indices (clipped to the grid)."""
    u = np.clip(np.log10(volumes_mb), LOG_U_MIN, LOG_U_MAX - 1e-9)
    return np.minimum(
        ((u - LOG_U_MIN) / BIN_WIDTH).astype(np.int64), N_BINS - 1
    )


def _digitize_durations(durations_s: np.ndarray) -> np.ndarray:
    """Map durations to duration-bin indices (clipped to the bins)."""
    idx = np.searchsorted(DURATION_EDGES, durations_s, side="right") - 1
    return np.clip(idx, 0, N_DURATION_BINS - 1)


def aggregate_per_bs_day(table: SessionTable) -> list[ServiceDayStats]:
    """Compute the full (s, c, t) statistics of every key present in a table."""
    if len(table) == 0:
        return []
    n_bs = int(table.bs_id.max()) + 1
    n_days = int(table.day.max()) + 1
    key = (
        table.service_idx.astype(np.int64) * n_bs + table.bs_id
    ) * n_days + table.day
    order = np.argsort(key, kind="stable")
    sorted_key = key[order]
    boundaries = np.flatnonzero(np.diff(sorted_key)) + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(table)]])

    volumes = table.volume_mb.astype(float)[order]
    durations = table.duration_s.astype(float)[order]
    minutes = table.start_minute[order]
    vol_bins = _digitize_volumes(volumes)
    dur_bins = _digitize_durations(durations)

    stats: list[ServiceDayStats] = []
    for start, end in zip(starts, ends):
        k = int(sorted_key[start])
        day = k % n_days
        bs_id = (k // n_days) % n_bs
        service_idx = k // (n_days * n_bs)
        n = end - start
        stats.append(
            ServiceDayStats(
                service=SERVICE_NAMES[service_idx],
                bs_id=bs_id,
                day=day,
                n_sessions=int(n),
                volume_counts=np.bincount(
                    vol_bins[start:end], minlength=N_BINS
                ).astype(np.uint32),
                dv_sums=np.bincount(
                    dur_bins[start:end],
                    weights=volumes[start:end],
                    minlength=N_DURATION_BINS,
                ),
                dv_counts=np.bincount(
                    dur_bins[start:end], minlength=N_DURATION_BINS
                ).astype(np.uint32),
                minute_counts=np.bincount(
                    minutes[start:end], minlength=1440
                ).astype(np.uint32),
            )
        )
    return stats


# ----------------------------------------------------------------------
# Pooled fast paths.  Pooling raw sessions over a set of (c, t) keys is
# *exactly* the session-count-weighted average of the per-(c, t) statistics:
# for PDFs, sum(w_ct * F_ct) / sum(w_ct) = pooled_counts / (N * BIN_WIDTH),
# which is Eq (2); the analogous identity holds for Eq (1).
# ----------------------------------------------------------------------

def pooled_volume_pdf(table: SessionTable) -> LogHistogram:
    """Volume PDF of all sessions in a table — Eq (2) over its (c, t) keys."""
    if len(table) == 0:
        return LogHistogram.empty()
    bins = _digitize_volumes(table.volume_mb.astype(float))
    counts = np.bincount(bins, minlength=N_BINS)
    return LogHistogram(
        counts / (len(table) * BIN_WIDTH), n_samples=float(len(table))
    )


def pooled_duration_volume(table: SessionTable) -> DurationVolumeCurve:
    """Duration–volume pairs of all sessions in a table — Eq (1)."""
    if len(table) == 0:
        return DurationVolumeCurve(
            np.zeros(N_DURATION_BINS), np.zeros(N_DURATION_BINS)
        )
    bins = _digitize_durations(table.duration_s.astype(float))
    sums = np.bincount(
        bins, weights=table.volume_mb.astype(float), minlength=N_DURATION_BINS
    )
    counts = np.bincount(bins, minlength=N_DURATION_BINS)
    means = np.zeros(N_DURATION_BINS)
    mask = counts > 0
    means[mask] = sums[mask] / counts[mask]
    return DurationVolumeCurve(means, counts.astype(float))


def minute_arrival_counts(
    table: SessionTable, bs_ids, n_days: int
) -> np.ndarray:
    """Per-minute arrival counts over all (BS, day, minute) slots.

    Returns a flat array of length ``len(bs_ids) * n_days * 1440`` including
    the zero-arrival minutes — the samples whose PDF is plotted in Fig 3.
    Arrivals are counted across all services, as in Section 4.1.
    """
    bs_ids = list(bs_ids)
    if not bs_ids:
        raise AggregationError("need at least one BS")
    sub = table.for_bs_ids(bs_ids)
    bs_pos = {bs: i for i, bs in enumerate(bs_ids)}
    positions = np.array([bs_pos[b] for b in sub.bs_id], dtype=np.int64)
    slot = (positions * n_days + sub.day) * 1440 + sub.start_minute
    return np.bincount(slot, minlength=len(bs_ids) * n_days * 1440)


def service_shares(table: SessionTable) -> dict[str, tuple[float, float]]:
    """Per-service (session share, traffic share), both as fractions.

    This regenerates the two share columns of Table 1 from raw sessions.
    """
    if len(table) == 0:
        raise AggregationError("cannot compute shares of an empty table")
    session_counts = np.bincount(
        table.service_idx, minlength=len(SERVICE_NAMES)
    ).astype(float)
    traffic = np.bincount(
        table.service_idx,
        weights=table.volume_mb.astype(float),
        minlength=len(SERVICE_NAMES),
    )
    session_share = session_counts / session_counts.sum()
    traffic_share = traffic / traffic.sum()
    return {
        name: (float(session_share[i]), float(traffic_share[i]))
        for i, name in enumerate(SERVICE_NAMES)
    }


def share_variability(
    table: SessionTable, service: str
) -> tuple[float, float]:
    """CV of a service's session and traffic shares across (BS, day) cells.

    This is the Table 1 "(CV)" column: the expected diversity of the share
    contributed by the service across different portions of the network.
    Cells with no sessions at all are skipped (no share is defined there).
    """
    if len(table) == 0:
        raise AggregationError("empty table")
    if service not in SERVICE_INDEX:
        raise AggregationError(f"unknown service {service!r}")
    idx = SERVICE_INDEX[service]
    n_days = int(table.day.max()) + 1
    cell = table.bs_id.astype(np.int64) * n_days + table.day
    n_cells = int(cell.max()) + 1

    total_sessions = np.bincount(cell, minlength=n_cells).astype(float)
    total_traffic = np.bincount(
        cell, weights=table.volume_mb.astype(float), minlength=n_cells
    )
    is_service = table.service_idx == idx
    svc_sessions = np.bincount(
        cell[is_service], minlength=n_cells
    ).astype(float)
    svc_traffic = np.bincount(
        cell[is_service],
        weights=table.volume_mb.astype(float)[is_service],
        minlength=n_cells,
    )

    active = total_sessions > 0
    session_shares = svc_sessions[active] / total_sessions[active]
    traffic_shares = svc_traffic[active] / np.clip(total_traffic[active], 1e-12, None)

    def cv(samples: np.ndarray) -> float:
        mean = samples.mean()
        if mean == 0:
            return float("nan")
        return float(samples.std(ddof=0) / mean)

    return cv(session_shares), cv(traffic_shares)
