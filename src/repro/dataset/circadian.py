"""Circadian day/night structure of the session arrival process.

Section 4.1 observes that the per-minute session arrival counts at every BS
follow a *bi-modal* distribution: a high daytime mode and a low nighttime
mode, with transitions so rapid that intermediate rates have negligible
probability.  Section 6.1 identifies the off-peak window as 10 pm – 8 am.
This module encodes that two-state structure and samples per-minute arrival
counts from it.
"""

from __future__ import annotations

import numpy as np

from ..core.distributions import Gaussian, Pareto
from .network import PARETO_SHAPE, BaseStation

#: First hour of the daytime (peak) phase.
DAY_START_HOUR = 8
#: First hour of the nighttime (off-peak) phase.
NIGHT_START_HOUR = 22

MINUTES_PER_DAY = 1440


def is_peak_minute(minute_of_day: int) -> bool:
    """Whether a minute-of-day index falls in the daytime (peak) phase."""
    if not 0 <= minute_of_day < MINUTES_PER_DAY:
        raise ValueError(f"minute_of_day must be in 0..1439, got {minute_of_day}")
    hour = minute_of_day // 60
    return DAY_START_HOUR <= hour < NIGHT_START_HOUR


def _build_peak_minute_mask() -> np.ndarray:
    minutes = np.arange(MINUTES_PER_DAY)
    hours = minutes // 60
    mask = (hours >= DAY_START_HOUR) & (hours < NIGHT_START_HOUR)
    mask.flags.writeable = False
    return mask


#: Cached (read-only) peak mask — the hot sampling path asks for it per
#: generated BS-day, so recomputing it each call is measurable overhead.
_PEAK_MINUTE_MASK = _build_peak_minute_mask()


def peak_minute_mask() -> np.ndarray:
    """Boolean mask over the 1440 minutes of a day (True = peak phase).

    Returns a shared read-only array; copy before mutating.
    """
    return _PEAK_MINUTE_MASK


def n_peak_minutes() -> int:
    """Number of peak-phase minutes in one day."""
    return int(peak_minute_mask().sum())


def sample_day_arrival_counts(
    station: BaseStation, rng: np.random.Generator, rate_scale: float = 1.0
) -> np.ndarray:
    """Per-minute session arrival counts for one BS over one day.

    Daytime minutes draw from the Gaussian ``N(mu_c, (mu_c/10)^2)`` and
    nighttime minutes from the Pareto with fixed shape 1.765 and per-BS
    scale — the Section 5.1 model, used here *generatively* as the ground
    truth the fitting pipeline must recover.  Draws are rounded to integer
    counts and clipped at zero.

    ``rate_scale`` uniformly scales both phases (e.g. the weekend workload
    reduction): the *volume* of arrivals changes, the session-level
    statistics do not — the Section 4.4 distinction.
    """
    if rate_scale <= 0:
        raise ValueError("rate_scale must be positive")
    mask = peak_minute_mask()
    counts = np.zeros(MINUTES_PER_DAY)

    day = Gaussian(
        station.peak_rate * rate_scale, station.peak_sigma * rate_scale
    )
    counts[mask] = day.sample(rng, size=int(mask.sum()))

    night = Pareto(PARETO_SHAPE, station.night_scale * rate_scale)
    counts[~mask] = night.sample(rng, size=int((~mask).sum()))

    return np.clip(np.rint(counts), 0, None).astype(np.int64)
