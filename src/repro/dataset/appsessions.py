"""Application-layer sessions: groups of related transport sessions.

The paper models *individual* transport-layer sessions and explicitly
defers the higher layer to future work (footnote 1 and Section 7): "a
single application may establish multiple transport-layer sessions ...
over time (e.g., a messaging service initiating new sessions at every time
the user switches to a new chat) or in parallel (e.g., a large file
transfer application opening multiple FTP sessions)".

This module implements that future-work layer on top of the substrate:
an application-layer session is expanded into one or more transport
sessions, either *sequential* (separated by think-time gaps) or *parallel*
(overlapping connections splitting the volume), and the grouping is kept
so the relationship between sibling flows can be analysed.

The expansion conserves the application session's total volume and shifts
the flow-size distribution accordingly — exactly the effect a study of
application-layer dynamics would quantify against the paper's
transport-level models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .profiles import get_profile
from .records import SERVICE_INDEX, SERVICE_NAMES, SessionTable


class AppSessionError(ValueError):
    """Raised on inconsistent application-session configuration."""


@dataclass(frozen=True)
class AppSessionProfile:
    """How one service expands application sessions into transport flows.

    Attributes
    ----------
    service:
        Catalog name of the service.
    mean_flows:
        Mean number of transport flows per application session; the count
        is 1 + Geometric(p) with ``p = 1 / mean_flows`` (so at least one
        flow always exists).
    parallel_fraction:
        Probability that a multi-flow app session opens its flows in
        parallel (volume split across overlapping connections) rather than
        sequentially (volume split across time with think-time gaps).
    think_time_s:
        Mean exponential gap between consecutive sequential flows.
    """

    service: str
    mean_flows: float = 1.5
    parallel_fraction: float = 0.3
    think_time_s: float = 20.0

    def __post_init__(self) -> None:
        if self.service not in SERVICE_INDEX:
            raise AppSessionError(f"unknown service {self.service!r}")
        if self.mean_flows < 1.0:
            raise AppSessionError("mean_flows must be >= 1")
        if not 0.0 <= self.parallel_fraction <= 1.0:
            raise AppSessionError("parallel_fraction must be in [0, 1]")
        if self.think_time_s < 0:
            raise AppSessionError("think_time_s must be non-negative")

    def sample_flow_counts(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Number of transport flows for ``size`` application sessions."""
        if self.mean_flows <= 1.0:
            return np.ones(size, dtype=np.int64)
        # Geometric on {1, 2, ...} with the requested mean.
        return rng.geometric(1.0 / self.mean_flows, size=size).astype(np.int64)


#: Default expansion profiles.  Messaging-style services tend to open many
#: short flows (per chat / per content fetch); streaming keeps one or two
#: long connections; bulk-transfer outliers parallelize.
DEFAULT_APP_PROFILES: dict[str, AppSessionProfile] = {}
for _name in SERVICE_NAMES:
    if _name in ("Facebook", "Instagram", "SnapChat", "Twitter", "WhatsApp",
                 "FB Messenger", "Telegram"):
        DEFAULT_APP_PROFILES[_name] = AppSessionProfile(
            _name, mean_flows=2.5, parallel_fraction=0.2, think_time_s=25.0
        )
    elif _name in ("Netflix", "Twitch", "FB Live", "Youtube", "Deezer",
                   "Spotify", "Google Meet", "Dailymotion", "Skype"):
        DEFAULT_APP_PROFILES[_name] = AppSessionProfile(
            _name, mean_flows=1.2, parallel_fraction=0.5, think_time_s=5.0
        )
    elif _name in ("Apple iCloud", "App Store"):
        DEFAULT_APP_PROFILES[_name] = AppSessionProfile(
            _name, mean_flows=3.0, parallel_fraction=0.8, think_time_s=2.0
        )
    else:
        DEFAULT_APP_PROFILES[_name] = AppSessionProfile(
            _name, mean_flows=1.8, parallel_fraction=0.25, think_time_s=15.0
        )


@dataclass
class AppSessionTable:
    """Transport sessions annotated with their application session.

    ``flows`` has one row per transport session; ``app_id[i]`` identifies
    the application session that produced row ``i``.
    """

    flows: SessionTable
    app_id: np.ndarray

    def __post_init__(self) -> None:
        self.app_id = np.asarray(self.app_id, dtype=np.int64)
        if self.app_id.shape != (len(self.flows),):
            raise AppSessionError("app_id must align with the flow table")

    def n_app_sessions(self) -> int:
        """Number of distinct application sessions."""
        return int(np.unique(self.app_id).size)

    def flows_per_app_session(self) -> np.ndarray:
        """Histogram sample: transport-flow count of each app session."""
        return np.bincount(
            np.unique(self.app_id, return_inverse=True)[1]
        )

    def app_session_volumes_mb(self) -> np.ndarray:
        """Total volume of each application session (MB)."""
        _, inverse = np.unique(self.app_id, return_inverse=True)
        return np.bincount(
            inverse, weights=self.flows.volume_mb.astype(float)
        )


def expand_app_sessions(
    service: str,
    start_minutes: np.ndarray,
    day: np.ndarray,
    bs_id: np.ndarray,
    rng: np.random.Generator,
    profile: AppSessionProfile | None = None,
    first_app_id: int = 0,
) -> AppSessionTable:
    """Expand application-session arrivals into transport sessions.

    Each arrival draws a full application-session volume and duration from
    the service's ground-truth profile, a transport-flow count from the
    app profile, and splits volume/time across the flows:

    * **parallel**: flows start together, volumes drawn from a symmetric
      Dirichlet split, durations equal to the app session's;
    * **sequential**: flows follow each other with exponential think-time
      gaps; volume and duration are split proportionally to the same
      Dirichlet weights, so each flow keeps the service's v(d) offset.
    """
    start_minutes = np.asarray(start_minutes, dtype=np.int64)
    day = np.asarray(day, dtype=np.int64)
    bs_id = np.asarray(bs_id, dtype=np.int64)
    n = start_minutes.size
    if not (day.shape == bs_id.shape == (n,)):
        raise AppSessionError("arrival columns must align")
    if profile is None:
        profile = DEFAULT_APP_PROFILES[service]
    elif profile.service != service:
        raise AppSessionError("profile service mismatch")

    ground = get_profile(service)
    volumes = ground.sample_full_volumes(rng, n)
    durations = ground.duration_for_volume(volumes, rng)
    counts = profile.sample_flow_counts(rng, n)
    parallel = rng.random(n) < profile.parallel_fraction

    service_idx = SERVICE_INDEX[service]
    rows_service, rows_bs, rows_day, rows_minute = [], [], [], []
    rows_duration, rows_volume, rows_app = [], [], []

    for i in range(n):
        k = int(counts[i])
        if k == 1:
            weights = np.array([1.0])
        else:
            weights = rng.dirichlet(np.full(k, 2.0, dtype=np.float64))
        flow_volumes = np.maximum(volumes[i] * weights, 1e-4)
        if parallel[i] or k == 1:
            flow_durations = np.full(k, durations[i], dtype=np.float64)
            offsets_s = np.zeros(k)
        else:
            flow_durations = np.maximum(durations[i] * weights, 1.0)
            gaps = rng.exponential(profile.think_time_s, size=k)
            offsets_s = np.concatenate(
                [[0.0], np.cumsum(flow_durations[:-1] + gaps[:-1])]
            )
        minute = np.minimum(
            start_minutes[i] + (offsets_s // 60).astype(np.int64), 1439
        )
        rows_service.append(np.full(k, service_idx, dtype=np.int16))
        rows_bs.append(np.full(k, bs_id[i], dtype=np.int32))
        rows_day.append(np.full(k, day[i], dtype=np.int16))
        rows_minute.append(minute)
        rows_duration.append(flow_durations)
        rows_volume.append(flow_volumes)
        rows_app.append(np.full(k, first_app_id + i, dtype=np.int64))

    flows = SessionTable(
        service_idx=np.concatenate(rows_service),
        bs_id=np.concatenate(rows_bs),
        day=np.concatenate(rows_day),
        start_minute=np.concatenate(rows_minute),
        duration_s=np.concatenate(rows_duration),
        volume_mb=np.concatenate(rows_volume),
        truncated=np.zeros(int(counts.sum()), dtype=bool),
    )
    return AppSessionTable(flows=flows, app_id=np.concatenate(rows_app))
