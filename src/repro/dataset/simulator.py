"""End-to-end synthetic measurement campaign.

This is the substitute for the paper's 45-day nationwide trace (Section 3):
it simulates, minute by minute and BS by BS, the establishment of
transport-layer sessions, draws each session's service, full volume and
duration from the ground-truth profiles, applies the mobility model to cut
sessions at cell boundaries, and re-injects the cut remainders as new
sessions in neighbouring cells (the handover artefact of Section 3.2).

The campaign decomposes into independent **(day, BS) work units**: each
unit owns a private RNG spawned from the root seed via
``np.random.SeedSequence`` (see :mod:`repro.pipeline.context`), so the
output is bit-identical regardless of iteration order or worker count.
:func:`simulate_bs_day` is the pure per-unit kernel; :func:`simulate`
orchestrates the units across any :mod:`repro.pipeline.executors` executor.

The output is a :class:`~repro.dataset.records.SessionTable` — the raw
material every aggregation, characterization and model-fitting step of the
library consumes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..pipeline.context import coerce_root_seed, stream_seed
from ..pipeline.executors import ParallelExecutor, SerialExecutor
from .circadian import sample_day_arrival_counts
from .mobility import MobilityModel, truncate_sessions
from .network import BaseStation, Network
from .profiles import PROFILES
from .records import SERVICE_NAMES, SessionTable
from .services import session_share_fractions

#: Floor on the served volume of heavily truncated sessions (100 bytes).
MIN_OBSERVED_VOLUME_MB = 1e-4

#: Stream label of per-(day, BS) simulation RNGs (see :func:`unit_seed`).
UNIT_STREAM = "bs-day"


@dataclass(frozen=True)
class SimulationConfig:
    """Parameters of a synthetic measurement campaign.

    Attributes
    ----------
    n_days:
        Number of simulated days; day indices ``d`` with ``d % 7 in {5, 6}``
        are weekend days.
    mobility:
        Dwell-time model used to truncate sessions.
    handover_continuation:
        Whether the remainder of a truncated session re-appears as a new
        session at another BS (Section 3.2).
    max_handover_chain:
        Cap on how many times one application session can be handed over.
    share_jitter_dex:
        Log10 spread of an optional per-BS-day service-popularity jitter.
        The paper finds session shares essentially constant across the
        network (Table 1: CV ≈ 1 %), so the default adds no jitter; the
        knob exists for robustness experiments.
    weekend_rate_factor:
        Arrival-rate multiplier applied on weekend days.  BS-level
        workloads "differ primarily between working days and weekends"
        (Section 4.4); the per-session statistics stay identical, which is
        exactly the invariance Fig 8 measures.
    """

    n_days: int = 3
    mobility: MobilityModel = field(default_factory=MobilityModel)
    handover_continuation: bool = True
    max_handover_chain: int = 2
    share_jitter_dex: float = 0.0
    weekend_rate_factor: float = 0.85

    def __post_init__(self) -> None:
        if self.n_days < 1:
            raise ValueError("n_days must be >= 1")
        if self.max_handover_chain < 0:
            raise ValueError("max_handover_chain must be >= 0")
        if self.weekend_rate_factor <= 0:
            raise ValueError("weekend_rate_factor must be positive")

    def weekend_days(self) -> list[int]:
        """Day indices falling on a weekend."""
        return [d for d in range(self.n_days) if d % 7 in (5, 6)]

    def working_days(self) -> list[int]:
        """Day indices falling on working days (Monday–Friday)."""
        return [d for d in range(self.n_days) if d % 7 not in (5, 6)]

    def rate_scale_for_day(self, day: int) -> float:
        """Arrival-rate multiplier of one day (weekend factor or 1)."""
        return self.weekend_rate_factor if day % 7 in (5, 6) else 1.0


_BASE_SHARES = np.array(
    [session_share_fractions()[name] for name in SERVICE_NAMES]
)
_BETAS = np.array([PROFILES[name].beta for name in SERVICE_NAMES])


def _jittered_shares(rng: np.random.Generator, jitter_dex: float) -> np.ndarray:
    """Per-BS-day service shares: catalog shares with log-normal jitter."""
    if jitter_dex <= 0:
        return _BASE_SHARES
    shares = _BASE_SHARES * 10.0 ** rng.normal(0.0, jitter_dex, _BASE_SHARES.size)
    return shares / shares.sum()


def _draw_session_bodies(
    service_idx: np.ndarray, rng: np.random.Generator
) -> tuple[np.ndarray, np.ndarray]:
    """Full-session volumes and durations for an array of service indices."""
    n = service_idx.size
    volumes = np.empty(n)
    durations = np.empty(n)
    for idx in np.unique(service_idx):
        mask = service_idx == idx
        profile = PROFILES[SERVICE_NAMES[idx]]
        vols = profile.sample_full_volumes(rng, int(mask.sum()))
        volumes[mask] = vols
        durations[mask] = profile.duration_for_volume(vols, rng)
    return volumes, durations


# ----------------------------------------------------------------------
# Per-(day, BS) work units
# ----------------------------------------------------------------------
def unit_seed(root_seed: int, day: int, bs_id: int) -> np.random.SeedSequence:
    """Seed sequence of one (day, BS) simulation work unit.

    Derived from the root seed and the unit's identity alone, so the unit's
    sessions are reproducible no matter where or in what order the unit
    runs — the property the determinism suite pins down.
    """
    return stream_seed(root_seed, UNIT_STREAM, day, bs_id)


def campaign_units(
    network: Network, config: SimulationConfig
) -> list[tuple[int, int]]:
    """Canonical (day, bs_id) work-unit order of a campaign.

    Results are always assembled in this order, so the campaign table is
    identical whichever executor ran the units.
    """
    return [
        (day, station.bs_id)
        for day in range(config.n_days)
        for station in network
    ]


def decile_peer_map(network: Network) -> dict[int, np.ndarray]:
    """BS identifiers of each load decile, as handover-target arrays.

    Handovers land in a neighbouring cell of the same load decile: cell
    load is spatially correlated, so a session cut at a busy cell almost
    always continues in another busy cell (and vice versa).
    """
    return {
        decile: np.array(network.bs_ids_in_decile(decile))
        for decile in range(10)
    }


def simulate_bs_day(
    station: BaseStation,
    day: int,
    config: SimulationConfig,
    peers: np.ndarray,
    rng: np.random.Generator,
) -> SessionTable:
    """Pure per-unit kernel: one BS over one day, plus its handovers.

    ``peers`` is the array of same-decile BS identifiers continuations may
    land at (see :func:`decile_peer_map`).  All randomness comes from
    ``rng``, so the unit is fully deterministic given its seed stream.
    """
    counts = sample_day_arrival_counts(
        station, rng, config.rate_scale_for_day(day)
    )
    return _sessions_from_counts(station.bs_id, day, counts, config, peers, rng)


def _sessions_from_counts(
    bs_id: int,
    day: int,
    counts: np.ndarray,
    config: SimulationConfig,
    peers: np.ndarray,
    rng: np.random.Generator,
) -> SessionTable:
    """Serve one BS-day of arrivals drawn as per-minute ``counts``."""
    n = int(counts.sum())
    if n == 0:
        return SessionTable.empty()
    start_minute = np.repeat(np.arange(1440, dtype=np.int64), counts)
    shares = _jittered_shares(rng, config.share_jitter_dex)
    service_idx = rng.choice(len(SERVICE_NAMES), size=n, p=shares)
    volumes, durations = _draw_session_bodies(service_idx, rng)
    dwells = config.mobility.sample_dwell_s(rng, n)
    return _serve_at_bs(
        bs_id,
        day,
        start_minute,
        service_idx,
        volumes,
        durations,
        dwells,
        rng,
        config,
        peers,
        chain_depth=0,
    )


def _simulate_unit(
    item: tuple[BaseStation, int, SimulationConfig, np.ndarray, int],
) -> SessionTable:
    """Executor work function: run one (day, BS) unit on its own stream."""
    station, day, config, peers, root_seed = item
    rng = np.random.default_rng(unit_seed(root_seed, day, station.bs_id))
    return simulate_bs_day(station, day, config, peers, rng)


def simulate(
    network: Network,
    config: SimulationConfig,
    rng: np.random.Generator | int,
    executor: SerialExecutor | ParallelExecutor | None = None,
) -> SessionTable:
    """Run a measurement campaign over the whole network.

    ``rng`` may be an integer root seed or a ``Generator`` (from which one
    root seed is drawn).  Each (day, BS) unit then runs on its own spawned
    seed stream, mapped over ``executor`` (serial by default) — the
    resulting table is bit-identical for any executor and unit order.

    Returns the table of all transport-layer sessions recorded at every BS
    during ``config.n_days`` days.
    """
    root_seed = coerce_root_seed(rng)
    peers = decile_peer_map(network)
    items = [
        (network.station(bs_id), day, config, peers[network.station(bs_id).decile],
         root_seed)
        for day, bs_id in campaign_units(network, config)
    ]
    pieces = (executor or SerialExecutor()).map(_simulate_unit, items)
    return SessionTable.concatenate(list(pieces))


def _serve_at_bs(
    bs_id: int,
    day: int,
    start_minute: np.ndarray,
    service_idx: np.ndarray,
    volumes: np.ndarray,
    durations: np.ndarray,
    dwells: np.ndarray,
    rng: np.random.Generator,
    config: SimulationConfig,
    peers: np.ndarray,
    chain_depth: int,
) -> SessionTable:
    """Serve sessions at one BS, recursing on handover continuations."""
    betas = _BETAS[service_idx]
    observed_vol, observed_dur, truncated = truncate_sessions(
        volumes, durations, dwells, betas
    )
    observed_vol = np.clip(observed_vol, MIN_OBSERVED_VOLUME_MB, None)
    observed_dur = np.clip(observed_dur, 1.0, None)

    table = SessionTable(
        service_idx=service_idx,
        bs_id=np.full(service_idx.size, bs_id, dtype=np.int32),
        day=np.full(service_idx.size, day, dtype=np.int16),
        start_minute=start_minute,
        duration_s=observed_dur,
        volume_mb=observed_vol,
        truncated=truncated,
    )

    if (
        not config.handover_continuation
        or chain_depth >= config.max_handover_chain
        or not np.any(truncated)
    ):
        return table

    # The cut remainder continues as a brand-new transport session at a
    # neighbouring BS (Section 3.2).  Continuations that would start past
    # midnight are dropped — the probe would attribute them to the next day,
    # which is irrelevant at our aggregation granularity.
    rem_volume = volumes[truncated] - observed_vol[truncated]
    rem_duration = durations[truncated] - observed_dur[truncated]
    cont_minute = start_minute[truncated] + (dwells[truncated] // 60).astype(int)
    viable = (rem_volume > MIN_OBSERVED_VOLUME_MB) & (rem_duration > 1.0) & (
        cont_minute < 1440
    )
    if not np.any(viable):
        return table

    n_cont = int(viable.sum())
    neighbour = peers[rng.integers(0, peers.size, size=n_cont)]
    # Each continuation lands in a single neighbour cell; serve each group.
    cont_tables = [table]
    cont_service = service_idx[truncated][viable]
    cont_vol = rem_volume[viable]
    cont_dur = rem_duration[viable]
    cont_start = cont_minute[viable]
    cont_dwell = config.mobility.sample_dwell_s(rng, n_cont)
    for nb in np.unique(neighbour):
        mask = neighbour == nb
        cont_tables.append(
            _serve_at_bs(
                int(nb),
                day,
                cont_start[mask],
                cont_service[mask],
                cont_vol[mask],
                cont_dur[mask],
                cont_dwell[mask],
                rng,
                config,
                peers,
                chain_depth + 1,
            )
        )
    return SessionTable.concatenate(cont_tables)
