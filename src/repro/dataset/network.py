"""Synthetic radio access network: base stations, deciles, regions, RATs.

The paper's measurements cover 282,000 BSs; shapes of all session-level
statistics are per-BS, so a scaled-down population preserves every result.
Each synthetic BS carries the attributes the paper analyses:

* a **load decile** (Section 4.1 / Fig 3): BSs are split into ten classes of
  growing served traffic; the daytime mean arrival rate grows exponentially
  from 1.21 sessions/minute (first decile) to 71 (last decile), and the
  nighttime Pareto scale grows at a similar rate (Section 5.1);
* an **urbanization level** (dense urban / semi-urban / rural) and possibly
  one of the 5 largest **cities** (Section 4.4);
* a **RAT** (4G eNodeB or 5G NSA gNodeB, Section 3).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

#: Daytime Gaussian mean arrival rate (sessions/minute) of the first and
#: last BS load deciles, as reported in Section 5.1.
FIRST_DECILE_PEAK_RATE = 1.21
LAST_DECILE_PEAK_RATE = 71.0

#: Fixed shape of the nighttime Pareto arrival distribution (Section 5.1).
PARETO_SHAPE = 1.765

#: Ratio sigma/mu of the daytime Gaussian (Section 5.1: sigma ~ mu/10).
PEAK_SIGMA_RATIO = 0.1

#: Ratio night Pareto scale / daytime mu; the paper reports that the scale
#: grows across deciles "exponentially with akin rate" to mu.
NIGHT_SCALE_RATIO = 1.0 / 8.0

#: The five largest metropolitan areas used for the city-level comparison.
CITIES = ("Paris", "Marseille", "Lyon", "Toulouse", "Nice")


class Region(enum.Enum):
    """Urbanization level of the area served by a BS (Section 4.4)."""

    URBAN = "urban"
    SEMI_URBAN = "semi-urban"
    RURAL = "rural"


class RAT(enum.Enum):
    """Radio access technology of a BS (4G eNodeB or 5G NSA gNodeB)."""

    LTE = "4G"
    NR = "5G"


@dataclass(frozen=True)
class BaseStation:
    """One cell of the synthetic RAN.

    Attributes
    ----------
    bs_id:
        Dense integer identifier, usable as an array index.
    decile:
        Load decile in ``0..9`` (0 = least loaded tenth of the network).
    region:
        Urbanization level of the served area.
    city:
        One of :data:`CITIES` for urban BSs inside a metro area, else None.
    rat:
        Radio access technology.
    peak_rate:
        Mean ``mu_c`` of the daytime Gaussian arrival rate (sessions/min).
    night_scale:
        Scale ``s_c`` of the nighttime Pareto arrival rate.
    """

    bs_id: int
    decile: int
    region: Region
    city: str | None
    rat: RAT
    peak_rate: float
    night_scale: float

    @property
    def peak_sigma(self) -> float:
        """Daytime Gaussian sigma, tied to the mean as ``mu/10``."""
        return self.peak_rate * PEAK_SIGMA_RATIO


def decile_peak_rate(decile: int) -> float:
    """Daytime mean arrival rate of a decile (geometric interpolation).

    Decile 0 maps to 1.21 sessions/min and decile 9 to 71, the two anchors
    quoted in Section 5.1; intermediate deciles grow exponentially, matching
    the paper's observation of exponential growth across classes.
    """
    if not 0 <= decile <= 9:
        raise ValueError(f"decile must be in 0..9, got {decile}")
    ratio = LAST_DECILE_PEAK_RATE / FIRST_DECILE_PEAK_RATE
    return FIRST_DECILE_PEAK_RATE * ratio ** (decile / 9.0)


@dataclass(frozen=True)
class NetworkConfig:
    """Parameters of the synthetic BS population.

    ``n_bs`` defaults to a few hundred stations: all statistics in the paper
    are per-BS distributions, so the population size only controls sample
    count, not shape.
    """

    n_bs: int = 200
    urban_fraction: float = 0.30
    semi_urban_fraction: float = 0.40
    nr_fraction: float = 0.20
    rate_jitter_dex: float = 0.05

    def __post_init__(self) -> None:
        if self.n_bs < 10:
            raise ValueError("need at least 10 BSs (one per decile)")
        if not 0 <= self.urban_fraction <= 1 or not 0 <= self.semi_urban_fraction <= 1:
            raise ValueError("region fractions must be in [0, 1]")
        if self.urban_fraction + self.semi_urban_fraction > 1:
            raise ValueError("urban + semi-urban fractions exceed 1")
        if not 0 <= self.nr_fraction <= 1:
            raise ValueError("nr_fraction must be in [0, 1]")


class Network:
    """The synthetic BS population.

    Construction is deterministic given the RNG: deciles are assigned in
    equal tenths, regions and RATs are drawn with the configured fractions,
    and urban BSs are distributed round-robin over the five cities.
    """

    def __init__(self, config: NetworkConfig, rng: np.random.Generator):
        self.config = config
        self.stations: list[BaseStation] = []

        n = config.n_bs
        deciles = np.repeat(np.arange(10), int(np.ceil(n / 10)))[:n]
        regions = rng.choice(
            [Region.URBAN, Region.SEMI_URBAN, Region.RURAL],
            size=n,
            p=[
                config.urban_fraction,
                config.semi_urban_fraction,
                1 - config.urban_fraction - config.semi_urban_fraction,
            ],
        )
        rats = rng.choice(
            [RAT.NR, RAT.LTE],
            size=n,
            p=[config.nr_fraction, 1 - config.nr_fraction],
        )
        jitter = 10.0 ** rng.normal(0.0, config.rate_jitter_dex, size=n)

        city_counter = 0
        for bs_id in range(n):
            decile = int(deciles[bs_id])
            region = regions[bs_id]
            if region is Region.URBAN:
                city: str | None = CITIES[city_counter % len(CITIES)]
                city_counter += 1
            else:
                city = None
            peak_rate = decile_peak_rate(decile) * float(jitter[bs_id])
            self.stations.append(
                BaseStation(
                    bs_id=bs_id,
                    decile=decile,
                    region=region,
                    city=city,
                    rat=rats[bs_id],
                    peak_rate=peak_rate,
                    night_scale=peak_rate * NIGHT_SCALE_RATIO,
                )
            )

    def __len__(self) -> int:
        return len(self.stations)

    def __iter__(self):
        return iter(self.stations)

    def station(self, bs_id: int) -> BaseStation:
        """Return the BS with the given dense identifier."""
        return self.stations[bs_id]

    def bs_ids_in_decile(self, decile: int) -> list[int]:
        """Identifiers of all BSs belonging to one load decile."""
        return [s.bs_id for s in self.stations if s.decile == decile]

    def bs_ids_in_region(self, region: Region) -> list[int]:
        """Identifiers of all BSs in one urbanization level."""
        return [s.bs_id for s in self.stations if s.region == region]

    def bs_ids_in_city(self, city: str) -> list[int]:
        """Identifiers of all BSs in one metropolitan area."""
        if city not in CITIES:
            raise ValueError(f"unknown city {city!r}")
        return [s.bs_id for s in self.stations if s.city == city]

    def bs_ids_with_rat(self, rat: RAT) -> list[int]:
        """Identifiers of all BSs using one radio access technology."""
        return [s.bs_id for s in self.stations if s.rat == rat]

    def peak_rates(self) -> np.ndarray:
        """Array of daytime mean arrival rates, indexed by ``bs_id``."""
        return np.array([s.peak_rate for s in self.stations])
