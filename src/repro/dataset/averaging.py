"""Statistics averaging across BSs and days — Eqs (1) and (2) of the paper.

Section 3.3: per-(c, t) statistics are merged into behaviour averaged over
any subset of BSs ``C' ⊆ C`` and days ``T' ⊆ T`` by weighting each
datapoint with the daily session count ``w_s^{c,t}``:

* duration–volume pairs: Eq (1), a weighted average per duration bin;
* traffic volume PDFs: Eq (2), a finite mixture of the per-(c, t) PDFs.

These explicit implementations operate on :class:`ServiceDayStats` lists and
are the faithful counterpart of the pooled fast paths in
:mod:`repro.dataset.aggregation` (the two coincide when every session of a
bin is weighted by its own (c, t) count — a property the tests verify).
"""

from __future__ import annotations

import numpy as np

from ..analysis.histogram import LogHistogram
from .aggregation import (
    N_DURATION_BINS,
    AggregationError,
    DurationVolumeCurve,
    ServiceDayStats,
)


def filter_stats(
    stats: list[ServiceDayStats],
    service: str | None = None,
    bs_ids=None,
    days=None,
) -> list[ServiceDayStats]:
    """Select the per-(s, c, t) entries matching the given criteria."""
    selected = stats
    if service is not None:
        selected = [s for s in selected if s.service == service]
    if bs_ids is not None:
        wanted_bs = set(bs_ids)
        selected = [s for s in selected if s.bs_id in wanted_bs]
    if days is not None:
        wanted_days = set(days)
        selected = [s for s in selected if s.day in wanted_days]
    return selected


def average_volume_pdf(stats: list[ServiceDayStats]) -> LogHistogram:
    """Eq (2): session-count-weighted mixture of per-(c, t) volume PDFs."""
    if not stats:
        raise AggregationError("no statistics to average")
    histograms = [s.volume_pdf() for s in stats]
    weights = [float(s.n_sessions) for s in stats]
    return LogHistogram.weighted_average(histograms, weights)


def average_duration_volume(stats: list[ServiceDayStats]) -> DurationVolumeCurve:
    """Eq (1): session-count-weighted average of per-(c, t) v(d) pairs.

    For each duration bin, the mean volumes ``v_s^{c,t}(d)`` of the entries
    that observed that bin are averaged with weights ``w_s^{c,t}``.
    """
    if not stats:
        raise AggregationError("no statistics to average")
    weighted_sum = np.zeros(N_DURATION_BINS)
    weight_total = np.zeros(N_DURATION_BINS)
    counts_total = np.zeros(N_DURATION_BINS)
    for entry in stats:
        curve = entry.duration_volume()
        observed = curve.counts > 0
        weight = float(entry.n_sessions)
        weighted_sum[observed] += weight * curve.mean_volume_mb[observed]
        weight_total[observed] += weight
        counts_total += curve.counts
    means = np.zeros(N_DURATION_BINS)
    mask = weight_total > 0
    means[mask] = weighted_sum[mask] / weight_total[mask]
    return DurationVolumeCurve(means, counts_total)


def total_sessions(stats: list[ServiceDayStats]) -> int:
    """Sum of the daily session counts ``w_s^{c,t}`` of the entries."""
    return sum(s.n_sessions for s in stats)
