"""Measurement substrate: synthetic campaign + Section 3 aggregation."""

from .aggregation import (
    DurationVolumeCurve,
    ServiceDayStats,
    aggregate_per_bs_day,
    minute_arrival_counts,
    pooled_duration_volume,
    pooled_volume_pdf,
    service_shares,
    share_variability,
)
from .appsessions import (
    DEFAULT_APP_PROFILES,
    AppSessionProfile,
    AppSessionTable,
    expand_app_sessions,
)
from .averaging import average_duration_volume, average_volume_pdf, filter_stats
from .mobility import MobilityModel, truncate_sessions
from .network import RAT, BaseStation, Network, NetworkConfig, Region
from .profiles import PROFILES, GroundTruthProfile, get_profile
from .records import SERVICE_NAMES, SessionRecord, SessionTable
from .services import SERVICES, ServiceInfo, get_service
from .simulator import SimulationConfig, simulate
from .streaming import CampaignAccumulator, simulate_aggregated

__all__ = [
    "DEFAULT_APP_PROFILES",
    "PROFILES",
    "RAT",
    "SERVICES",
    "SERVICE_NAMES",
    "AppSessionProfile",
    "AppSessionTable",
    "BaseStation",
    "CampaignAccumulator",
    "DurationVolumeCurve",
    "GroundTruthProfile",
    "MobilityModel",
    "Network",
    "NetworkConfig",
    "Region",
    "ServiceDayStats",
    "ServiceInfo",
    "SessionRecord",
    "SessionTable",
    "SimulationConfig",
    "aggregate_per_bs_day",
    "average_duration_volume",
    "expand_app_sessions",
    "average_volume_pdf",
    "filter_stats",
    "get_profile",
    "get_service",
    "minute_arrival_counts",
    "pooled_duration_volume",
    "pooled_volume_pdf",
    "service_shares",
    "share_variability",
    "simulate",
    "simulate_aggregated",
    "truncate_sessions",
]
