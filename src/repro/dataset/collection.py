"""Emulation of the two-probe measurement platform of Section 3.1.

The operator's dataset is produced by two passive systems:

* **gateway probes** at the SGi interface of the PGW observe all IP packets
  and reconstruct transport-layer sessions: a 5-tuple keyed sequence of
  packets, opened by the first packet (TCP handshake / first UDP datagram),
  closed by FIN/RST or by a service-specific idle timeout;
* **RAN probes** at the S1-MME interfaces observe the signalling of both
  eNodeBs and gNodeBs and know, at any time, which BS serves each UE.

Crossing the two streams geo-references every (fraction of a) session to the
correct BS: a session spanning a handover is split into one transport
session per visited BS (Section 3.2).  This module implements that pipeline
over explicit packet/attachment event streams; it is the event-level,
fine-grained counterpart of the vectorized :mod:`repro.dataset.simulator`
and is exercised by the unit tests and the probe example.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .records import SERVICE_INDEX, SessionRecord


class Protocol(enum.Enum):
    """Transport protocol of a flow."""

    TCP = "tcp"
    UDP = "udp"


#: Default idle timeout (seconds) per protocol when neither a per-service
#: override nor a behaviour-class default applies.
DEFAULT_TIMEOUT_S = {Protocol.TCP: 300.0, Protocol.UDP: 120.0}

#: Behaviour-class idle timeouts (Section 3.2: "this timeout depends on the
#: application that the traffic classification routines associate to the
#: flow").  Streaming players pause and rebuffer, so their flows survive
#: longer silences than chatty message exchanges.
BEHAVIOUR_TIMEOUT_S = {
    "streaming": 600.0,
    "messaging": 120.0,
    "outlier": 300.0,
}


class CollectionError(ValueError):
    """Raised on malformed probe input."""


@dataclass(frozen=True)
class FiveTuple:
    """The 5-tuple uniquely identifying a transport-layer session."""

    protocol: Protocol
    src_ip: str
    dst_ip: str
    src_port: int
    dst_port: int

    def __post_init__(self) -> None:
        for port in (self.src_port, self.dst_port):
            if not 0 <= port <= 65535:
                raise CollectionError(f"invalid port {port}")


@dataclass(frozen=True)
class Packet:
    """One IP packet observed at the SGi interface.

    ``fin`` marks a TCP packet with the FIN or RST bit set, which terminates
    the session shortly after (Section 3.2).
    """

    timestamp_s: float
    five_tuple: FiveTuple
    ue_id: int
    size_bytes: int
    fin: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise CollectionError("packet size must be positive")


@dataclass(frozen=True)
class GatewaySession:
    """A transport session reconstructed by the gateway probe."""

    five_tuple: FiveTuple
    ue_id: int
    service: str
    start_s: float
    end_s: float
    volume_bytes: int

    @property
    def duration_s(self) -> float:
        """Session duration in seconds (at least 1 s, as sub-second sessions
        are rounded up by the probe)."""
        return max(self.end_s - self.start_s, 1.0)


class GatewayProbe:
    """Reconstructs transport sessions from a packet stream.

    Parameters
    ----------
    classifier:
        Maps a :class:`FiveTuple` to a service name, standing in for the
        operator's proprietary DPI engine.
    timeouts_s:
        Optional per-service idle timeouts, overriding the per-protocol
        defaults (Section 3.2: "expiration timeouts that are
        service-specific are also employed").
    """

    def __init__(self, classifier, timeouts_s: dict[str, float] | None = None):
        self._classifier = classifier
        self._timeouts = dict(timeouts_s or {})

    def _timeout_for(self, service: str, protocol: Protocol) -> float:
        if service in self._timeouts:
            return self._timeouts[service]
        from .services import UnknownServiceError, get_service

        try:
            behaviour = get_service(service).behaviour.value
        except UnknownServiceError:
            return DEFAULT_TIMEOUT_S[protocol]
        return BEHAVIOUR_TIMEOUT_S.get(behaviour, DEFAULT_TIMEOUT_S[protocol])

    def reconstruct(self, packets: list[Packet]) -> list[GatewaySession]:
        """Group a time-ordered packet stream into transport sessions."""
        if any(
            packets[i].timestamp_s > packets[i + 1].timestamp_s
            for i in range(len(packets) - 1)
        ):
            raise CollectionError("packet stream must be time-ordered")

        open_sessions: dict[FiveTuple, dict] = {}
        finished: list[GatewaySession] = []

        def close(state: dict) -> None:
            finished.append(
                GatewaySession(
                    five_tuple=state["key"],
                    ue_id=state["ue_id"],
                    service=state["service"],
                    start_s=state["start"],
                    end_s=state["last"],
                    volume_bytes=state["bytes"],
                )
            )

        for packet in packets:
            key = packet.five_tuple
            state = open_sessions.get(key)
            if state is not None:
                timeout = self._timeout_for(state["service"], key.protocol)
                if packet.timestamp_s - state["last"] > timeout:
                    close(state)
                    state = None
                    del open_sessions[key]
            if state is None:
                service = self._classifier(key)
                if service not in SERVICE_INDEX:
                    raise CollectionError(f"classifier returned unknown {service!r}")
                state = {
                    "key": key,
                    "ue_id": packet.ue_id,
                    "service": service,
                    "start": packet.timestamp_s,
                    "last": packet.timestamp_s,
                    "bytes": 0,
                }
                open_sessions[key] = state
            state["last"] = packet.timestamp_s
            state["bytes"] += packet.size_bytes
            if packet.fin and key.protocol is Protocol.TCP:
                close(state)
                del open_sessions[key]

        for state in open_sessions.values():
            close(state)
        finished.sort(key=lambda s: s.start_s)
        return finished


@dataclass(frozen=True)
class AttachmentEvent:
    """A signalling event recorded by the RAN probe: UE attaches to a BS."""

    timestamp_s: float
    ue_id: int
    bs_id: int


class RanProbe:
    """Tracks UE-to-BS attachment from S1-MME signalling events."""

    def __init__(self, events: list[AttachmentEvent]):
        self._by_ue: dict[int, list[AttachmentEvent]] = {}
        for event in sorted(events, key=lambda e: e.timestamp_s):
            self._by_ue.setdefault(event.ue_id, []).append(event)

    def serving_bs(self, ue_id: int, timestamp_s: float) -> int:
        """BS serving a UE at a given time (last attachment before it)."""
        events = self._by_ue.get(ue_id)
        if not events or events[0].timestamp_s > timestamp_s:
            raise CollectionError(
                f"UE {ue_id} has no attachment at or before t={timestamp_s}"
            )
        current = events[0]
        for event in events[1:]:
            if event.timestamp_s > timestamp_s:
                break
            current = event
        return current.bs_id

    def attachment_intervals(
        self, ue_id: int, start_s: float, end_s: float
    ) -> list[tuple[float, float, int]]:
        """Chop ``[start, end]`` into per-BS intervals for one UE."""
        if end_s < start_s:
            raise CollectionError("interval end before start")
        events = self._by_ue.get(ue_id)
        if not events or events[0].timestamp_s > start_s:
            raise CollectionError(
                f"UE {ue_id} has no attachment covering t={start_s}"
            )
        intervals: list[tuple[float, float, int]] = []
        current_bs = None
        current_start = start_s
        for event in events:
            if event.timestamp_s <= start_s:
                current_bs = event.bs_id
                continue
            if event.timestamp_s >= end_s:
                break
            if event.bs_id != current_bs:
                intervals.append((current_start, event.timestamp_s, current_bs))
                current_start = event.timestamp_s
                current_bs = event.bs_id
        intervals.append((current_start, end_s, current_bs))
        return intervals


def correlate(
    gateway_sessions: list[GatewaySession],
    ran_probe: RanProbe,
    seconds_per_day: float = 86400.0,
) -> list[SessionRecord]:
    """Cross gateway sessions with RAN signalling — the Section 3.1 merge.

    Each gateway session is split at every handover into one
    :class:`SessionRecord` per visited BS; the session volume is divided
    proportionally to the time spent in each cell (the probe has no
    finer-grained accounting), and parts beyond the first are flagged as
    truncated, matching the "newly established session" semantics of
    Section 3.2.
    """
    records: list[SessionRecord] = []
    for session in gateway_sessions:
        intervals = ran_probe.attachment_intervals(
            session.ue_id, session.start_s, session.end_s
        )
        total = max(session.end_s - session.start_s, 1.0)
        for part_index, (begin, end, bs_id) in enumerate(intervals):
            span = max(end - begin, 1.0) if len(intervals) > 1 else total
            fraction = min(span / total, 1.0)
            volume_mb = session.volume_bytes * fraction / 1e6
            if volume_mb <= 0:
                continue
            day = int(begin // seconds_per_day)
            minute = int((begin % seconds_per_day) // 60)
            records.append(
                SessionRecord(
                    service=session.service,
                    bs_id=bs_id,
                    day=day,
                    start_minute=minute,
                    duration_s=span,
                    volume_mb=volume_mb,
                    truncated=len(intervals) > 1 and part_index < len(intervals) - 1,
                )
            )
    return records
