"""Command-line front end shared by ``repro-traffic lint`` and ``-m``.

Exit codes follow CI conventions: ``0`` clean, ``1`` findings (or stale
baseline entries), ``2`` usage or environment errors.  The repository
root is auto-detected by walking upward from the working directory to
the nearest ``pyproject.toml``, so the command works from any subdir.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .baseline import (
    DEFAULT_BASELINE_PATH,
    Baseline,
    BaselineEntry,
    BaselineError,
)
from .driver import lint_paths
from .report import (
    REPORT_SCHEMA_PATH,
    render_human,
    render_json,
    render_schema,
)
from .rules import all_rules


def find_repo_root(start: str | Path | None = None) -> Path:
    """Nearest ancestor directory holding a ``pyproject.toml``.

    Falls back to the start directory itself when no marker is found
    (linting an exported subtree still works, scoped rules simply see
    relative paths).
    """
    current = Path(start or Path.cwd()).resolve()
    for candidate in (current, *current.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return current


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags (shared with the ``repro-traffic`` CLI)."""
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to lint (default: src tools benchmarks)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repository root (default: nearest pyproject.toml upward)",
    )
    parser.add_argument(
        "--format", choices=("human", "json"), default="human",
        help="report format (json is the CI artifact form)",
    )
    parser.add_argument(
        "--output", default=None, metavar="FILE",
        help="also write the report in the chosen format to FILE",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the file fan-out (default 1 = serial)",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_PATH})",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore the baseline (report grandfathered findings too)",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline from this run's findings and exit 0",
    )
    parser.add_argument(
        "--update-baseline", action="store_true",
        help=(
            "regenerate the baseline from this run's findings, keeping "
            "the justification of every surviving entry, and exit 0"
        ),
    )
    parser.add_argument(
        "--fail-on", choices=("error", "warning"), default="warning",
        help="minimum severity that fails the run (default: any finding)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--write-report-schema", action="store_true",
        help=f"regenerate {REPORT_SCHEMA_PATH} and exit",
    )


def _list_rules() -> int:
    for rule in all_rules():
        print(f"{rule.id}  [{rule.severity:7s}]  {rule.title}")
        print(f"       {rule.rationale}")
    return 0


def run(args: argparse.Namespace) -> int:
    """Execute one lint invocation from parsed arguments."""
    if args.list_rules:
        return _list_rules()
    root = find_repo_root(args.root)
    if args.write_report_schema:
        path = root / REPORT_SCHEMA_PATH
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(render_schema(), encoding="utf-8")
        print(f"wrote {path}")
        return 0
    baseline_path = Path(
        args.baseline if args.baseline else root / DEFAULT_BASELINE_PATH
    )
    try:
        baseline = None if args.no_baseline else Baseline.load(baseline_path)
    except BaselineError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    try:
        result = lint_paths(
            root,
            paths=args.paths or None,
            jobs=args.jobs,
            baseline=baseline,
        )
    except FileNotFoundError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    if args.update_baseline:
        try:
            previous = Baseline.load(baseline_path)
        except BaselineError:
            previous = Baseline()
        justifications = {
            (e.rule, e.path, e.symbol): e.justification
            for e in previous.entries
        }
        updated = Baseline.from_findings(result.unbaselined_findings)
        updated.entries = [
            BaselineEntry(
                rule=e.rule,
                path=e.path,
                symbol=e.symbol,
                justification=justifications.get(
                    (e.rule, e.path, e.symbol), e.justification
                ),
            )
            for e in updated.entries
        ]
        updated.save(baseline_path)
        preserved = sum(
            1
            for e in updated.entries
            if (e.rule, e.path, e.symbol) in justifications
        )
        print(
            f"baseline updated: {baseline_path} "
            f"({len(updated.entries)} entries, {preserved} "
            "justifications preserved) — justify or fix every new entry "
            "before committing"
        )
        return 0
    if args.write_baseline:
        Baseline.from_findings(result.unbaselined_findings).save(
            baseline_path
        )
        print(
            f"baseline written: {baseline_path} "
            f"({len(result.unbaselined_findings)} findings) — justify or "
            "fix every entry before committing"
        )
        return 0
    text = (
        render_json(result)
        if args.format == "json"
        else render_human(result)
    )
    print(text)
    if args.output:
        Path(args.output).write_text(text + "\n", encoding="utf-8")
    return 1 if result.failed(args.fail_on) else 0


def main(argv: list[str] | None = None) -> int:
    """Standalone entry point (``python -m repro.lint``)."""
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker: per-file determinism (D), "
            "parallel safety (P) and structural contracts (S), plus "
            "whole-program RNG provenance (W), serve-stack thread "
            "safety (T) and cross-artifact drift (C) of the "
            "session-level traffic reproduction"
        ),
    )
    add_lint_arguments(parser)
    return run(parser.parse_args(argv))
