"""D-series rules: determinism of the generative engine.

The paper's models (arrivals as Gaussian + Pareto mixtures, log-normal
volume mixtures, Eq (3)–(5)) are reproduced under a hard guarantee:
equal root seeds produce byte-identical campaigns regardless of worker
count, chunking or host platform.  Every rule in this pack encodes one
way that guarantee has broken — or nearly broken — in practice:
module-level RNG state, unseeded generators, wall-clock reads, default
integer dtypes that differ across platforms, gzip headers embedding
mtimes, and shared-RNG draws whose results depend on container
iteration order.
"""

from __future__ import annotations

import ast
from typing import Iterable, Iterator

from .rules import FileContext, Finding, Rule, register

#: Layers that must stay free of wall clocks and ambient randomness.
DETERMINISTIC_DIRS = (
    "src/repro/core",
    "src/repro/pipeline",
    "src/repro/io",
    "src/repro/campaign",
)

#: Generator/simulator hot paths where array dtypes must be explicit.
HOT_PATH_FILES = (
    "src/repro/core/generator.py",
    "src/repro/dataset/simulator.py",
    "src/repro/dataset/streaming.py",
    "src/repro/dataset/appsessions.py",
)

#: Legacy ``numpy.random`` module-level draw/state functions.  Calling
#: any of them consumes or mutates the hidden global RandomState.
LEGACY_NP_RANDOM = frozenset(
    {
        "seed", "get_state", "set_state", "random", "random_sample",
        "ranf", "sample", "rand", "randn", "randint", "random_integers",
        "choice", "bytes", "shuffle", "permutation", "beta", "binomial",
        "chisquare", "dirichlet", "exponential", "f", "gamma", "geometric",
        "gumbel", "hypergeometric", "laplace", "logistic", "lognormal",
        "logseries", "multinomial", "multivariate_normal",
        "negative_binomial", "noncentral_chisquare", "noncentral_f",
        "normal", "pareto", "poisson", "power", "rayleigh",
        "standard_cauchy", "standard_exponential", "standard_gamma",
        "standard_normal", "standard_t", "triangular", "uniform",
        "vonmises", "wald", "weibull", "zipf",
    }
)

#: Wall-clock reads forbidden in the deterministic layers.  The
#: monotonic timers (``perf_counter``, ``process_time``, ``monotonic``)
#: stay allowed: telemetry measures durations with them, strictly
#: out-of-band.
WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


@register
class ModuleLevelNumpyRandom(Rule):
    """D101 — calls into the hidden ``numpy.random`` global RandomState."""

    id = "D101"
    title = "module-level numpy.random state"
    severity = "error"
    rationale = (
        "numpy.random.seed()/rand()/… share one hidden global RandomState: "
        "draws depend on everything drawn before them, across modules and "
        "worker processes.  Every stream must come from a spawned "
        "SeedSequence (repro.pipeline.context.stream_rng)."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag any ``numpy.random.<legacy>`` call expression."""
        for call in ctx.calls():
            name = ctx.qualified(call.func)
            if name is None or not name.startswith("numpy.random."):
                continue
            tail = name[len("numpy.random."):]
            if tail in LEGACY_NP_RANDOM:
                yield self.finding(
                    ctx, call,
                    f"call to numpy.random.{tail} uses the global "
                    "RandomState; draw from a seed-stream Generator instead",
                )


@register
class UnseededDefaultRng(Rule):
    """D102 — ``default_rng()`` with no seed argument."""

    id = "D102"
    title = "unseeded default_rng()"
    severity = "error"
    rationale = (
        "default_rng() with no argument seeds from OS entropy, so two runs "
        "of the same command diverge.  Every Generator must be constructed "
        "from the run's root seed via a named seed stream."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag zero-argument ``numpy.random.default_rng`` calls."""
        for call in ctx.calls():
            if ctx.qualified(call.func) != "numpy.random.default_rng":
                continue
            if not call.args and not call.keywords:
                yield self.finding(
                    ctx, call,
                    "default_rng() without a seed draws OS entropy; pass a "
                    "SeedSequence from the run's seed streams",
                )


@register
class WallClockInDeterministicLayer(Rule):
    """D103 — wall-clock reads inside core/pipeline/io."""

    id = "D103"
    title = "wall clock in deterministic layer"
    severity = "error"
    rationale = (
        "time.time()/datetime.now() make outputs depend on when a run "
        "happens (PR 3's gzip-mtime bug entered this way).  The "
        "deterministic layers may measure durations with the monotonic "
        "timers, but must never read calendar time."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the deterministic layers are in scope."""
        return ctx.in_dirs(*DETERMINISTIC_DIRS)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag calendar-time calls (monotonic timers stay allowed)."""
        for call in ctx.calls():
            name = ctx.qualified(call.func)
            if name in WALL_CLOCK_CALLS:
                yield self.finding(
                    ctx, call,
                    f"{name}() reads the wall clock inside a deterministic "
                    "layer; outputs must not depend on run time",
                )


@register
class StdlibRandomImport(Rule):
    """D104 — the stdlib ``random`` module in core/pipeline/io."""

    id = "D104"
    title = "stdlib random in deterministic layer"
    severity = "error"
    rationale = (
        "The stdlib random module is one more hidden global stream, seeded "
        "from OS entropy at interpreter start.  All randomness flows "
        "through numpy Generators derived from the run seed."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the deterministic layers are in scope."""
        return ctx.in_dirs(*DETERMINISTIC_DIRS)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag ``import random`` / ``from random import …``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith(
                        "random."
                    ):
                        yield self.finding(
                            ctx, node,
                            "stdlib random imported in a deterministic "
                            "layer; use seed-stream numpy Generators",
                        )
            elif isinstance(node, ast.ImportFrom):
                if not node.level and node.module == "random":
                    yield self.finding(
                        ctx, node,
                        "stdlib random imported in a deterministic layer; "
                        "use seed-stream numpy Generators",
                    )


@register
class ImplicitDtypeInHotPath(Rule):
    """D105 — dtype-unspecified ``np.full``/``np.arange`` in hot paths."""

    id = "D105"
    title = "implicit array dtype in generator hot path"
    severity = "warning"
    rationale = (
        "np.full and np.arange infer their dtype from the fill/stop "
        "values: a Python int becomes the platform C long (int32 on "
        "Windows, int64 elsewhere), so campaign bytes differ across "
        "platforms — exactly the generate_bs_day bug PR 3 fixed.  Hot-path "
        "constructions must pin dtype= explicitly."
    )

    _CONSTRUCTORS = ("numpy.full", "numpy.arange")

    def applies_to(self, ctx: FileContext) -> bool:
        """Only the generator/simulator hot-path modules are in scope."""
        return ctx.in_dirs(*HOT_PATH_FILES)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag value-dtyped constructors missing an explicit dtype."""
        for call in ctx.calls():
            name = ctx.qualified(call.func)
            if name not in self._CONSTRUCTORS:
                continue
            if ctx.keyword(call, "dtype") is None:
                yield self.finding(
                    ctx, call,
                    f"{name.replace('numpy', 'np')} without dtype= infers a "
                    "platform-dependent dtype in a generator hot path",
                )


def _assigned_names(stmts: Iterable[ast.stmt]) -> set[str]:
    """Names bound anywhere inside the given statements."""
    bound: set[str] = set()
    for stmt in stmts:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
    return bound


def _rng_args(call: ast.Call) -> Iterator[str]:
    """Names of rng-looking arguments of one call."""
    values = list(call.args) + [kw.value for kw in call.keywords]
    for value in values:
        if isinstance(value, ast.Name) and rng_named(value.id):
            yield value.id


def rng_named(name: str) -> bool:
    """The name heuristic D106 (and the W-series) treat as a generator."""
    return name == "rng" or name.endswith("_rng")


def is_view_loop(iter_expr: ast.expr) -> bool:
    """Whether a loop iterates a dict view (possibly wrapped).

    Shared with the whole-program W403 rule, which generalizes D106
    across call boundaries.
    """
    expr = iter_expr
    # Unwrap enumerate()/sorted()/list()/tuple() one level at a time.
    while (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Name)
        and expr.func.id in ("enumerate", "sorted", "list", "tuple")
        and expr.args
    ):
        expr = expr.args[0]
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in ("items", "values", "keys")
    )


@register
class SharedRngInCollectionLoop(Rule):
    """D106 — one shared RNG consumed while looping a container view."""

    id = "D106"
    title = "shared RNG drawn inside collection-order loop"
    severity = "error"
    rationale = (
        "Draws from one Generator inside a loop over dict views make "
        "every unit's samples depend on the container's iteration order "
        "and on all units before it — the exact coupling the per-(day, BS) "
        "seed streams removed.  Derive a fresh rng per unit from "
        "unit_seed()/stream_rng() instead."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the deterministic compute layers."""
        return ctx.in_dirs(
            "src/repro/core", "src/repro/dataset", "src/repro/pipeline"
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag rng args consumed inside ``for … in x.items()/…`` bodies."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            if not self._is_view_loop(node.iter):
                continue
            local = _assigned_names(node.body) | _assigned_names([node.target])
            for call in ast.walk(ast.Module(body=node.body, type_ignores=[])):
                if not isinstance(call, ast.Call):
                    continue
                for rng_name in _rng_args(call):
                    if rng_name not in local:
                        yield self.finding(
                            ctx, call,
                            f"shared generator {rng_name!r} consumed inside "
                            "a dict-view loop couples results to iteration "
                            "order; derive a per-unit seed stream",
                        )

    @staticmethod
    def _is_view_loop(iter_expr: ast.expr) -> bool:
        """Whether the loop iterates a dict view (possibly wrapped)."""
        return is_view_loop(iter_expr)


@register
class UnpinnedGzipMtime(Rule):
    """D107 — gzip writes without a pinned header mtime."""

    id = "D107"
    title = "gzip write without pinned mtime"
    severity = "error"
    rationale = (
        "gzip.open()/GzipFile default to embedding the current wall clock "
        "(and the output filename) in the stream header, so two exports "
        "of the same campaign differ byte-wise — the exact PR 3 trace bug. "
        "Write through gzip.GzipFile(..., mtime=0)."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library (tools/benchmarks may write throwaways)."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag literal write-mode gzip constructors lacking mtime=."""
        for call in ctx.calls():
            name = ctx.qualified(call.func)
            if name not in ("gzip.open", "gzip.GzipFile"):
                continue
            mode = self._literal_mode(ctx, call)
            if mode is None or "w" not in mode and "a" not in mode and "x" not in mode:
                continue
            if ctx.keyword(call, "mtime") is None:
                yield self.finding(
                    ctx, call,
                    f"{name} in write mode embeds the wall clock in the "
                    "gzip header; pass mtime=0 (gzip.GzipFile) for "
                    "byte-deterministic output",
                )

    @staticmethod
    def _literal_mode(ctx: FileContext, call: ast.Call) -> str | None:
        """The call's mode argument when given as a string literal."""
        mode = ctx.keyword(call, "mode")
        if mode is None and len(call.args) >= 2:
            mode = call.args[1]
        if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
            return mode.value
        return None
