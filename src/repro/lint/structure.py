"""S-series rules: structural contracts between subsystems.

Cross-cutting data contracts — the canonical
:class:`~repro.dataset.records.SessionTable` column schema, the
telemetry event shapes of ``schemas/telemetry-events.schema.json``, the
src/tests dependency direction — are easy to drift one call site at a
time.  These rules pin every literal occurrence to the single canonical
definition.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .rules import FileContext, Finding, Rule, register

#: Canonical SessionTable column dtypes (numpy attribute names).  Must
#: mirror the Columns section of repro.dataset.records.SessionTable —
#: a deliberate double entry: schema changes must touch both files, so
#: the lint run turns accidental drift into a review-time error.
SESSION_TABLE_DTYPES: dict[str, tuple[str, ...]] = {
    "service_idx": ("numpy.int16",),
    "bs_id": ("numpy.int32",),
    "day": ("numpy.int16",),
    "start_minute": ("numpy.int16",),
    "duration_s": ("numpy.float32",),
    "volume_mb": ("numpy.float32",),
    "truncated": ("bool", "numpy.bool_"),
}

#: Array constructors whose dtype keyword the S301 rule inspects.
_ARRAY_CONSTRUCTORS = frozenset(
    {
        "numpy.array", "numpy.asarray", "numpy.empty", "numpy.zeros",
        "numpy.ones", "numpy.full", "numpy.arange", "numpy.repeat",
    }
)

#: Canonical dtype *strings* per column, as they appear in the
#: ``ColumnSpec`` descriptors of ``repro.dataset.records.TABLE_SCHEMA``
#: (the arena-era schema source of truth).  Derived from
#: :data:`SESSION_TABLE_DTYPES` so the two spellings cannot drift apart.
_COLUMN_DTYPE_STRINGS: dict[str, str] = {
    name: allowed[0].removeprefix("numpy.").removesuffix("_")
    for name, allowed in SESSION_TABLE_DTYPES.items()
}


@register
class SessionTableDtypeDrift(Rule):
    """S301 — SessionTable column literals contradicting the schema."""

    id = "S301"
    title = "SessionTable column dtype drift"
    severity = "error"
    rationale = (
        "The SessionTable schema (int16/int32/float32 columns) is the "
        "interchange format of the whole stack and part of every cache "
        "key and golden baseline.  A call site constructing a column with "
        "a different explicit dtype either silently widens campaign "
        "artifacts or breaks byte-identity across code paths."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library package."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag explicit column dtypes that contradict the schema."""
        for call in ctx.calls():
            name = ctx.qualified(call.func)
            if name is None:
                continue
            if name.endswith("ColumnSpec"):
                yield from self._check_column_spec(ctx, call)
                continue
            if not name.endswith("SessionTable"):
                continue
            for kw in call.keywords:
                if kw.arg not in SESSION_TABLE_DTYPES:
                    continue
                dtype = self._explicit_dtype(ctx, kw.value)
                if dtype is None:
                    continue
                allowed = SESSION_TABLE_DTYPES[kw.arg]
                if dtype not in allowed:
                    yield self.finding(
                        ctx, kw.value,
                        f"column {kw.arg!r} constructed with dtype "
                        f"{dtype.replace('numpy', 'np')}, schema says "
                        f"{allowed[0].replace('numpy', 'np')}",
                    )

    def _check_column_spec(
        self, ctx: FileContext, call: ast.Call
    ) -> Iterable[Finding]:
        """Pin ``ColumnSpec(name, dtype)`` literals to the canonical schema.

        The schema descriptor tuple in ``repro.dataset.records`` is the
        arena-era source of truth; a descriptor renaming a column or
        changing its dtype string must also touch the lint mirror here, so
        accidental drift fails the lint run instead of silently changing
        artifact layouts.
        """
        args: dict[str, ast.expr] = {}
        for position, arg in enumerate(call.args[:2]):
            args[("name", "dtype")[position]] = arg
        for kw in call.keywords:
            if kw.arg in ("name", "dtype"):
                args[kw.arg] = kw.value
        name_node, dtype_node = args.get("name"), args.get("dtype")
        if not (
            isinstance(name_node, ast.Constant)
            and isinstance(name_node.value, str)
            and isinstance(dtype_node, ast.Constant)
            and isinstance(dtype_node.value, str)
        ):
            return
        column, dtype = name_node.value, dtype_node.value
        expected = _COLUMN_DTYPE_STRINGS.get(column)
        if expected is None:
            yield self.finding(
                ctx, name_node,
                f"ColumnSpec names unknown column {column!r}; the lint "
                "schema mirror knows "
                f"{sorted(_COLUMN_DTYPE_STRINGS)}",
            )
        elif dtype != expected:
            yield self.finding(
                ctx, dtype_node,
                f"ColumnSpec for {column!r} declares dtype {dtype!r}, "
                f"schema says {expected!r}",
            )

    @staticmethod
    def _explicit_dtype(ctx: FileContext, value: ast.expr) -> str | None:
        """Dtype literal of a column-constructor call, if present."""
        if not isinstance(value, ast.Call):
            return None
        name = ctx.qualified(value.func)
        if name not in _ARRAY_CONSTRUCTORS:
            return None
        dtype = None
        for kw in value.keywords:
            if kw.arg == "dtype":
                dtype = kw.value
        if dtype is None:
            return None
        return ctx.qualified(dtype)


@register
class TelemetryEventShape(Rule):
    """S302 — event dict literals outside the telemetry schema."""

    id = "S302"
    title = "telemetry event field outside schema"
    severity = "error"
    rationale = (
        "events.jsonl is an interchange format validated by "
        "repro.obs.schema and the checked-in JSON Schema; an emission "
        "site inventing a field (or misspelling one) ships streams that "
        "fail CI validation after the run already happened.  The lint "
        "rule moves that failure to review time."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library package."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Check literal keys of ``…sink.write({...})`` emissions."""
        from ..obs.schema import EVENT_FIELDS

        for call in ctx.calls():
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr == "write"
                and self._sinkish(call.func.value)
            ):
                continue
            if len(call.args) != 1 or not isinstance(call.args[0], ast.Dict):
                continue
            event = call.args[0]
            keys: dict[str, ast.expr] = {}
            has_unpack = False
            for key, value in zip(event.keys, event.values):
                if key is None:
                    has_unpack = True
                elif isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys[key.value] = value
            type_value = keys.get("type")
            if not isinstance(type_value, ast.Constant):
                continue
            fields = EVENT_FIELDS.get(type_value.value)
            if fields is None:
                yield self.finding(
                    ctx, type_value,
                    f"event type {type_value.value!r} is not in the "
                    "telemetry schema (see repro.obs.schema.EVENT_FIELDS)",
                )
                continue
            for key_name, value in keys.items():
                if key_name not in fields:
                    yield self.finding(
                        ctx, value,
                        f"field {key_name!r} is not in the "
                        f"{type_value.value!r} event schema",
                    )
            if not has_unpack:
                missing = sorted(
                    name
                    for name, (_, required, _enum) in fields.items()
                    if required and name not in keys
                )
                if missing:
                    yield self.finding(
                        ctx, event,
                        f"{type_value.value!r} event emission misses "
                        f"required fields {missing}",
                    )

    @staticmethod
    def _sinkish(receiver: ast.expr) -> bool:
        """Whether the write receiver names a telemetry sink."""
        name = None
        if isinstance(receiver, ast.Name):
            name = receiver.id
        elif isinstance(receiver, ast.Attribute):
            name = receiver.attr
        return name is not None and name.lstrip("_").endswith("sink")


@register
class TelemetrySchemaDrift(Rule):
    """S306 — span kinds / event shapes drifting from the checked-in schema."""

    id = "S306"
    title = "telemetry constants drift from the checked-in schema"
    severity = "error"
    rationale = (
        "schemas/telemetry-events.schema.json is the published contract "
        "of the event stream; SPAN_KINDS and EVENT_FIELDS are its "
        "generators.  Editing either without regenerating the document "
        "(python -m repro.obs.schema) ships a schema that rejects the "
        "very streams the library emits.  The rule pins the literals to "
        "the checked-in file, so drift fails lint instead of CI "
        "validation after the run already happened."
    )

    #: Repo-relative path of the checked-in contract (lint runs from the
    #: repository root, like every other file-set default).
    _SCHEMA_PATH = "schemas/telemetry-events.schema.json"

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library package (the constants live in repro.obs)."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Compare SPAN_KINDS / EVENT_FIELDS literals to the document."""
        assignments = list(self._constant_assignments(ctx))
        if not assignments:
            return
        document = self._load_document()
        if document is None:
            return
        span_enum, event_fields = self._document_shapes(document)
        for name, node, value in assignments:
            if name == "SPAN_KINDS":
                yield from self._check_span_kinds(ctx, node, value, span_enum)
            else:
                yield from self._check_event_fields(
                    ctx, node, value, event_fields
                )

    # -- literal extraction -------------------------------------------
    @staticmethod
    def _constant_assignments(
        ctx: FileContext,
    ) -> Iterable[tuple[str, ast.AST, ast.expr]]:
        """Module-level ``SPAN_KINDS`` / ``EVENT_FIELDS`` assignments."""
        for node in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            for target in targets:
                if isinstance(target, ast.Name) and target.id in (
                    "SPAN_KINDS", "EVENT_FIELDS"
                ):
                    yield target.id, node, value

    @staticmethod
    def _string_elements(value: ast.expr) -> list[str] | None:
        """String items of a tuple/list/set literal (None if not one)."""
        if not isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            return None
        items = []
        for element in value.elts:
            if not (
                isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ):
                return None
            items.append(element.value)
        return items

    # -- checked-in document ------------------------------------------
    def _load_document(self) -> dict | None:
        """The checked-in schema document, or None when unavailable."""
        import json
        from pathlib import Path

        candidates = (
            Path(self._SCHEMA_PATH),
            # Fallback for lint runs not rooted at the repository: the
            # source checkout keeps schemas/ three levels above this file.
            Path(__file__).resolve().parents[3] / self._SCHEMA_PATH,
        )
        for path in candidates:
            try:
                return json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
        return None

    @staticmethod
    def _document_shapes(
        document: dict,
    ) -> tuple[set[str], dict[str, set[str]]]:
        """Span-kind enum and per-event property names of the document."""
        span_enum: set[str] = set()
        event_fields: dict[str, set[str]] = {}
        for variant in document.get("oneOf", []):
            title = variant.get("title", "")
            if not title.endswith(" event"):
                continue
            event_type = title[: -len(" event")]
            properties = variant.get("properties", {})
            event_fields[event_type] = set(properties)
            if event_type == "span":
                kind = properties.get("kind", {})
                span_enum = set(kind.get("enum", []))
        return span_enum, event_fields

    # -- comparisons ---------------------------------------------------
    def _check_span_kinds(
        self,
        ctx: FileContext,
        node: ast.AST,
        value: ast.expr,
        span_enum: set[str],
    ) -> Iterable[Finding]:
        kinds = self._string_elements(value)
        if kinds is None or not span_enum:
            return
        for extra in [kind for kind in kinds if kind not in span_enum]:
            yield self.finding(
                ctx, node,
                f"span kind {extra!r} is not in the checked-in schema; "
                "regenerate with python -m repro.obs.schema",
            )
        for missing in sorted(span_enum - set(kinds)):
            yield self.finding(
                ctx, node,
                f"checked-in schema allows span kind {missing!r} that "
                "SPAN_KINDS no longer declares; regenerate with "
                "python -m repro.obs.schema",
            )

    def _check_event_fields(
        self,
        ctx: FileContext,
        node: ast.AST,
        value: ast.expr,
        event_fields: dict[str, set[str]],
    ) -> Iterable[Finding]:
        if not isinstance(value, ast.Dict) or not event_fields:
            return
        declared: dict[str, ast.expr] = {}
        for key, item in zip(value.keys, value.values):
            if isinstance(key, ast.Constant) and isinstance(key.value, str):
                declared[key.value] = item
        for event_type, fields_node in declared.items():
            expected = event_fields.get(event_type)
            if expected is None:
                yield self.finding(
                    ctx, fields_node,
                    f"event type {event_type!r} is not in the checked-in "
                    "schema; regenerate with python -m repro.obs.schema",
                )
                continue
            if not isinstance(fields_node, ast.Dict):
                continue
            names = {
                key.value
                for key in fields_node.keys
                if isinstance(key, ast.Constant)
                and isinstance(key.value, str)
            }
            for extra in sorted(names - expected):
                yield self.finding(
                    ctx, fields_node,
                    f"field {extra!r} of the {event_type!r} event is not "
                    "in the checked-in schema; regenerate with "
                    "python -m repro.obs.schema",
                )
            for missing in sorted(expected - names):
                yield self.finding(
                    ctx, fields_node,
                    f"checked-in schema requires field {missing!r} of the "
                    f"{event_type!r} event that EVENT_FIELDS no longer "
                    "declares; regenerate with python -m repro.obs.schema",
                )
        for missing_type in sorted(set(event_fields) - set(declared)):
            yield self.finding(
                ctx, node,
                f"checked-in schema declares event type {missing_type!r} "
                "that EVENT_FIELDS no longer defines; regenerate with "
                "python -m repro.obs.schema",
            )


@register
class TestImportInLibrary(Rule):
    """S303 — ``repro.*`` importing from tests/ or benchmarks/."""

    id = "S303"
    title = "library imports test/benchmark code"
    severity = "error"
    rationale = (
        "src/repro is the shipped package; tests/ and benchmarks/ are "
        "repo-only and absent from installs.  A library import of either "
        "works in CI and breaks for every downstream user."
    )

    _FORBIDDEN = ("tests", "benchmarks", "conftest")

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library package."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag imports of the repo-only top-level packages."""
        for node in ast.walk(ctx.tree):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and not node.level:
                modules = [node.module] if node.module else []
            for module in modules:
                top = module.split(".", 1)[0]
                if top in self._FORBIDDEN:
                    yield self.finding(
                        ctx, node,
                        f"library module imports {module!r}; shipped code "
                        "must not depend on repo-only packages",
                    )


@register
class SysPathMutation(Rule):
    """S304 — ``sys.path`` surgery inside the library."""

    id = "S304"
    title = "sys.path mutated in library code"
    severity = "error"
    rationale = (
        "sys.path edits make import resolution depend on call order and "
        "working directory — a reproducibility hazard and a packaging "
        "smell.  Scripts under tools/ and benchmarks/ may bootstrap "
        "their path; the installed package never does."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library package."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag mutations and rebinds of ``sys.path``."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                target = node.func.value
                if (
                    ctx.qualified(target) == "sys.path"
                    and node.func.attr in ("append", "insert", "extend",
                                           "remove", "pop")
                ):
                    yield self.finding(
                        ctx, node,
                        "sys.path mutated in library code; fix packaging "
                        "instead of the import path",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if ctx.qualified(target) == "sys.path":
                        yield self.finding(
                            ctx, node,
                            "sys.path rebound in library code; fix "
                            "packaging instead of the import path",
                        )


@register
class PrintInComputeLayer(Rule):
    """S305 — ``print()`` inside the compute layers."""

    id = "S305"
    title = "print() in compute layer"
    severity = "warning"
    rationale = (
        "Stage progress flows through the telemetry renderer "
        "(Telemetry.observe/message) so verbosity flags, JSON logging and "
        "event capture stay consistent; a stray print() bypasses all "
        "three.  CLI, io.tables and obs are the sanctioned output seams."
    )

    _SCOPE = (
        "src/repro/core",
        "src/repro/dataset",
        "src/repro/analysis",
        "src/repro/pipeline",
        "src/repro/verify",
        "src/repro/usecases",
        "src/repro/campaign",
        "src/repro/serve",
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: compute layers (CLI/io/obs print deliberately)."""
        return ctx.in_dirs(*self._SCOPE)

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag bare ``print`` calls."""
        for call in ctx.calls():
            if isinstance(call.func, ast.Name) and call.func.id == "print":
                yield self.finding(
                    ctx, call,
                    "print() in a compute layer bypasses the telemetry "
                    "renderer; use Telemetry.message/observe",
                )
