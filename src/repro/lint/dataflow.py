"""Fixpoint dataflow over the project call graph.

Per-file summaries record only *direct* facts — a parameter used as a
draw receiver, a literal passed to ``metrics.counter`` — and this engine
closes them over call edges until nothing changes:

* ``rng_params``: parameters a function (transitively) draws random
  numbers from.  Seed of the W-series: passing a shared Generator to a
  function in this relation consumes the caller's stream.
* ``seed_params``: parameters that (transitively) reach a
  generator-construction seed position — reusing such a value across
  units reuses a stream.
* ``metric_params``: parameters that (transitively) reach an
  instrument-factory name position, so C603 can see metric names
  through wrappers like ``ServeApp._count``.
* ``rng_returners``: functions whose return value is a Generator
  (directly constructed, or returned from another returner).
* ``lock_acquires`` / ``lock_pairs``: locks a function acquires
  anywhere below it, and the (held → acquired) order pairs observable
  from it — the T503 inversion relation.

All sets iterate in sorted order and the fixpoint is order-independent
(pure set unions), so results are deterministic regardless of worker
count or summary arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import CallSite, FunctionSummary, ProjectGraph


@dataclass(frozen=True)
class DataflowResult:
    """The solved fixpoints, keyed by function qualname."""

    rng_params: dict[str, frozenset[str]]
    seed_params: dict[str, frozenset[str]]
    metric_params: dict[str, frozenset[str]]
    rng_returners: frozenset[str]
    lock_acquires: dict[str, frozenset[str]]
    lock_pairs: dict[str, frozenset[tuple[str, str, int, int]]]

    def draws_from(self, qualname: str) -> frozenset[str]:
        """Parameters the function transitively draws RNG state from."""
        return self.rng_params.get(qualname, frozenset())


def arg_bindings(
    call: "CallSite", callee: "FunctionSummary"
) -> Iterator[tuple[str, str]]:
    """``(caller identifier, callee parameter)`` pairs of one call site.

    Maps positional identifiers by index (``self`` stripped on methods)
    and keyword identifiers by name; starred/complex arguments resolve
    to nothing, which keeps the analysis sound-but-incomplete in the
    safe direction (no invented flows).
    """
    params = callee.effective_params()
    for index, name in enumerate(call.args):
        if name is not None and index < len(params):
            yield name, params[index]
    for keyword, name in call.keywords:
        if name is not None and keyword in params:
            yield name, keyword


def _propagate_params(
    project: "ProjectGraph",
    direct: dict[str, set[str]],
) -> dict[str, frozenset[str]]:
    """Close a param-sink relation over call edges until fixpoint."""
    changed = True
    while changed:
        changed = False
        for qualname in sorted(project.functions):
            function = project.functions[qualname]
            own_params = frozenset(function.params)
            sinks = direct[qualname]
            for call in function.calls:
                if call.callee is None:
                    continue
                callee = project.functions.get(call.callee)
                if callee is None:
                    continue
                callee_sinks = direct[callee.qualname]
                if not callee_sinks:
                    continue
                for caller_name, callee_param in arg_bindings(call, callee):
                    if (
                        callee_param in callee_sinks
                        and caller_name in own_params
                        and caller_name not in sinks
                    ):
                        sinks.add(caller_name)
                        changed = True
    return {q: frozenset(s) for q, s in direct.items()}


def _solve_returners(project: "ProjectGraph") -> frozenset[str]:
    """Functions whose return value is (transitively) a Generator."""
    from .graph import RNG_CONSTRUCTORS

    returners: set[str] = set()
    changed = True
    while changed:
        changed = False
        for qualname in sorted(project.functions):
            if qualname in returners:
                continue
            function = project.functions[qualname]
            for callee in function.returned_callees:
                if callee in RNG_CONSTRUCTORS or callee in returners:
                    returners.add(qualname)
                    changed = True
                    break
    return frozenset(returners)


def _solve_locks(
    project: "ProjectGraph",
) -> tuple[
    dict[str, frozenset[str]],
    dict[str, frozenset[tuple[str, str, int, int]]],
]:
    """Transitive lock acquisitions and (held → acquired) order pairs.

    A call made while holding lock A to a function that (transitively)
    acquires lock B contributes the pair ``(A, B)`` anchored at the
    call site — the cross-function half of the T503 inversion check.
    """
    acquires: dict[str, set[str]] = {
        q: {lock for lock, _, _ in f.lock_acquisitions}
        for q, f in project.functions.items()
    }
    changed = True
    while changed:
        changed = False
        for qualname in sorted(project.functions):
            function = project.functions[qualname]
            mine = acquires[qualname]
            for call in function.calls:
                if call.callee is None or call.callee not in acquires:
                    continue
                extra = acquires[call.callee] - mine
                if extra:
                    mine |= extra
                    changed = True
    pairs: dict[str, set[tuple[str, str, int, int]]] = {
        q: set(f.lock_pairs) for q, f in project.functions.items()
    }
    for qualname in sorted(project.functions):
        function = project.functions[qualname]
        for call in function.calls:
            if not call.locks_held:
                continue
            if call.callee is None or call.callee not in acquires:
                continue
            for acquired in sorted(acquires[call.callee]):
                for held in call.locks_held:
                    if held != acquired:
                        pairs[qualname].add(
                            (held, acquired, call.line, call.col)
                        )
    return (
        {q: frozenset(s) for q, s in acquires.items()},
        {q: frozenset(s) for q, s in pairs.items()},
    )


def solve(project: "ProjectGraph") -> DataflowResult:
    """Solve every fixpoint the W/T/C rules consume."""
    rng_direct = {
        q: set(f.rng_param_draws) for q, f in project.functions.items()
    }
    seed_direct = {
        q: set(f.seed_sink_params) for q, f in project.functions.items()
    }
    metric_direct = {
        q: set(f.metric_sink_params) for q, f in project.functions.items()
    }
    acquires, pairs = _solve_locks(project)
    return DataflowResult(
        rng_params=_propagate_params(project, rng_direct),
        seed_params=_propagate_params(project, seed_direct),
        metric_params=_propagate_params(project, metric_direct),
        rng_returners=_solve_returners(project),
        lock_acquires=acquires,
        lock_pairs=pairs,
    )
