"""``repro-lint``: AST-based invariant checker for the reproduction.

The repository's core guarantee — byte-identical campaigns across
serial, parallel and chunked runs of the paper's generative models —
rests on coding invariants that ordinary tests only probe at runtime:
every random draw flows from a named seed stream, nothing in the
deterministic layers reads wall clocks or global RNG state, work
shipped to worker processes is module-level and argument-closed, and
structural contracts (the :class:`~repro.dataset.records.SessionTable`
schema, the telemetry event shapes) stay in sync with their canonical
definitions.  This package enforces those invariants *statically*, at
review time, over ``src/``, ``tools/`` and ``benchmarks/``.

Layout
------
* :mod:`repro.lint.rules` — the pluggable Rule API: :class:`Finding`,
  :class:`Rule`, :class:`ProjectRule`, the rule registry and the
  per-file analysis context;
* :mod:`repro.lint.determinism` — D-series determinism rules;
* :mod:`repro.lint.parallelism` — P-series parallel-safety rules;
* :mod:`repro.lint.structure` — S-series structural contract rules;
* :mod:`repro.lint.graph` — per-file :class:`ModuleSummary` extraction
  and the folded :class:`ProjectGraph` whole-program view;
* :mod:`repro.lint.dataflow` — fixpoint dataflow (RNG/seed/metric
  provenance, lock-order pairs) over the project call graph;
* :mod:`repro.lint.provenance` — W-series interprocedural RNG rules;
* :mod:`repro.lint.threads` — T-series serve-stack thread-safety rules;
* :mod:`repro.lint.contracts` — C-series cross-artifact drift rules;
* :mod:`repro.lint.suppress` — inline ``# repro-lint: disable=RULE``
  suppressions;
* :mod:`repro.lint.baseline` — the checked-in baseline of grandfathered
  findings;
* :mod:`repro.lint.driver` — the (optionally parallel) file-level
  driver;
* :mod:`repro.lint.report` — human and JSON reporters plus the report's
  JSON Schema;
* :mod:`repro.lint.app` — the command-line front end shared by
  ``repro-traffic lint`` and ``python -m repro.lint``.

Run it with ``repro-traffic lint`` or ``python -m repro.lint``; see
``docs/LINTING.md`` for the rule catalog and suppression syntax.
"""

from .baseline import Baseline, BaselineError
from .dataflow import DataflowResult
from .driver import LintResult, lint_paths, lint_source
from .graph import ModuleSummary, ProjectGraph, summarize_source
from .report import render_human, render_json, validate_report
from .rules import (
    Finding,
    FileContext,
    LintError,
    ProjectRule,
    Rule,
    all_rules,
    default_rules,
    get_rule,
    project_rules,
    register,
    run_project_rules,
)

__all__ = [
    "Baseline",
    "BaselineError",
    "DataflowResult",
    "FileContext",
    "Finding",
    "LintError",
    "LintResult",
    "ModuleSummary",
    "ProjectGraph",
    "ProjectRule",
    "Rule",
    "all_rules",
    "default_rules",
    "get_rule",
    "lint_paths",
    "lint_source",
    "project_rules",
    "register",
    "render_human",
    "render_json",
    "run_project_rules",
    "summarize_source",
    "validate_report",
]
