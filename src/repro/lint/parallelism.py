"""P-series rules: safety of the process-pool fan-out paths.

The pipeline's parallel executor maps per-(day, BS) kernels across
worker processes; correctness there requires that submitted callables
survive pickling (module-level, argument-closed), that no code path
communicates through mutable module globals (each worker holds its own
copy, so writes silently diverge), and that all process fan-out flows
through the one audited executor abstraction in
:mod:`repro.pipeline.executors`.
"""

from __future__ import annotations

import ast
from typing import Iterable

from .rules import FileContext, Finding, Rule, register

#: The one module allowed to touch process-pool primitives directly.
EXECUTOR_MODULE = "src/repro/pipeline/executors.py"

#: Call-site method names that ship a callable to an executor.
SUBMIT_METHODS = ("map", "submit")

#: Receiver names that look like executors/pools at a ``.map``/``.submit``
#: call site.
EXECUTOR_NAMES = ("executor", "pool", "ex")


def _receiver_name(func: ast.expr) -> str | None:
    """Trailing identifier of a call receiver (``self.executor`` → that)."""
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id
    if isinstance(func, ast.Attribute) and isinstance(
        func.value, ast.Attribute
    ):
        return func.value.attr
    return None


@register
class NonModuleLevelWorkerCallable(Rule):
    """P201 — lambdas/closures submitted to a process executor."""

    id = "P201"
    title = "worker callable not module-level"
    severity = "error"
    rationale = (
        "ProcessPoolExecutor pickles the submitted callable by qualified "
        "name: lambdas and nested functions either fail to pickle or drag "
        "captured state across the process boundary.  Worker kernels must "
        "be module-level functions closed over their arguments only."
    )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag lambda / locally-defined callables at submit sites."""
        nested = self._nested_function_names(ctx)
        for call in ctx.calls():
            if not (
                isinstance(call.func, ast.Attribute)
                and call.func.attr in SUBMIT_METHODS
            ):
                continue
            receiver = _receiver_name(call.func)
            if receiver is None or not any(
                token in receiver.lower() for token in EXECUTOR_NAMES
            ):
                continue
            if not call.args:
                continue
            fn = call.args[0]
            if isinstance(fn, ast.Lambda):
                yield self.finding(
                    ctx, fn,
                    "lambda submitted to a process executor cannot be "
                    "pickled by name; use a module-level kernel function",
                )
            elif isinstance(fn, ast.Name) and fn.id in nested:
                yield self.finding(
                    ctx, fn,
                    f"locally-defined function {fn.id!r} submitted to a "
                    "process executor; hoist the kernel to module level",
                )

    @staticmethod
    def _nested_function_names(ctx: FileContext) -> set[str]:
        """Names of functions defined inside other functions."""
        names: set[str] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                for scope in ctx.ancestors(node):
                    if isinstance(
                        scope, (ast.FunctionDef, ast.AsyncFunctionDef)
                    ):
                        names.add(node.name)
                        break
        return names


@register
class GlobalStateWrite(Rule):
    """P202 — functions rebinding module globals via ``global``."""

    id = "P202"
    title = "module global written at runtime"
    severity = "error"
    rationale = (
        "A 'global' write is invisible cross-process state: each pool "
        "worker mutates its own copy, so parallel runs silently diverge "
        "from serial ones.  Thread state through RunContext/arguments "
        "instead."
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library package."""
        return ctx.in_dirs("src")

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag ``global`` declarations whose names are assigned."""
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: set[str] = set()
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Global):
                    declared.update(stmt.names)
            if not declared:
                continue
            for stmt in ast.walk(node):
                if isinstance(stmt, ast.Name) and isinstance(
                    stmt.ctx, ast.Store
                ) and stmt.id in declared:
                    yield self.finding(
                        ctx, stmt,
                        f"module global {stmt.id!r} rebound inside "
                        f"{node.name}(); workers each mutate a private copy",
                    )
                    declared.discard(stmt.id)


@register
class ExecutorBypass(Rule):
    """P203 — process-pool primitives used outside the executor module."""

    id = "P203"
    title = "process fan-out bypasses pipeline.executors"
    severity = "error"
    rationale = (
        "concurrent.futures/multiprocessing used directly skips the "
        "executor contract the reproduction audits: order-preserving map, "
        "deterministic WorkerError, per-unit telemetry and seed-stream "
        "discipline.  All fan-out goes through "
        "repro.pipeline.executors.make_executor."
    )

    _FORBIDDEN = ("concurrent.futures", "multiprocessing")

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the library, minus the executor module itself."""
        return ctx.in_dirs("src") and ctx.path != EXECUTOR_MODULE

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag imports of process-pool modules outside the executor."""
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if self._forbidden(alias.name):
                        yield self.finding(
                            ctx, node,
                            f"import of {alias.name} outside "
                            "pipeline.executors; use make_executor()",
                        )
            elif isinstance(node, ast.ImportFrom):
                if not node.level and node.module and self._forbidden(
                    node.module
                ):
                    yield self.finding(
                        ctx, node,
                        f"import from {node.module} outside "
                        "pipeline.executors; use make_executor()",
                    )

    def _forbidden(self, module: str) -> bool:
        return any(
            module == m or module.startswith(m + ".") for m in self._FORBIDDEN
        )


@register
class ModuleMutableMutation(Rule):
    """P204 — module-level mutable containers mutated inside functions."""

    id = "P204"
    title = "module-level mutable container mutated at runtime"
    severity = "error"
    rationale = (
        "A module-level dict/list/set written from function bodies is an "
        "ad-hoc cache: per-process copies diverge under the pool, and "
        "iteration over it can feed seed derivation in insertion order. "
        "Import-time initialization is fine; runtime mutation is not."
    )

    _MUTATORS = (
        "append", "add", "update", "setdefault", "insert", "extend",
        "pop", "popitem", "remove", "discard", "clear",
    )

    def applies_to(self, ctx: FileContext) -> bool:
        """Scope: the deterministic compute layers and the serving layer.

        ``serve`` is included because its threaded request handlers make
        module-level mutable state a data race, not just a determinism
        hazard.
        """
        return ctx.in_dirs(
            "src/repro/core",
            "src/repro/pipeline",
            "src/repro/io",
            "src/repro/dataset",
            "src/repro/serve",
        )

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Flag function-body writes to module-level containers."""
        containers = self._module_level_containers(ctx)
        if not containers:
            return
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            shadowed = self._bound_locally(node)
            for stmt in ast.walk(node):
                name = self._mutated_name(stmt)
                if (
                    name is not None
                    and name in containers
                    and name not in shadowed
                ):
                    yield self.finding(
                        ctx, stmt,
                        f"module-level container {name!r} mutated inside "
                        f"{node.name}(); pass state explicitly instead",
                    )

    @staticmethod
    def _module_level_containers(ctx: FileContext) -> set[str]:
        """Module-level names bound to dict/list/set displays or calls."""
        names: set[str] = set()
        for stmt in ctx.tree.body:
            targets: list[ast.expr] = []
            value: ast.expr | None = None
            if isinstance(stmt, ast.Assign):
                targets, value = stmt.targets, stmt.value
            elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
                targets, value = [stmt.target], stmt.value
            if value is None:
                continue
            mutable = isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.DictComp,
                        ast.ListComp, ast.SetComp)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "list", "set", "defaultdict")
            )
            if not mutable:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        return names

    @staticmethod
    def _bound_locally(fn: ast.AST) -> set[str]:
        """Names rebound (shadowed) inside the function."""
        bound: set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
        args = getattr(fn, "args", None)
        if args is not None:
            for arg in (
                args.posonlyargs + args.args + args.kwonlyargs
                + ([args.vararg] if args.vararg else [])
                + ([args.kwarg] if args.kwarg else [])
            ):
                bound.add(arg.arg)
        return bound

    def _mutated_name(self, stmt: ast.AST) -> str | None:
        """Container name a statement mutates, if any."""
        # CONTAINER[key] = …  /  del CONTAINER[key]  /  CONTAINER[key] += …
        target: ast.expr | None = None
        if isinstance(stmt, ast.Assign) and stmt.targets:
            target = stmt.targets[0]
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            target = stmt.target
        elif isinstance(stmt, ast.Delete) and stmt.targets:
            target = stmt.targets[0]
        if (
            isinstance(target, ast.Subscript)
            and isinstance(target.value, ast.Name)
        ):
            return target.value.id
        # CONTAINER.append(…) and friends.
        if (
            isinstance(stmt, ast.Call)
            and isinstance(stmt.func, ast.Attribute)
            and stmt.func.attr in self._MUTATORS
            and isinstance(stmt.func.value, ast.Name)
        ):
            return stmt.func.value.id
        return None
