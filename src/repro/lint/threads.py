"""T-series rules: thread-safety of the serve stack.

``repro-traffic serve`` answers requests on a ``ThreadingMixIn`` WSGI
server: every method of :class:`~repro.serve.http.ServeApp` and
:class:`~repro.serve.store.AggregateStore` may run on a fresh handler
thread, concurrently with every other.  The inferred discipline these
rules audit is the one the code already follows on its good paths —
instance state is either written once in ``__init__`` (before the
server starts) or touched only while holding ``self._lock`` — plus two
classics the discipline implies: SQLite connections opened with
``check_same_thread=False`` are only safe strictly under that lock, and
nested lock acquisition must keep a single global order.
"""

from __future__ import annotations

from typing import Iterable

from .graph import ClassSummary, FunctionSummary, ProjectGraph
from .rules import Finding, ProjectRule, register

#: The threaded request-handling layer these rules audit.
SERVE_DIRS = ("src/repro/serve",)

#: Dunder methods that run before (or outside) the threaded phase.
_SINGLE_THREADED_METHODS = frozenset({"__init__", "__new__", "__del__"})


def _serve_methods(
    project: ProjectGraph, cls: ClassSummary
) -> Iterable[FunctionSummary]:
    """The summaries of one serve class's methods."""
    summary = project.modules.get(cls.path)
    if summary is None:
        return
    for function in summary.functions:
        if function.class_name == cls.name:
            yield function


@register
class UnguardedSharedWrite(ProjectRule):
    """T501 — instance attribute written off-lock on a handler thread."""

    id = "T501"
    title = "unguarded shared-attribute write in serve class"
    severity = "error"
    rationale = (
        "Serve-stack methods run concurrently on handler threads; an "
        "instance attribute written outside __init__ without self._lock "
        "held is a data race (two lazy initializers interleave, a "
        "reader observes a half-updated pair).  Shared mutable state is "
        "written once in __init__ or strictly under the lock."
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag off-lock self-attribute writes outside ``__init__``."""
        for module in project.modules_under(*SERVE_DIRS):
            for cls in module.classes:
                for method in _serve_methods(project, cls):
                    if method.name in _SINGLE_THREADED_METHODS:
                        continue
                    for write in method.attr_writes:
                        if write.locks_held:
                            continue
                        yield self.project_finding(
                            cls.path, write.line, write.col,
                            f"self.{write.attr} written in "
                            f"{cls.name}.{method.name}() without a lock "
                            "held; handler threads race here — guard "
                            "with self._lock or assign in __init__",
                            symbol=write.symbol,
                        )


@register
class SqliteAcrossThreads(ProjectRule):
    """T502 — a cross-thread SQLite handle touched off-lock."""

    id = "T502"
    title = "sqlite connection used across threads without the lock"
    severity = "error"
    rationale = (
        "sqlite3.connect(..., check_same_thread=False) disables the "
        "driver's own thread guard, shifting the burden to the caller: "
        "the connection object is not thread-safe, so every use must "
        "hold the same lock.  An off-lock cursor on a handler thread "
        "corrupts in-flight transactions of another."
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag off-lock accesses to ``__init__``-opened connections."""
        for module in project.modules_under(*SERVE_DIRS):
            for cls in module.classes:
                if not cls.sqlite_attrs:
                    continue
                watched = frozenset(cls.sqlite_attrs)
                for method in _serve_methods(project, cls):
                    if method.name in _SINGLE_THREADED_METHODS:
                        continue
                    for read in method.attr_reads:
                        if read.attr not in watched or read.locks_held:
                            continue
                        yield self.project_finding(
                            cls.path, read.line, read.col,
                            f"self.{read.attr} (a check_same_thread="
                            "False sqlite connection) used in "
                            f"{cls.name}.{method.name}() without "
                            "self._lock held; connections are not "
                            "thread-safe off-lock",
                            symbol=read.symbol,
                        )


@register
class LockOrderInversion(ProjectRule):
    """T503 — two locks acquired in opposite orders somewhere."""

    id = "T503"
    title = "lock acquisition-order inversion"
    severity = "error"
    rationale = (
        "If one code path takes lock A then B while another takes B "
        "then A — possibly through a call chain — two handler threads "
        "can each hold one lock and wait forever on the other.  The "
        "call-graph closure makes the indirect half visible: a call "
        "made under A to a function that acquires B contributes the "
        "pair (A, B)."
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag (A→B, B→A) pair conflicts across the serve layer."""
        flow = project.dataflow()
        sites: dict[tuple[str, str], list[tuple[str, int, int, str]]] = {}
        for function in project.functions_under(*SERVE_DIRS):
            symbol = (
                f"{function.class_name}.{function.name}"
                if function.class_name is not None
                else function.name
            )
            for held, acquired, line, col in sorted(
                flow.lock_pairs.get(function.qualname, frozenset())
            ):
                sites.setdefault((held, acquired), []).append(
                    (function.path, line, col, symbol)
                )
        for held, acquired in sorted(sites):
            if held >= acquired:
                continue  # report each unordered pair once
            reverse = sites.get((acquired, held))
            if reverse is None:
                continue
            path, line, col, symbol = min(sites[(held, acquired)])
            r_path, r_line, _, _ = min(reverse)
            yield self.project_finding(
                path, line, col,
                f"{held!r} is held while acquiring {acquired!r} here, "
                f"but {r_path}:{r_line} acquires them in the opposite "
                "order; pick one global order to make deadlock "
                "impossible",
                symbol=symbol,
            )
