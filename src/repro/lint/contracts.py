"""C-series rules: cross-artifact contract drift.

The repository ships machine- and human-readable contracts next to the
code they describe: the OpenAPI document of the statistics service, the
CLI reference in ``docs/USAGE.md``, the metric-name tables in
``docs/OBSERVABILITY.md``.  Each drifts one PR at a time — a route
lands without a spec entry, a flag without a usage line, a counter
without a table row.  These rules pin the artifacts to the code by
comparing harvested literals (and names recovered through the metric
dataflow) against the checked-in files on every lint run.
"""

from __future__ import annotations

import json
import re
from typing import Iterable, Iterator

from .graph import MetricLiteral, ProjectGraph
from .rules import Finding, ProjectRule, register

#: The serve module whose route literals define the HTTP surface.
HTTP_MODULE = "src/repro/serve/http.py"

#: The checked-in OpenAPI document of the statistics service.
OPENAPI_ARTIFACT = "schemas/openapi-serve.json"

#: The CLI module whose ``add_argument`` flags define the command surface.
CLI_MODULE = "src/repro/cli.py"

#: The CLI reference document flags must appear in.
USAGE_ARTIFACT = "docs/USAGE.md"

#: The metric-name reference document instrumented names must appear in.
OBSERVABILITY_ARTIFACT = "docs/OBSERVABILITY.md"


def _mentions(text: str, token: str) -> bool:
    """Whether ``token`` appears in ``text`` as a whole word.

    The following character (if any) must not extend the token —
    ``--follow`` in the text does not document ``--follow-timeout``.
    """
    pattern = re.escape(token) + r"(?![A-Za-z0-9_.\-])"
    return re.search(pattern, text) is not None


@register
class RouteSpecDrift(ProjectRule):
    """C601 — served routes and the OpenAPI document disagree."""

    id = "C601"
    title = "HTTP route missing from the OpenAPI contract (or vice versa)"
    severity = "error"
    rationale = (
        "schemas/openapi-serve.json is the machine-readable contract "
        "clients and the CI smoke test validate against.  A route "
        "handled in serve/http.py but absent from the document is an "
        "undocumented surface; a documented path no handler answers is "
        "a broken promise.  Both directions are checked on every run."
    )

    artifacts = (OPENAPI_ARTIFACT,)

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Compare route literals in http.py with the spec's paths."""
        module = project.modules.get(HTTP_MODULE)
        if module is None or not module.route_literals:
            return
        spec_text = project.artifact(OPENAPI_ARTIFACT)
        spec_paths: set[str] = set()
        if spec_text is not None:
            try:
                payload = json.loads(spec_text)
                spec_paths = set(payload.get("paths", {}))
            except (json.JSONDecodeError, AttributeError):
                yield self.project_finding(
                    OPENAPI_ARTIFACT, 1, 0,
                    f"{OPENAPI_ARTIFACT} is not a JSON object with "
                    "'paths'; the route contract cannot be checked",
                    symbol="paths",
                )
                return
        seen: set[str] = set()
        for route, line, col in module.route_literals:
            if route in seen:
                continue
            seen.add(route)
            if route not in spec_paths:
                yield self.project_finding(
                    HTTP_MODULE, line, col,
                    f"route {route!r} is handled here but missing from "
                    f"{OPENAPI_ARTIFACT}; regenerate the document "
                    "(python -m repro.serve.openapi) after adding the "
                    "operation",
                    symbol="<module>",
                )
        for path in sorted(spec_paths - seen):
            yield self.project_finding(
                OPENAPI_ARTIFACT, 1, 0,
                f"{OPENAPI_ARTIFACT} documents {path!r} but no literal "
                f"in {HTTP_MODULE} handles it; remove the operation or "
                "wire the route",
                symbol="paths",
            )


@register
class CliUsageDrift(ProjectRule):
    """C602 — a ``repro-traffic`` flag undocumented in USAGE.md."""

    id = "C602"
    title = "CLI flag missing from docs/USAGE.md"
    severity = "error"
    rationale = (
        "docs/USAGE.md is the only place a user can discover the "
        "command surface without reading argparse wiring; every "
        "long-form flag cli.py registers must appear there verbatim.  "
        "The whole-program pass harvests add_argument literals, so a "
        "new flag fails review until its documentation lands with it."
    )

    artifacts = (USAGE_ARTIFACT,)

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag add_argument long options absent from the usage doc."""
        module = project.modules.get(CLI_MODULE)
        if module is None or not module.flag_literals:
            return
        usage = project.artifact(USAGE_ARTIFACT) or ""
        seen: set[str] = set()
        for flag, line, col in module.flag_literals:
            if flag in seen:
                continue
            seen.add(flag)
            if not _mentions(usage, flag):
                yield self.project_finding(
                    CLI_MODULE, line, col,
                    f"flag {flag!r} is not documented in "
                    f"{USAGE_ARTIFACT}; add it to the command's usage "
                    "section",
                    symbol="<module>",
                )


@register
class MetricDocDrift(ProjectRule):
    """C603 — an instrumented metric name undocumented."""

    id = "C603"
    title = "metric name missing from docs/OBSERVABILITY.md"
    severity = "error"
    rationale = (
        "Dashboards and the CI telemetry smoke test are written "
        "against docs/OBSERVABILITY.md's metric tables; an instrumented "
        "name the document omits is invisible operational surface.  "
        "Names are harvested at counter()/gauge()/histogram() call "
        "sites and — via the dataflow pass — through wrapper functions "
        "whose parameter reaches the name position, so helpers like "
        "ServeApp._count cannot hide a metric."
    )

    artifacts = (OBSERVABILITY_ARTIFACT,)

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag instrumented metric names the document omits."""
        doc = project.artifact(OBSERVABILITY_ARTIFACT) or ""
        reported: set[str] = set()
        for literal, path in self._instrumented_names(project):
            if literal.name in reported:
                continue
            if _mentions(doc, literal.name):
                reported.add(literal.name)
                continue
            reported.add(literal.name)
            yield self.project_finding(
                path, literal.line, literal.col,
                f"metric {literal.name!r} is instrumented here but "
                f"missing from {OBSERVABILITY_ARTIFACT}; add it to the "
                "matching instrument table",
                symbol=literal.symbol,
            )

    @staticmethod
    def _instrumented_names(
        project: ProjectGraph,
    ) -> Iterator[tuple[MetricLiteral, str]]:
        """Every literal metric name, direct or through a wrapper."""
        flow = project.dataflow()
        for module in project.modules_under("src"):
            for literal in module.metric_literals:
                yield literal, module.path
            for function in module.functions:
                for call in function.calls:
                    callee = project.functions.get(call.callee or "")
                    if callee is None:
                        continue
                    sinks = flow.metric_params.get(
                        callee.qualname, frozenset()
                    )
                    if not sinks:
                        continue
                    params = callee.effective_params()
                    for index, value in enumerate(call.string_args):
                        if (
                            value is not None
                            and index < len(params)
                            and params[index] in sinks
                        ):
                            yield (
                                MetricLiteral(
                                    name=value,
                                    line=call.line,
                                    col=call.col,
                                    symbol=call.symbol,
                                ),
                                module.path,
                            )
