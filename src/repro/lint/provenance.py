"""W-series rules: whole-program RNG and seed provenance.

The per-file D rules catch a generator misused in plain sight; these
rules follow generators and seeds *across call boundaries* using the
project graph and its dataflow solution.  The invariant is the paper
reproduction's seed-stream discipline: every unit of work — one
(day, BS) cell — draws from its own generator, minted from the run's
root seed and the unit key, and no generator's consumption order may
depend on container iteration or executor scheduling.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .dataflow import DataflowResult, arg_bindings
from .determinism import rng_named
from .graph import (
    RNG_CONSTRUCTORS,
    SEED_SINK_CALLEES,
    CallSite,
    ProjectGraph,
)
from .rules import Finding, ProjectRule, register

#: Layers under the seed-stream discipline (the D-series scope plus the
#: campaign fan-out that stacks on top of it).
PROVENANCE_DIRS = (
    "src/repro/core",
    "src/repro/pipeline",
    "src/repro/dataset",
    "src/repro/campaign",
)

#: Where D106's per-file name heuristic already patrols; W403 skips
#: rng-named arguments there to avoid double-reporting.
D106_DIRS = ("src/repro/core", "src/repro/dataset", "src/repro/pipeline")


def _in_dirs(path: str, prefixes: tuple[str, ...]) -> bool:
    return any(
        path == p or path.startswith(p.rstrip("/") + "/") for p in prefixes
    )


def _short(qualname: str | None) -> str:
    return qualname.rsplit(".", 1)[-1] if qualname else "<unknown>"


@register
class RngEscapesToWorker(ProjectRule):
    """W401 — a live Generator shipped through an executor boundary."""

    id = "W401"
    title = "generator passed into executor fan-out"
    severity = "error"
    rationale = (
        "A Generator handed to executor.map/submit either fails to "
        "pickle or — worse — each worker advances a private copy, so "
        "parallel runs silently diverge from serial ones.  Workers "
        "must mint their own per-unit generator from the run seed and "
        "the unit key (stream_rng), never share the caller's.  Tracked "
        "interprocedurally: a local is a generator if it came from "
        "default_rng/stream_rng or any function that returns one."
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag rng-valued arguments at executor submit sites."""
        flow = project.dataflow()
        for function in project.functions_under("src"):
            rng_values = set(flow.draws_from(function.qualname))
            rng_values.update(p for p in function.params if rng_named(p))
            for name, callee in function.assigns:
                if callee in RNG_CONSTRUCTORS or callee in flow.rng_returners:
                    rng_values.add(name)
            for call in function.calls:
                if call.submit_kind is None:
                    continue
                shipped = [name for name in call.args[1:] if name is not None]
                shipped.extend(
                    name for _, name in call.keywords if name is not None
                )
                for name in shipped:
                    if name in rng_values or rng_named(name):
                        yield self.project_finding(
                            function.path, call.line, call.col,
                            f"generator {name!r} passed through "
                            f"executor.{call.submit_kind}() shares one "
                            "stream across workers; ship per-unit seeds "
                            "and mint the generator inside the kernel",
                            symbol=call.symbol,
                        )


@register
class SeedReusedAcrossUnits(ProjectRule):
    """W402 — a loop builds every unit's generator from one seed."""

    id = "W402"
    title = "loop-invariant seed reused across units"
    severity = "error"
    rationale = (
        "Constructing a generator inside a per-unit loop from a seed "
        "with no per-iteration component gives every unit the same "
        "stream: units become copies, not samples.  The seed material "
        "must include the unit key (stream_seed(root, day, bs)).  "
        "Detected through call boundaries: an argument that reaches a "
        "seed position of the callee counts as seed material."
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag in-loop generator construction from invariant seeds."""
        flow = project.dataflow()
        for function in project.functions_under(*PROVENANCE_DIRS):
            for call in function.calls:
                if not call.in_loop:
                    continue
                seeds = list(self._seed_arguments(project, flow, call))
                if not seeds:
                    continue
                invariant = [
                    name if name is not None else "<literal>"
                    for name, const in seeds
                    if const or (
                        name is not None and name not in call.loop_bound
                    )
                ]
                if len(invariant) != len(seeds):
                    continue
                yield self.project_finding(
                    function.path, call.line, call.col,
                    f"seed material ({', '.join(sorted(set(invariant)))}) "
                    f"feeding {_short(call.callee)}() never varies across "
                    "loop iterations: every unit replays the same stream; "
                    "fold the unit key into the seed",
                    symbol=call.symbol,
                )

    @staticmethod
    def _seed_arguments(
        project: ProjectGraph, flow: DataflowResult, call: CallSite
    ) -> Iterator[tuple[str | None, bool]]:
        """(identifier, is-constant) of each seed-position argument."""
        if call.callee in SEED_SINK_CALLEES:
            for index, name in enumerate(call.args):
                yield name, call.const_args[index]
            for keyword, name in call.keywords:
                if keyword == "seed":
                    yield name, name is None
            return
        callee = project.functions.get(call.callee or "")
        if callee is None:
            return
        sinks = flow.seed_params.get(callee.qualname, frozenset())
        if not sinks:
            return
        params = callee.effective_params()
        for index, name in enumerate(call.args):
            if index < len(params) and params[index] in sinks:
                yield name, call.const_args[index]
        for keyword, name in call.keywords:
            if keyword in sinks:
                yield name, name is None


@register
class SharedRngBehindCall(ProjectRule):
    """W403 — D106 generalized: order-coupled draws two calls away."""

    id = "W403"
    title = "shared RNG drawn through a call inside a collection loop"
    severity = "error"
    rationale = (
        "D106 flags a shared generator consumed directly inside a "
        "dict-view loop; the same coupling hides behind any function "
        "that (transitively) draws from a parameter.  Iterating a view "
        "and calling helper(gen) where helper eventually draws from "
        "gen makes every unit's samples depend on iteration order.  "
        "The dataflow fixpoint supplies the draws-from relation."
    )

    def check_project(self, project: ProjectGraph) -> Iterable[Finding]:
        """Flag shared values fed to drawing callees inside view loops."""
        flow = project.dataflow()
        for function in project.functions_under(*PROVENANCE_DIRS):
            d106_patrols = _in_dirs(function.path, D106_DIRS)
            for call in function.calls:
                if not call.in_view_loop or call.callee is None:
                    continue
                callee = project.functions.get(call.callee)
                if callee is None:
                    continue
                draws = flow.draws_from(callee.qualname)
                if not draws:
                    continue
                seen: set[str] = set()
                for caller_name, callee_param in arg_bindings(call, callee):
                    if callee_param not in draws:
                        continue
                    if caller_name in call.loop_bound:
                        continue
                    if d106_patrols and rng_named(caller_name):
                        continue  # D106 already reports this spelling
                    if caller_name in seen:
                        continue
                    seen.add(caller_name)
                    yield self.project_finding(
                        function.path, call.line, call.col,
                        f"shared generator {caller_name!r} is consumed by "
                        f"{callee.name}() (which draws from parameter "
                        f"{callee_param!r}) inside a dict-view loop; "
                        "results couple to iteration order — derive a "
                        "per-unit stream instead",
                        symbol=call.symbol,
                    )
