"""The pluggable Rule API: findings, file context, and the registry.

A rule is a small class with an ``id`` (``D101``, ``P203``, …), a
severity, a one-line title, a rationale and a ``check`` method that
walks one file's AST and yields :class:`Finding` objects.  Rules never
read other files — everything they need (source text, parsed tree,
resolved import aliases, parent links) is precomputed on the
:class:`FileContext`, so the driver can lint files independently and in
parallel with byte-identical output.

Import-alias resolution is the workhorse: ``np.random.seed`` and
``numpy.random.seed`` (or ``from numpy.random import seed``) normalize
to the same dotted name, so rules match semantics rather than spelling.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, ClassVar, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .graph import ProjectGraph

#: Ordered severity levels, most severe first.
SEVERITIES = ("error", "warning")


class LintError(ValueError):
    """Raised on invalid linter configuration or rule registration."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Sortable by ``(path, line, col, rule)`` so reports are deterministic
    regardless of the order files were linted in (serial and parallel
    drivers print identical output).

    Attributes
    ----------
    path:
        Repository-relative POSIX path of the offending file.
    line, col:
        1-based line and 0-based column of the offending node.
    rule:
        Rule identifier, e.g. ``"D101"``.
    severity:
        ``"error"`` or ``"warning"``.
    message:
        Human-readable description of this specific violation.
    symbol:
        Dotted name of the enclosing class/function (``"<module>"`` at
        top level) — the line-number-free anchor baseline entries match
        on, so unrelated edits do not churn the baseline.
    """

    path: str
    line: int
    col: int
    rule: str
    severity: str = field(compare=False)
    message: str = field(compare=False)
    symbol: str = field(compare=False, default="<module>")

    def location(self) -> str:
        """The finding's ``path:line:col`` source anchor."""
        return f"{self.path}:{self.line}:{self.col}"


class FileContext:
    """Everything rules may inspect about one file, precomputed once.

    Parameters
    ----------
    path:
        Repository-relative POSIX path (used for scope checks and
        reported findings).
    source:
        The file's text content.
    tree:
        The parsed module; pass ``None`` to parse ``source`` here.
    """

    def __init__(self, path: str, source: str, tree: ast.Module | None = None):
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = tree if tree is not None else ast.parse(source)
        self.lines = source.splitlines()
        self._parents: dict[ast.AST, ast.AST] = {}
        self.aliases: dict[str, str] = {}
        self._package = _package_of(self.path)
        for node in ast.walk(self.tree):
            for child in ast.iter_child_nodes(node):
                self._parents[child] = node
        self._collect_aliases()

    # -- import-alias resolution --------------------------------------
    def _collect_aliases(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    name = alias.asname or alias.name.split(".", 1)[0]
                    target = alias.name if alias.asname else name
                    self.aliases[name] = target
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.aliases[local] = f"{base}.{alias.name}"

    def _import_base(self, node: ast.ImportFrom) -> str | None:
        if not node.level:
            return node.module
        if self._package is None:
            return None
        parts = self._package.split(".")
        if node.level > len(parts):
            return None
        base = parts[: len(parts) - (node.level - 1)]
        if node.module:
            base.append(node.module)
        return ".".join(base)

    def qualified(self, node: ast.AST) -> str | None:
        """Dotted name of an expression, normalized through imports.

        ``np.random.seed`` under ``import numpy as np`` resolves to
        ``"numpy.random.seed"``; unresolvable expressions (calls on call
        results, subscripts, …) return ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head = self.aliases.get(parts[0])
        if head is not None:
            parts[0:1] = head.split(".")
        return ".".join(parts)

    # -- tree navigation ----------------------------------------------
    def parent(self, node: ast.AST) -> ast.AST | None:
        """The node's syntactic parent (``None`` for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """The node's enclosing chain, innermost first."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def symbol(self, node: ast.AST) -> str:
        """Dotted enclosing-scope name (``Class.method`` or ``<module>``)."""
        names = [
            scope.name
            for scope in self.ancestors(node)
            if isinstance(
                scope, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            )
        ]
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            names.insert(0, node.name)
        return ".".join(reversed(names)) if names else "<module>"

    def in_dirs(self, *prefixes: str) -> bool:
        """Whether this file lives under any of the given path prefixes."""
        return any(
            self.path == p or self.path.startswith(p.rstrip("/") + "/")
            for p in prefixes
        )

    def calls(self) -> Iterator[ast.Call]:
        """Every call expression in the file."""
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Call):
                yield node

    def keyword(self, call: ast.Call, name: str) -> ast.expr | None:
        """Value of a call's keyword argument, or ``None`` if absent."""
        for kw in call.keywords:
            if kw.arg == name:
                return kw.value
        return None


class Rule:
    """Base class of every lint rule.

    Subclasses set the class attributes and implement :meth:`check`;
    registration happens with the :func:`register` decorator.  A rule
    restricted to part of the tree overrides :meth:`applies_to` (the
    default applies everywhere the driver walks).
    """

    id: ClassVar[str] = ""
    title: ClassVar[str] = ""
    severity: ClassVar[str] = "error"
    rationale: ClassVar[str] = ""

    def applies_to(self, ctx: FileContext) -> bool:
        """Whether this rule runs on the given file (default: always)."""
        return True

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Yield this rule's findings for one file."""
        raise NotImplementedError

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.id,
            severity=self.severity,
            message=message,
            symbol=ctx.symbol(node),
        )


class ProjectRule(Rule):
    """Base class of whole-program rules (the W/T/C series).

    Project rules consume the :class:`~repro.lint.graph.ProjectGraph`
    the driver folds worker summaries into, instead of one file's AST.
    They run serially in the parent process after the per-file fan-out,
    so parallel runs stay byte-identical; :meth:`check` is therefore a
    no-op and :meth:`check_project` is the entry point.  ``artifacts``
    names the repo-relative non-Python files (OpenAPI document, docs)
    the rule compares code against; the driver loads them from the
    repository root and tests inject them directly.
    """

    artifacts: ClassVar[tuple[str, ...]] = ()

    def check(self, ctx: FileContext) -> Iterable[Finding]:
        """Project rules have no per-file findings."""
        return ()

    def check_project(self, project: "ProjectGraph") -> Iterable[Finding]:
        """Yield this rule's findings over the whole program."""
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        col: int,
        message: str,
        symbol: str = "<module>",
    ) -> Finding:
        """Build a :class:`Finding` from summary-level coordinates."""
        return Finding(
            path=path,
            line=line,
            col=col,
            rule=self.id,
            severity=self.severity,
            message=message,
            symbol=symbol,
        )


#: The process-wide rule registry, keyed by rule id.
_REGISTRY: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (one instance)."""
    if not cls.id or not cls.title:
        raise LintError(f"rule {cls.__name__} must set id and title")
    if cls.severity not in SEVERITIES:
        raise LintError(
            f"rule {cls.id}: severity must be one of {SEVERITIES}"
        )
    if cls.id in _REGISTRY:
        raise LintError(f"duplicate rule id {cls.id}")
    _REGISTRY[cls.id] = cls()
    return cls


def _load_packs() -> None:
    """Import the built-in rule packs (idempotent, registry-populating)."""
    from . import (  # noqa: F401
        contracts,
        determinism,
        parallelism,
        provenance,
        structure,
        threads,
    )


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    _load_packs()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def default_rules() -> list[Rule]:
    """The rules a plain ``repro-traffic lint`` run applies (all)."""
    return all_rules()


def get_rule(rule_id: str) -> Rule:
    """Look one rule up by id; raises :class:`LintError` if unknown."""
    _load_packs()
    try:
        return _REGISTRY[rule_id]
    except KeyError:
        raise LintError(f"unknown rule id {rule_id!r}") from None


def known_rule_ids() -> frozenset[str]:
    """The set of registered rule ids (suppression validation)."""
    _load_packs()
    return frozenset(_REGISTRY)


def run_rules(
    ctx: FileContext, rules: Iterable[Rule] | None = None
) -> list[Finding]:
    """Apply per-file rules to one file context; returns sorted findings.

    Project rules are skipped here — they see the whole program at
    once, through :func:`run_project_rules` in the driver's parent
    process.
    """
    found: list[Finding] = []
    for rule in rules if rules is not None else default_rules():
        if isinstance(rule, ProjectRule):
            continue
        if rule.applies_to(ctx):
            found.extend(rule.check(ctx))
    return sorted(found)


def project_rules() -> list[ProjectRule]:
    """Every registered whole-program rule, sorted by id."""
    return [r for r in all_rules() if isinstance(r, ProjectRule)]


def run_project_rules(
    project: "ProjectGraph", rules: Iterable[ProjectRule] | None = None
) -> list[Finding]:
    """Apply project rules to one graph; returns sorted findings."""
    found: list[Finding] = []
    for rule in rules if rules is not None else project_rules():
        found.extend(rule.check_project(project))
    return sorted(found)


def _package_of(path: str) -> str | None:
    """Dotted package of a repo-relative module path (for relative imports)."""
    parts = path.split("/")
    if not parts or not parts[-1].endswith(".py"):
        return None
    if parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return None
    parts[-1] = parts[-1][: -len(".py")]
    if parts[-1] == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1]
    return ".".join(parts) if parts else None


Checker = Callable[[FileContext], Iterable[Finding]]
