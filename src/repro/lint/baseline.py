"""The checked-in baseline of grandfathered lint findings.

A baseline entry acknowledges one pre-existing violation without fixing
it: it matches findings by ``(rule, path, symbol)`` — deliberately not
by line number, so unrelated edits in the same file do not churn the
file — and must carry a non-empty ``justification``.  The shipped
baseline lives at ``baselines/repro_lint_baseline.json``; the goal
state (and the shipped state) is an *empty* baseline, with intentional
exceptions expressed as inline suppressions next to the code they
excuse.

New code never lands baselined: CI fails on any finding that is neither
suppressed inline nor already in the baseline, and stale entries (ones
matching nothing) fail the run too, so the baseline only ever shrinks.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable

from .rules import Finding

#: Repository-relative path of the checked-in baseline.
DEFAULT_BASELINE_PATH = "baselines/repro_lint_baseline.json"

#: Format version of the baseline file.
BASELINE_VERSION = 1


class BaselineError(ValueError):
    """Raised on malformed baseline files."""


@dataclass(frozen=True)
class BaselineEntry:
    """One grandfathered finding, anchored line-number-free."""

    rule: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        """Whether this entry covers the given finding."""
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.symbol == finding.symbol
        )


class Baseline:
    """A set of grandfathered findings loaded from (or saved to) JSON."""

    def __init__(self, entries: Iterable[BaselineEntry] = ()):
        self.entries = list(entries)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline file; a missing file is an empty baseline."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except json.JSONDecodeError as exc:
            raise BaselineError(f"{path}: invalid JSON ({exc})") from None
        if not isinstance(payload, dict) or "findings" not in payload:
            raise BaselineError(f"{path}: expected an object with 'findings'")
        version = payload.get("version")
        if version != BASELINE_VERSION:
            raise BaselineError(
                f"{path}: unsupported baseline version {version!r}"
            )
        entries: list[BaselineEntry] = []
        for index, raw in enumerate(payload["findings"]):
            try:
                entries.append(
                    BaselineEntry(
                        rule=raw["rule"],
                        path=raw["path"],
                        symbol=raw.get("symbol", "<module>"),
                        justification=raw.get("justification", ""),
                    )
                )
            except (TypeError, KeyError) as exc:
                raise BaselineError(
                    f"{path}: entry #{index} malformed ({exc!r})"
                ) from None
            if not entries[-1].justification.strip():
                raise BaselineError(
                    f"{path}: entry #{index} ({entries[-1].rule} "
                    f"{entries[-1].path}) has no justification"
                )
        return cls(entries)

    def save(self, path: str | Path) -> None:
        """Write the baseline as deterministic, diff-friendly JSON."""
        payload = {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "symbol": e.symbol,
                    "justification": e.justification,
                }
                for e in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.symbol)
                )
            ],
        }
        Path(path).parent.mkdir(parents=True, exist_ok=True)
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    @classmethod
    def from_findings(
        cls,
        findings: Iterable[Finding],
        justification: str = "TODO: justify or fix",
    ) -> "Baseline":
        """Baseline covering the given findings (``--write-baseline``)."""
        seen: dict[tuple[str, str, str], BaselineEntry] = {}
        for finding in findings:
            key = (finding.rule, finding.path, finding.symbol)
            seen.setdefault(
                key,
                BaselineEntry(
                    rule=finding.rule,
                    path=finding.path,
                    symbol=finding.symbol,
                    justification=justification,
                ),
            )
        return cls(seen.values())

    def apply(
        self, findings: Iterable[Finding]
    ) -> tuple[list[Finding], int, list[BaselineEntry]]:
        """Split findings against the baseline.

        Returns ``(new_findings, baselined_count, stale_entries)`` where
        stale entries matched no finding at all — they must be deleted
        from the baseline file (the violation they excused is gone).
        """
        new: list[Finding] = []
        used: set[int] = set()
        baselined = 0
        for finding in findings:
            covered = False
            for index, entry in enumerate(self.entries):
                if entry.matches(finding):
                    used.add(index)
                    covered = True
            if covered:
                baselined += 1
            else:
                new.append(finding)
        stale = [
            entry
            for index, entry in enumerate(self.entries)
            if index not in used
        ]
        return new, baselined, stale
