"""Project-wide symbol, call and artifact graph for whole-program rules.

The per-file rules see exactly one file; the W/T/C series reason about
flows *between* files — a generator handed through two call boundaries,
a lock acquired in one method and required by another, a route literal
that must match a checked-in OpenAPI document.  This module provides the
substrate: a :class:`ModuleSummary` distilled independently from each
file (picklable, so the driver's worker processes can extract summaries
during the ordinary parallel fan-out) and a :class:`ProjectGraph` the
parent folds them into, in sorted path order, before running the
project rules serially.  Extraction never reads other files, so the
parallel run stays byte-identical to the serial one.

What a summary records is deliberately shallow — call sites with
identifier arguments, self-attribute accesses with the lock set held at
that point, direct RNG/seed/metric-name sinks — and the
:mod:`repro.lint.dataflow` engine closes these facts over the call
graph afterwards.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator, Mapping, Sequence

from .determinism import is_view_loop
from .parallelism import EXECUTOR_NAMES, SUBMIT_METHODS, _receiver_name
from .rules import FileContext

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .dataflow import DataflowResult

#: Methods whose invocation on a Generator consumes (or splits) its
#: stream — the "draws from" relation of the RNG-provenance dataflow.
#: ``spawn`` counts: children are minted from the parent's sequential
#: state, so spawning under unordered iteration is order-coupled too.
RNG_DRAW_METHODS = frozenset(
    {
        "random", "normal", "uniform", "integers", "choice", "shuffle",
        "permutation", "permuted", "standard_normal", "exponential",
        "lognormal", "pareto", "gamma", "poisson", "binomial", "beta",
        "multinomial", "bytes", "triangular", "weibull", "gumbel",
        "laplace", "logistic", "spawn",
    }
)

#: Calls that construct a Generator (possibly via the repo's seed-stream
#: helpers); their return values are RNGs and their arguments are seeds.
RNG_CONSTRUCTORS = frozenset(
    {
        "numpy.random.default_rng",
        "numpy.random.Generator",
        "repro.pipeline.context.stream_rng",
    }
)

#: Calls whose arguments are seed material (a value reused here is a
#: stream reused).  Superset of the constructors plus the pure-seed
#: helpers.
SEED_SINK_CALLEES = RNG_CONSTRUCTORS | frozenset(
    {
        "numpy.random.SeedSequence",
        "repro.pipeline.context.stream_seed",
    }
)

#: Instrument-factory method names of the metrics registry; a literal
#: first argument at such a call site is an instrumented metric name.
METRIC_METHODS = ("counter", "gauge", "histogram")

#: Lock-constructor callees recognized in ``__init__`` bodies.
LOCK_CONSTRUCTORS = frozenset(
    {
        "threading.Lock",
        "threading.RLock",
        "threading.Condition",
        "threading.Semaphore",
        "threading.BoundedSemaphore",
    }
)

#: HTTP route literals (the C601 harvest): ``/v1/...`` or ``/metrics``.
ROUTE_PATTERN = re.compile(r"^/(?:v[0-9]+(?:/[A-Za-z0-9_.\-]+)+|metrics)$")


@dataclass(frozen=True)
class CallSite:
    """One call expression, with everything project rules may ask of it."""

    callee: str | None
    line: int
    col: int
    symbol: str
    args: tuple[str | None, ...]
    const_args: tuple[bool, ...]
    string_args: tuple[str | None, ...]
    keywords: tuple[tuple[str, str | None], ...]
    in_loop: bool
    in_view_loop: bool
    loop_bound: tuple[str, ...]
    locks_held: tuple[str, ...]
    submit_kind: str | None
    submitted: str | None


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` read or write, with the lock set held there."""

    attr: str
    line: int
    col: int
    symbol: str
    locks_held: tuple[str, ...]


@dataclass(frozen=True)
class FunctionSummary:
    """Dataflow-relevant facts of one function or method."""

    qualname: str
    name: str
    class_name: str | None
    path: str
    params: tuple[str, ...]
    is_method: bool
    calls: tuple[CallSite, ...]
    rng_param_draws: tuple[str, ...]
    seed_sink_params: tuple[str, ...]
    metric_sink_params: tuple[str, ...]
    returned_callees: tuple[str, ...]
    assigns: tuple[tuple[str, str], ...]
    attr_writes: tuple[AttrAccess, ...]
    attr_reads: tuple[AttrAccess, ...]
    lock_acquisitions: tuple[tuple[str, int, int], ...]
    lock_pairs: tuple[tuple[str, str, int, int], ...]

    def effective_params(self) -> tuple[str, ...]:
        """Parameters as seen by a caller (``self``/``cls`` stripped)."""
        return self.params[1:] if self.is_method else self.params


@dataclass(frozen=True)
class ClassSummary:
    """One class's shared-state shape, inferred from ``__init__``."""

    qualname: str
    name: str
    path: str
    line: int
    init_attrs: tuple[str, ...]
    lock_attrs: tuple[str, ...]
    sqlite_attrs: tuple[str, ...]
    method_names: tuple[str, ...]


@dataclass(frozen=True)
class MetricLiteral:
    """A literal metric name at an instrument-factory call site."""

    name: str
    line: int
    col: int
    symbol: str


@dataclass(frozen=True)
class ModuleSummary:
    """Everything the project pass keeps of one file."""

    path: str
    module: str
    functions: tuple[FunctionSummary, ...]
    classes: tuple[ClassSummary, ...]
    route_literals: tuple[tuple[str, int, int], ...]
    flag_literals: tuple[tuple[str, int, int], ...]
    metric_literals: tuple[MetricLiteral, ...]


def module_of(path: str) -> str:
    """Dotted module name of a repo-relative path (``src/`` stripped)."""
    parts = path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _lock_name(expr: ast.expr) -> str | None:
    """The lock identity of a ``with`` item, if it looks like a lock."""
    if isinstance(expr, ast.Attribute) and "lock" in expr.attr.lower():
        return expr.attr
    if isinstance(expr, ast.Name) and "lock" in expr.id.lower():
        return expr.id
    return None


def _assigned_names(nodes: Sequence[ast.AST]) -> set[str]:
    """Names bound anywhere inside the given nodes."""
    bound: set[str] = set()
    for root in nodes:
        for node in ast.walk(root):
            if isinstance(node, ast.Name) and isinstance(
                node.ctx, (ast.Store, ast.Del)
            ):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                bound.add(node.name)
    return bound


class _Resolver:
    """Best-effort resolution of call targets to project qualnames."""

    def __init__(
        self, ctx: FileContext, module: str, module_defs: frozenset[str]
    ):
        self.ctx = ctx
        self.module = module
        self.module_defs = module_defs

    def callee(self, func: ast.expr, class_name: str | None) -> str | None:
        qualified = self.ctx.qualified(func)
        if qualified is None:
            return None
        parts = qualified.split(".")
        if parts[0] == "self" and class_name is not None and len(parts) == 2:
            return f"{self.module}.{class_name}.{parts[1]}"
        if len(parts) == 1 and parts[0] in self.module_defs:
            return f"{self.module}.{parts[0]}"
        return qualified


@dataclass
class _FunctionFacts:
    """Mutable accumulator the function walker fills in."""

    calls: list[CallSite] = field(default_factory=list)
    rng_draws: set[str] = field(default_factory=set)
    seed_params: set[str] = field(default_factory=set)
    metric_params: set[str] = field(default_factory=set)
    returned: list[str] = field(default_factory=list)
    assigns: list[tuple[str, str]] = field(default_factory=list)
    writes: list[AttrAccess] = field(default_factory=list)
    reads: list[AttrAccess] = field(default_factory=list)
    acquisitions: list[tuple[str, int, int]] = field(default_factory=list)
    pairs: list[tuple[str, str, int, int]] = field(default_factory=list)


def _arg_facts(
    call: ast.Call,
) -> tuple[
    tuple[str | None, ...], tuple[bool, ...], tuple[str | None, ...],
    tuple[tuple[str, str | None], ...],
]:
    """Identifier / constant / string-literal views of a call's arguments."""
    names: list[str | None] = []
    consts: list[bool] = []
    strings: list[str | None] = []
    for arg in call.args:
        names.append(arg.id if isinstance(arg, ast.Name) else None)
        consts.append(isinstance(arg, ast.Constant))
        strings.append(
            arg.value
            if isinstance(arg, ast.Constant) and isinstance(arg.value, str)
            else None
        )
    keywords = tuple(
        (kw.arg, kw.value.id if isinstance(kw.value, ast.Name) else None)
        for kw in call.keywords
        if kw.arg is not None
    )
    return tuple(names), tuple(consts), tuple(strings), keywords


def _scan_function(
    ctx: FileContext,
    fn: ast.FunctionDef | ast.AsyncFunctionDef,
    class_name: str | None,
    resolver: _Resolver,
) -> FunctionSummary:
    """Distill one function body into a :class:`FunctionSummary`."""
    arg_nodes = fn.args.posonlyargs + fn.args.args + fn.args.kwonlyargs
    params = tuple(a.arg for a in arg_nodes)
    is_method = class_name is not None and params[:1] in (("self",), ("cls",))
    param_set = frozenset(params)
    facts = _FunctionFacts()

    def handle_call(
        call: ast.Call,
        held: tuple[str, ...],
        loop_bound: tuple[str, ...],
        in_loop: bool,
        in_view: bool,
    ) -> None:
        callee = resolver.callee(call.func, class_name)
        names, consts, strings, keywords = _arg_facts(call)
        submit_kind: str | None = None
        submitted: str | None = None
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in SUBMIT_METHODS
        ):
            receiver = _receiver_name(call.func)
            if receiver is not None and any(
                token in receiver.lower() for token in EXECUTOR_NAMES
            ):
                submit_kind = call.func.attr
                if call.args:
                    submitted = resolver.callee(call.args[0], class_name)
        facts.calls.append(
            CallSite(
                callee=callee,
                line=call.lineno,
                col=call.col_offset,
                symbol=ctx.symbol(call),
                args=names,
                const_args=consts,
                string_args=strings,
                keywords=keywords,
                in_loop=in_loop,
                in_view_loop=in_view,
                loop_bound=loop_bound,
                locks_held=held,
                submit_kind=submit_kind,
                submitted=submitted,
            )
        )
        # Direct sinks feeding the dataflow fixpoints.
        if isinstance(call.func, ast.Attribute):
            receiver_node = call.func.value
            if (
                call.func.attr in RNG_DRAW_METHODS
                and isinstance(receiver_node, ast.Name)
                and receiver_node.id in param_set
            ):
                facts.rng_draws.add(receiver_node.id)
            if call.func.attr in METRIC_METHODS and call.args:
                first = call.args[0]
                if isinstance(first, ast.Name) and first.id in param_set:
                    facts.metric_params.add(first.id)
        if callee in SEED_SINK_CALLEES:
            for value in list(call.args) + [kw.value for kw in call.keywords]:
                if isinstance(value, ast.Name) and value.id in param_set:
                    facts.seed_params.add(value.id)

    def record_attr_stores(target: ast.expr, held: tuple[str, ...]) -> None:
        for node in ast.walk(target):
            if (
                isinstance(node, ast.Attribute)
                and isinstance(node.ctx, (ast.Store, ast.Del))
                and isinstance(node.value, ast.Name)
                and node.value.id == "self"
            ):
                facts.writes.append(
                    AttrAccess(
                        attr=node.attr,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=ctx.symbol(node),
                        locks_held=held,
                    )
                )

    def visit(
        node: ast.AST,
        held: tuple[str, ...],
        loop_bound: tuple[str, ...],
        in_loop: bool,
        in_view: bool,
    ) -> None:
        if isinstance(node, (ast.With, ast.AsyncWith)):
            inner_held = held
            for item in node.items:
                visit(
                    item.context_expr, inner_held, loop_bound, in_loop,
                    in_view,
                )
                lock = _lock_name(item.context_expr)
                if lock is not None:
                    line = item.context_expr.lineno
                    col = item.context_expr.col_offset
                    for previous in inner_held:
                        if previous != lock:
                            facts.pairs.append((previous, lock, line, col))
                    facts.acquisitions.append((lock, line, col))
                    if lock not in inner_held:
                        inner_held = inner_held + (lock,)
                if item.optional_vars is not None:
                    visit(
                        item.optional_vars, inner_held, loop_bound, in_loop,
                        in_view,
                    )
            for stmt in node.body:
                visit(stmt, inner_held, loop_bound, in_loop, in_view)
            return
        if isinstance(node, (ast.For, ast.AsyncFor)):
            visit(node.iter, held, loop_bound, in_loop, in_view)
            bound = set(loop_bound)
            bound |= _assigned_names([node.target])
            bound |= _assigned_names(list(node.body))
            view = in_view or is_view_loop(node.iter)
            visit(node.target, held, tuple(sorted(bound)), True, view)
            for stmt in node.body + node.orelse:
                visit(stmt, held, tuple(sorted(bound)), True, view)
            return
        if isinstance(node, ast.While):
            visit(node.test, held, loop_bound, in_loop, in_view)
            bound = set(loop_bound) | _assigned_names(list(node.body))
            for stmt in node.body + node.orelse:
                visit(stmt, held, tuple(sorted(bound)), True, in_view)
            return
        if isinstance(node, ast.Call):
            handle_call(node, held, loop_bound, in_loop, in_view)
        elif isinstance(node, ast.Assign):
            if (
                len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
            ):
                callee = resolver.callee(node.value.func, class_name)
                if callee is not None:
                    facts.assigns.append((node.targets[0].id, callee))
            for target in node.targets:
                record_attr_stores(target, held)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            record_attr_stores(node.target, held)
        elif isinstance(node, ast.Return) and isinstance(
            node.value, ast.Call
        ):
            callee = resolver.callee(node.value.func, class_name)
            if callee is not None:
                facts.returned.append(callee)
        elif (
            isinstance(node, ast.Attribute)
            and isinstance(node.ctx, ast.Load)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            facts.reads.append(
                AttrAccess(
                    attr=node.attr,
                    line=node.lineno,
                    col=node.col_offset,
                    symbol=ctx.symbol(node),
                    locks_held=held,
                )
            )
        for child in ast.iter_child_nodes(node):
            visit(child, held, loop_bound, in_loop, in_view)

    for stmt in fn.body:
        visit(stmt, (), (), False, False)

    prefix = (
        f"{resolver.module}.{class_name}." if class_name is not None
        else f"{resolver.module}."
    )
    return FunctionSummary(
        qualname=f"{prefix}{fn.name}",
        name=fn.name,
        class_name=class_name,
        path=ctx.path,
        params=params,
        is_method=is_method,
        calls=tuple(facts.calls),
        rng_param_draws=tuple(sorted(facts.rng_draws)),
        seed_sink_params=tuple(sorted(facts.seed_params)),
        metric_sink_params=tuple(sorted(facts.metric_params)),
        returned_callees=tuple(facts.returned),
        assigns=tuple(facts.assigns),
        attr_writes=tuple(facts.writes),
        attr_reads=tuple(facts.reads),
        lock_acquisitions=tuple(facts.acquisitions),
        lock_pairs=tuple(facts.pairs),
    )


def _scan_class(
    ctx: FileContext, node: ast.ClassDef, resolver: _Resolver
) -> ClassSummary:
    """Infer one class's shared-state shape from its ``__init__``."""
    init_attrs: set[str] = set()
    lock_attrs: set[str] = set()
    sqlite_attrs: set[str] = set()
    methods = [
        child.name
        for child in node.body
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    for child in node.body:
        if not isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if child.name != "__init__":
            continue
        for stmt in ast.walk(child):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (
                    isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                ):
                    continue
                init_attrs.add(target.attr)
                if isinstance(stmt.value, ast.Call):
                    callee = resolver.callee(stmt.value.func, node.name)
                    if callee in LOCK_CONSTRUCTORS:
                        lock_attrs.add(target.attr)
                    elif callee == "sqlite3.connect":
                        sqlite_attrs.add(target.attr)
    return ClassSummary(
        qualname=f"{resolver.module}.{node.name}",
        name=node.name,
        path=ctx.path,
        line=node.lineno,
        init_attrs=tuple(sorted(init_attrs)),
        lock_attrs=tuple(sorted(lock_attrs)),
        sqlite_attrs=tuple(sorted(sqlite_attrs)),
        method_names=tuple(methods),
    )


def _literal_harvest(
    ctx: FileContext,
) -> tuple[
    tuple[tuple[str, int, int], ...],
    tuple[tuple[str, int, int], ...],
    tuple[MetricLiteral, ...],
]:
    """Route, CLI-flag and metric-name literals of one file."""
    routes: list[tuple[str, int, int]] = []
    flags: list[tuple[str, int, int]] = []
    metrics: list[MetricLiteral] = []
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            if ROUTE_PATTERN.match(node.value):
                routes.append((node.value, node.lineno, node.col_offset))
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr == "add_argument":
            for arg in node.args:
                if (
                    isinstance(arg, ast.Constant)
                    and isinstance(arg.value, str)
                    and arg.value.startswith("--")
                ):
                    flags.append(
                        (arg.value, arg.lineno, arg.col_offset)
                    )
        elif node.func.attr in METRIC_METHODS:
            first: ast.expr | None = node.args[0] if node.args else None
            if first is None:
                first = ctx.keyword(node, "name")
            if isinstance(first, ast.Constant) and isinstance(
                first.value, str
            ):
                metrics.append(
                    MetricLiteral(
                        name=first.value,
                        line=node.lineno,
                        col=node.col_offset,
                        symbol=ctx.symbol(node),
                    )
                )
    return tuple(routes), tuple(flags), tuple(metrics)


def summarize_context(ctx: FileContext) -> ModuleSummary:
    """Distill one parsed file into its picklable summary."""
    module = module_of(ctx.path)
    module_defs = frozenset(
        node.name
        for node in ctx.tree.body
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        )
    )
    resolver = _Resolver(ctx, module, module_defs)
    functions: list[FunctionSummary] = []
    classes: list[ClassSummary] = []
    for node in ctx.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            functions.append(_scan_function(ctx, node, None, resolver))
        elif isinstance(node, ast.ClassDef):
            classes.append(_scan_class(ctx, node, resolver))
            for child in node.body:
                if isinstance(
                    child, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    functions.append(
                        _scan_function(ctx, child, node.name, resolver)
                    )
    routes, flags, metrics = _literal_harvest(ctx)
    return ModuleSummary(
        path=ctx.path,
        module=module,
        functions=tuple(functions),
        classes=tuple(classes),
        route_literals=routes,
        flag_literals=flags,
        metric_literals=metrics,
    )


def summarize_source(path: str, source: str) -> ModuleSummary | None:
    """Summarize one in-memory file; ``None`` when it does not parse."""
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError):
        return None
    return summarize_context(FileContext(path, source, tree))


class ProjectGraph:
    """The whole-program view the project rules consume.

    Holds every module summary keyed by path, a flat function index
    keyed by qualname (the call-graph nodes), the class index, and the
    non-Python artifacts (OpenAPI document, docs) the C-series rules
    compare code against.  The dataflow solution is computed once, on
    first use, and shared across rules.
    """

    def __init__(
        self,
        summaries: Sequence[ModuleSummary],
        artifacts: Mapping[str, str] | None = None,
    ):
        ordered = sorted(summaries, key=lambda s: s.path)
        self.modules: dict[str, ModuleSummary] = {
            summary.path: summary for summary in ordered
        }
        self.functions: dict[str, FunctionSummary] = {}
        self.classes: dict[str, ClassSummary] = {}
        for summary in ordered:
            for function in summary.functions:
                self.functions[function.qualname] = function
            for cls in summary.classes:
                self.classes[cls.qualname] = cls
        self.artifacts: dict[str, str] = dict(artifacts or {})
        self._dataflow: "DataflowResult | None" = None

    @classmethod
    def build(
        cls,
        summaries: Sequence[ModuleSummary],
        artifacts: Mapping[str, str] | None = None,
    ) -> "ProjectGraph":
        """Fold worker-extracted summaries into one graph."""
        return cls(summaries, artifacts)

    def artifact(self, path: str) -> str | None:
        """A checked-in artifact's text, if it was loaded."""
        return self.artifacts.get(path)

    def modules_under(self, *prefixes: str) -> Iterator[ModuleSummary]:
        """Module summaries whose path lives under any given prefix."""
        for path in sorted(self.modules):
            if any(
                path == p or path.startswith(p.rstrip("/") + "/")
                for p in prefixes
            ):
                yield self.modules[path]

    def functions_under(self, *prefixes: str) -> Iterator[FunctionSummary]:
        """Function summaries of the modules under the given prefixes."""
        for summary in self.modules_under(*prefixes):
            yield from summary.functions

    def dataflow(self) -> "DataflowResult":
        """The (memoized) fixpoint solution over this graph."""
        if self._dataflow is None:
            from .dataflow import solve

            self._dataflow = solve(self)
        return self._dataflow
