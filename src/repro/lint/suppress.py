"""Inline suppressions: ``# repro-lint: disable=RULE[,RULE…]``.

A finding is suppressed when its line carries a ``disable`` comment
naming its rule (or ``all``), when the previous line carries a
``disable-next-line`` comment, or when the file carries a file-level
``disable-file`` comment anywhere.  Comments are located with
:mod:`tokenize`, so directives inside string literals do not count.  A
justification may follow after `` -- `` and is strongly encouraged::

    rng = np.random.default_rng()  # repro-lint: disable=D102 -- fuzz only

    # repro-lint: disable-next-line=D106 -- pinned reference loop
    counts = arrival.sample_day(rng)

Unknown rule ids in a directive are themselves reported as findings
(rule ``X001``) — a typo in a suppression must not silently disable
nothing.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass
from typing import Iterable

from .rules import Finding, known_rule_ids

#: Directive grammar inside a comment.
_DIRECTIVE = re.compile(
    r"#\s*repro-lint:\s*(?P<kind>disable-next-line|disable-file|disable)"
    r"\s*=\s*(?P<rules>[A-Za-z0-9_,\s]+?)\s*(?:--\s*(?P<why>.*))?$"
)

#: Rule id reported for malformed/unknown suppression directives.
DIRECTIVE_RULE_ID = "X001"


@dataclass(frozen=True)
class Suppression:
    """One parsed directive: the rules it disables and where.

    ``line`` is the line the directive *covers* — for a
    ``disable-next-line`` comment on line N that is N+1.
    """

    line: int
    file_level: bool
    rules: frozenset[str]
    justification: str | None

    def covers(self, finding: Finding) -> bool:
        """Whether this directive suppresses the given finding."""
        if "all" not in self.rules and finding.rule not in self.rules:
            return False
        return self.file_level or finding.line == self.line


def parse_suppressions(
    path: str, source: str
) -> tuple[list[Suppression], list[Finding]]:
    """Extract directives from one file's comments.

    Returns the parsed suppressions plus X001 findings for directives
    naming unknown rule ids (typos must be loud).  Unreadable token
    streams (the driver flags syntax errors separately) yield nothing.
    """
    suppressions: list[Suppression] = []
    problems: list[Finding] = []
    known = known_rule_ids()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return [], []
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _DIRECTIVE.search(token.string)
        if match is None:
            if "repro-lint:" in token.string:
                problems.append(
                    _directive_finding(
                        path, token.start[0],
                        f"malformed repro-lint directive: {token.string!r}",
                    )
                )
            continue
        rules = frozenset(
            part.strip() for part in match.group("rules").split(",")
            if part.strip()
        )
        unknown = sorted(r for r in rules if r != "all" and r not in known)
        if unknown:
            problems.append(
                _directive_finding(
                    path, token.start[0],
                    f"suppression names unknown rule(s) {unknown}",
                )
            )
        valid = frozenset(r for r in rules if r == "all" or r in known)
        if valid:
            kind = match.group("kind")
            covered_line = token.start[0]
            if kind == "disable-next-line":
                covered_line += 1
            suppressions.append(
                Suppression(
                    line=covered_line,
                    file_level=kind == "disable-file",
                    rules=valid,
                    justification=match.group("why") or None,
                )
            )
    return suppressions, problems


def _directive_finding(path: str, line: int, message: str) -> Finding:
    return Finding(
        path=path,
        line=line,
        col=0,
        rule=DIRECTIVE_RULE_ID,
        severity="error",
        message=message,
        symbol="<module>",
    )


def apply_suppressions(
    findings: Iterable[Finding], suppressions: list[Suppression]
) -> tuple[list[Finding], int]:
    """Split findings into (kept, suppressed-count)."""
    kept: list[Finding] = []
    suppressed = 0
    for finding in findings:
        if any(s.covers(finding) for s in suppressions):
            suppressed += 1
        else:
            kept.append(finding)
    return kept, suppressed
