"""The file-level lint driver: discover, parse, check — optionally in parallel.

Files are independent work units (every rule sees exactly one file), so
the driver fans them out through the same audited executor abstraction
the pipeline uses (:func:`repro.pipeline.executors.make_executor`) —
eating our own P203 dogfood — and merges the per-file reports into one
globally sorted finding list, so serial and parallel runs print
byte-identical output.

A file that fails to parse is reported as one ``E999`` finding rather
than aborting the run: the linter must keep working while the tree is
mid-refactor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline, BaselineEntry
from .graph import ModuleSummary, ProjectGraph, summarize_source
from .rules import (
    FileContext,
    Finding,
    Rule,
    project_rules,
    run_project_rules,
    run_rules,
)
from .suppress import Suppression, apply_suppressions, parse_suppressions

#: Directories a bare run walks, relative to the repository root.
DEFAULT_ROOTS = ("src", "tools", "benchmarks")

#: Directory names never descended into.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", "output", ".git", ".repro-cache", "node_modules"}
)

#: Rule id of parse failures.
SYNTAX_RULE_ID = "E999"


@dataclass(frozen=True)
class FileReport:
    """Picklable outcome of linting one file."""

    path: str
    findings: tuple[Finding, ...]
    suppressed: int


@dataclass(frozen=True)
class FileOutcome:
    """Worker result: the per-file report plus the project-pass inputs.

    ``summary`` and ``suppressions`` are only populated when the run
    will execute the whole-program pass (a full default run); subtree
    and rule-filtered lints skip the extraction.  Everything here is
    picklable, so summaries ride the ordinary parallel fan-out and the
    parent folds them deterministically in sorted path order.
    """

    report: FileReport
    summary: ModuleSummary | None = None
    suppressions: tuple[Suppression, ...] = ()


@dataclass
class LintResult:
    """Merged outcome of one lint run.

    ``findings`` holds what is actionable *now* (suppressions and the
    baseline already applied); ``unbaselined_findings`` is the same list
    before baseline filtering, which ``--write-baseline`` snapshots.
    """

    root: str
    files: int
    findings: list[Finding]
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    unbaselined_findings: list[Finding] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Summary counters of the run (feeds both report formats)."""
        return {
            "files": self.files,
            "findings": len(self.findings),
            "errors": sum(
                1 for f in self.findings if f.severity == "error"
            ),
            "warnings": sum(
                1 for f in self.findings if f.severity == "warning"
            ),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": len(self.stale_baseline),
        }

    def failed(self, fail_on: str = "warning") -> bool:
        """Whether the run should exit non-zero.

        ``fail_on="warning"`` (the default) fails on any finding;
        ``fail_on="error"`` tolerates warnings.  Stale baseline entries
        always fail — the baseline must only ever shrink.
        """
        if self.stale_baseline:
            return True
        if fail_on == "error":
            return any(f.severity == "error" for f in self.findings)
        return bool(self.findings)


def lint_source(
    path: str, source: str, rules: Sequence[Rule] | None = None
) -> FileReport:
    """Lint one in-memory file; the unit every test fixture drives.

    ``path`` is the repository-relative path the rules scope on — tests
    pass virtual paths like ``"src/repro/core/x.py"`` to place a snippet
    inside or outside a rule's scope.
    """
    path = path.replace("\\", "/")
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        reason = getattr(exc, "msg", None) or str(exc)
        return FileReport(
            path=path,
            findings=(
                Finding(
                    path=path,
                    line=getattr(exc, "lineno", None) or 1,
                    col=(getattr(exc, "offset", None) or 1) - 1,
                    rule=SYNTAX_RULE_ID,
                    severity="error",
                    message=f"file does not parse: {reason}",
                ),
            ),
            suppressed=0,
        )
    ctx = FileContext(path, source, tree)
    findings = run_rules(ctx, rules)
    suppressions, directive_problems = parse_suppressions(path, source)
    kept, suppressed = apply_suppressions(findings, suppressions)
    return FileReport(
        path=path,
        findings=tuple(sorted(kept + directive_problems)),
        suppressed=suppressed,
    )


def _lint_file(payload: tuple[str, str, bool]) -> FileOutcome:
    """Worker kernel: lint one on-disk file (module-level, picklable)."""
    root, rel, want_summary = payload
    source = (Path(root) / rel).read_text(encoding="utf-8")
    report = lint_source(rel, source)
    if not want_summary:
        return FileOutcome(report=report)
    suppressions, _ = parse_suppressions(rel, source)
    return FileOutcome(
        report=report,
        summary=summarize_source(rel, source),
        suppressions=tuple(suppressions),
    )


def discover_files(
    root: Path, paths: Sequence[str] | None = None
) -> list[str]:
    """Python files to lint, as sorted repo-relative POSIX paths.

    ``paths`` may name files or directories (relative to ``root`` or
    absolute); ``None`` walks :data:`DEFAULT_ROOTS`.  Unknown paths
    raise ``FileNotFoundError`` — a typo must not silently lint nothing.
    """
    root = root.resolve()
    targets = list(paths) if paths else [
        r for r in DEFAULT_ROOTS if (root / r).is_dir()
    ]
    found: set[str] = set()
    for target in targets:
        candidate = Path(target)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            found.add(candidate.resolve().relative_to(root).as_posix())
        elif candidate.is_dir():
            for file in candidate.rglob("*.py"):
                if EXCLUDED_DIRS.intersection(file.parts):
                    continue
                found.add(file.resolve().relative_to(root).as_posix())
        else:
            raise FileNotFoundError(f"no such lint target: {target}")
    return sorted(found)


def _project_artifacts(root: Path) -> dict[str, str]:
    """Text of every artifact a registered project rule compares against.

    Missing artifacts are simply absent — a rule that needs one treats
    absence as "nothing to check", so exported subtrees and test
    fixtures without the documents lint clean.
    """
    texts: dict[str, str] = {}
    for rule in project_rules():
        for rel in rule.artifacts:
            if rel in texts:
                continue
            candidate = root / rel
            if candidate.is_file():
                texts[rel] = candidate.read_text(encoding="utf-8")
    return texts


def _run_project_pass(
    root: Path, outcomes: Sequence[FileOutcome]
) -> tuple[list[Finding], int]:
    """Fold summaries into a graph and run the whole-program rules.

    Runs serially in the parent process over summaries sorted by path,
    so serial and parallel drivers produce byte-identical output.
    Inline suppressions of the file a finding lands in apply exactly as
    they do to per-file findings.
    """
    summaries = [o.summary for o in outcomes if o.summary is not None]
    graph = ProjectGraph.build(summaries, _project_artifacts(root))
    raw = run_project_rules(graph)
    by_path: dict[str, tuple[Suppression, ...]] = {
        o.report.path: o.suppressions for o in outcomes
    }
    kept: list[Finding] = []
    suppressed = 0
    for finding in raw:
        file_kept, file_suppressed = apply_suppressions(
            [finding], list(by_path.get(finding.path, ()))
        )
        kept.extend(file_kept)
        suppressed += file_suppressed
    return kept, suppressed


def lint_paths(
    root: str | Path,
    paths: Sequence[str] | None = None,
    jobs: int = 1,
    baseline: Baseline | None = None,
    rules: Iterable[Rule] | None = None,
) -> LintResult:
    """Lint a tree and merge the per-file reports into one result.

    ``jobs > 1`` fans files across worker processes; output is
    byte-identical to the serial run because findings carry their own
    ordering.  ``rules`` (tests only) bypasses the per-file default
    registry lookup — parallel runs always use the full default pack.

    A full default run (no path filter, no rule filter) additionally
    executes the whole-program pass: workers extract per-file summaries
    alongside their reports, the parent folds them into a
    :class:`~repro.lint.graph.ProjectGraph` and the W/T/C project rules
    run serially over it.
    """
    from ..pipeline.executors import make_executor

    root = Path(root).resolve()
    files = discover_files(root, paths)
    want_project = paths is None and rules is None
    payloads = [(str(root), rel, want_project) for rel in files]
    if rules is not None or jobs == 1:
        rule_list = list(rules) if rules is not None else None
        outcomes = []
        for root_str, rel, want_summary in payloads:
            source = (Path(root_str) / rel).read_text(encoding="utf-8")
            report = lint_source(rel, source, rule_list)
            if want_summary:
                suppressions, _ = parse_suppressions(rel, source)
                outcomes.append(
                    FileOutcome(
                        report=report,
                        summary=summarize_source(rel, source),
                        suppressions=tuple(suppressions),
                    )
                )
            else:
                outcomes.append(FileOutcome(report=report))
    else:
        with make_executor(jobs) as executor:
            outcomes = executor.map(_lint_file, payloads)
    findings = sorted(
        f for outcome in outcomes for f in outcome.report.findings
    )
    suppressed = sum(o.report.suppressed for o in outcomes)
    if want_project:
        project_findings, project_suppressed = _run_project_pass(
            root, outcomes
        )
        findings = sorted(findings + project_findings)
        suppressed += project_suppressed
    result = LintResult(
        root=root.as_posix(),
        files=len(files),
        findings=findings,
        suppressed=suppressed,
        unbaselined_findings=list(findings),
    )
    if baseline is not None:
        kept, baselined, stale = baseline.apply(findings)
        result.findings = kept
        result.baselined = baselined
        result.stale_baseline = stale
    return result
