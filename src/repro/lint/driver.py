"""The file-level lint driver: discover, parse, check — optionally in parallel.

Files are independent work units (every rule sees exactly one file), so
the driver fans them out through the same audited executor abstraction
the pipeline uses (:func:`repro.pipeline.executors.make_executor`) —
eating our own P203 dogfood — and merges the per-file reports into one
globally sorted finding list, so serial and parallel runs print
byte-identical output.

A file that fails to parse is reported as one ``E999`` finding rather
than aborting the run: the linter must keep working while the tree is
mid-refactor.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .baseline import Baseline, BaselineEntry
from .rules import FileContext, Finding, Rule, run_rules
from .suppress import apply_suppressions, parse_suppressions

#: Directories a bare run walks, relative to the repository root.
DEFAULT_ROOTS = ("src", "tools", "benchmarks")

#: Directory names never descended into.
EXCLUDED_DIRS = frozenset(
    {"__pycache__", "output", ".git", ".repro-cache", "node_modules"}
)

#: Rule id of parse failures.
SYNTAX_RULE_ID = "E999"


@dataclass(frozen=True)
class FileReport:
    """Picklable outcome of linting one file."""

    path: str
    findings: tuple[Finding, ...]
    suppressed: int


@dataclass
class LintResult:
    """Merged outcome of one lint run.

    ``findings`` holds what is actionable *now* (suppressions and the
    baseline already applied); ``unbaselined_findings`` is the same list
    before baseline filtering, which ``--write-baseline`` snapshots.
    """

    root: str
    files: int
    findings: list[Finding]
    suppressed: int = 0
    baselined: int = 0
    stale_baseline: list[BaselineEntry] = field(default_factory=list)
    unbaselined_findings: list[Finding] = field(default_factory=list)

    def counts(self) -> dict[str, int]:
        """Summary counters of the run (feeds both report formats)."""
        return {
            "files": self.files,
            "findings": len(self.findings),
            "errors": sum(
                1 for f in self.findings if f.severity == "error"
            ),
            "warnings": sum(
                1 for f in self.findings if f.severity == "warning"
            ),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "stale_baseline": len(self.stale_baseline),
        }

    def failed(self, fail_on: str = "warning") -> bool:
        """Whether the run should exit non-zero.

        ``fail_on="warning"`` (the default) fails on any finding;
        ``fail_on="error"`` tolerates warnings.  Stale baseline entries
        always fail — the baseline must only ever shrink.
        """
        if self.stale_baseline:
            return True
        if fail_on == "error":
            return any(f.severity == "error" for f in self.findings)
        return bool(self.findings)


def lint_source(
    path: str, source: str, rules: Sequence[Rule] | None = None
) -> FileReport:
    """Lint one in-memory file; the unit every test fixture drives.

    ``path`` is the repository-relative path the rules scope on — tests
    pass virtual paths like ``"src/repro/core/x.py"`` to place a snippet
    inside or outside a rule's scope.
    """
    try:
        tree = ast.parse(source)
    except (SyntaxError, ValueError) as exc:
        reason = getattr(exc, "msg", None) or str(exc)
        return FileReport(
            path=path,
            findings=(
                Finding(
                    path=path,
                    line=getattr(exc, "lineno", None) or 1,
                    col=(getattr(exc, "offset", None) or 1) - 1,
                    rule=SYNTAX_RULE_ID,
                    severity="error",
                    message=f"file does not parse: {reason}",
                ),
            ),
            suppressed=0,
        )
    ctx = FileContext(path, source, tree)
    findings = run_rules(ctx, rules)
    suppressions, directive_problems = parse_suppressions(path, source)
    kept, suppressed = apply_suppressions(findings, suppressions)
    return FileReport(
        path=path,
        findings=tuple(sorted(kept + directive_problems)),
        suppressed=suppressed,
    )


def _lint_file(payload: tuple[str, str]) -> FileReport:
    """Worker kernel: lint one on-disk file (module-level, picklable)."""
    root, rel = payload
    source = (Path(root) / rel).read_text(encoding="utf-8")
    return lint_source(rel, source)


def discover_files(
    root: Path, paths: Sequence[str] | None = None
) -> list[str]:
    """Python files to lint, as sorted repo-relative POSIX paths.

    ``paths`` may name files or directories (relative to ``root`` or
    absolute); ``None`` walks :data:`DEFAULT_ROOTS`.  Unknown paths
    raise ``FileNotFoundError`` — a typo must not silently lint nothing.
    """
    root = root.resolve()
    targets = list(paths) if paths else [
        r for r in DEFAULT_ROOTS if (root / r).is_dir()
    ]
    found: set[str] = set()
    for target in targets:
        candidate = Path(target)
        if not candidate.is_absolute():
            candidate = root / candidate
        if candidate.is_file():
            found.add(candidate.resolve().relative_to(root).as_posix())
        elif candidate.is_dir():
            for file in candidate.rglob("*.py"):
                if EXCLUDED_DIRS.intersection(file.parts):
                    continue
                found.add(file.resolve().relative_to(root).as_posix())
        else:
            raise FileNotFoundError(f"no such lint target: {target}")
    return sorted(found)


def lint_paths(
    root: str | Path,
    paths: Sequence[str] | None = None,
    jobs: int = 1,
    baseline: Baseline | None = None,
    rules: Iterable[Rule] | None = None,
) -> LintResult:
    """Lint a tree and merge the per-file reports into one result.

    ``jobs > 1`` fans files across worker processes; output is
    byte-identical to the serial run because findings carry their own
    ordering.  ``rules`` (tests only) bypasses the per-file default
    registry lookup — parallel runs always use the full default pack.
    """
    from ..pipeline.executors import make_executor

    root = Path(root).resolve()
    files = discover_files(root, paths)
    payloads = [(str(root), rel) for rel in files]
    if rules is not None or jobs == 1:
        rule_list = list(rules) if rules is not None else None
        reports = [
            lint_source(
                rel, (Path(root_str) / rel).read_text(encoding="utf-8"),
                rule_list,
            )
            for root_str, rel in payloads
        ]
    else:
        with make_executor(jobs) as executor:
            reports = executor.map(_lint_file, payloads)
    findings = sorted(f for report in reports for f in report.findings)
    suppressed = sum(report.suppressed for report in reports)
    result = LintResult(
        root=str(root),
        files=len(files),
        findings=findings,
        suppressed=suppressed,
        unbaselined_findings=list(findings),
    )
    if baseline is not None:
        kept, baselined, stale = baseline.apply(findings)
        result.findings = kept
        result.baselined = baselined
        result.stale_baseline = stale
    return result
