"""Prometheus text exposition over the metrics registry.

The live half of the metrics pipeline: where :mod:`repro.obs.sinks`
persists the final snapshot into ``manifest.json``, this module renders
the *current* snapshot in the Prometheus text exposition format
(version 0.0.4) so an operator can scrape a multi-hour campaign or a
running ``/v1`` server.  Three pieces, all standard library only:

* :func:`render_exposition` — snapshot → exposition text.  Counters map
  to ``repro_<name>_total``, gauges to ``repro_<name>``, histograms to
  the classic ``_bucket``/``_sum``/``_count`` triple with the frexp
  power-of-two buckets translated to cumulative ``le`` bounds
  (``le = 2^exponent``; exponents too large for a float fold into
  ``+Inf``).  Label sets render sorted, so output is byte-stable for
  identical registry states.
* :func:`parse_exposition` — a dependency-free validator of exposition
  text (used by the CI smoke and the tests; it checks ``TYPE`` lines,
  sample syntax and the histogram cumulativity invariants without
  needing a prometheus client).
* :class:`MetricsSidecar` — a daemon-thread HTTP server exposing
  ``GET /metrics`` for batch runs (``repro-traffic generate|campaign
  --metrics-port``); the serve stack mounts the same renderer on its own
  ``/metrics`` route instead.

Exposition is read-only over the out-of-band registry, so scraping — or
never scraping — cannot change a run's outputs.
"""

from __future__ import annotations

import math
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Callable, Mapping

from .metrics import MetricsRegistry, parse_identity

#: Content type of the text exposition format served at ``/metrics``.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

#: Prefix of every exposed metric family.
NAME_PREFIX = "repro_"


class ExpositionError(ValueError):
    """Raised when exposition text does not parse or violates invariants."""


_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_]")
_FAMILY_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_PAIR = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>.*)"$')


def metric_name(name: str) -> str:
    """Prometheus family name of a registry instrument name."""
    return NAME_PREFIX + _INVALID_NAME_CHARS.sub("_", name)


def _escape_label(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _render_labels(labels: Mapping[str, str] | None, extra: str = "") -> str:
    parts = [
        f'{key}="{_escape_label(labels[key])}"' for key in sorted(labels or {})
    ]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _format_value(value: Any) -> str:
    if value is None:
        return "NaN"
    number = float(value)
    if math.isinf(number):
        return "+Inf" if number > 0 else "-Inf"
    if math.isnan(number):
        return "NaN"
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _le_bound(exponent: int) -> float:
    """Upper bound of a frexp bucket: ``2^exponent`` (``inf`` on overflow)."""
    try:
        return math.ldexp(1.0, int(exponent))
    except OverflowError:
        return math.inf


def render_exposition(snapshot: Mapping[str, Any]) -> str:
    """Render a :meth:`MetricsRegistry.snapshot` as exposition text.

    Families are emitted in sorted exposed-name order, each with one
    ``# HELP``/``# TYPE`` header followed by its series in sorted label
    order.  Unset gauges (value ``None``) are skipped.  Histogram buckets
    are cumulative over ascending ``le`` bounds and always close with the
    ``+Inf`` bucket equal to ``_count``, as the format requires.
    """
    families: dict[str, list[str]] = {}
    types: dict[str, str] = {}

    for identity, value in snapshot.get("counters", {}).items():
        name, labels = parse_identity(identity)
        family = metric_name(name) + "_total"
        types[family] = "counter"
        families.setdefault(family, []).append(
            f"{family}{_render_labels(labels)} {_format_value(value)}"
        )

    for identity, value in snapshot.get("gauges", {}).items():
        if value is None:
            continue
        name, labels = parse_identity(identity)
        family = metric_name(name)
        types[family] = "gauge"
        families.setdefault(family, []).append(
            f"{family}{_render_labels(labels)} {_format_value(value)}"
        )

    for identity, entry in snapshot.get("histograms", {}).items():
        name, labels = parse_identity(identity)
        family = metric_name(name)
        types[family] = "histogram"
        lines = families.setdefault(family, [])
        count = int(entry.get("count", 0))
        cumulative = 0
        bounds: dict[float, int] = {}
        for exponent, bucket_count in entry.get("buckets") or []:
            bound = _le_bound(exponent)
            bounds[bound] = bounds.get(bound, 0) + int(bucket_count)
        for bound in sorted(b for b in bounds if not math.isinf(b)):
            cumulative += bounds[bound]
            le = 'le="' + _format_value(bound) + '"'
            lines.append(
                f"{family}_bucket{_render_labels(labels, le)} {cumulative}"
            )
        lines.append(
            f"{family}_bucket" + _render_labels(labels, 'le="+Inf"')
            + f" {count}"
        )
        lines.append(
            f"{family}_sum{_render_labels(labels)}"
            f" {_format_value(entry.get('sum', 0.0))}"
        )
        lines.append(f"{family}_count{_render_labels(labels)} {count}")

    out: list[str] = []
    for family in sorted(families):
        out.append(f"# HELP {family} repro metric {family}")
        out.append(f"# TYPE {family} {types[family]}")
        out.extend(families[family])
    return "\n".join(out) + "\n" if out else ""


def registry_exposition(registry: MetricsRegistry) -> str:
    """Convenience: render a registry's current snapshot."""
    return render_exposition(registry.snapshot())


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        raise ExpositionError(f"unparsable sample value {text!r}") from None


def parse_exposition(text: str) -> dict[str, dict[str, Any]]:
    """Parse and validate exposition text; returns per-family summaries.

    Checks, dependency-free, what a Prometheus scraper would: ``# TYPE``
    declared once per family and before its samples, well-formed sample
    and label syntax, parseable values, no duplicate series, and for
    histograms the cumulativity invariants (non-decreasing buckets,
    mandatory ``+Inf`` bucket matching ``_count``, a ``_sum`` sample).
    Returns ``{family: {"type": ..., "samples": ...}}``; raises
    :class:`ExpositionError` on any violation.
    """
    types: dict[str, str] = {}
    samples: dict[str, list[tuple[dict[str, str], float]]] = {}
    seen_series: set[str] = set()

    def family_of(sample_name: str) -> str:
        if types.get(sample_name):
            return sample_name
        for suffix in ("_bucket", "_sum", "_count"):
            if sample_name.endswith(suffix):
                base = sample_name[: -len(suffix)]
                if types.get(base) == "histogram":
                    return base
        return sample_name

    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.rstrip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ExpositionError(f"line {number}: malformed comment {raw!r}")
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary", "untyped",
                ):
                    raise ExpositionError(
                        f"line {number}: malformed TYPE line {raw!r}"
                    )
                name = parts[2]
                if not _FAMILY_NAME.match(name):
                    raise ExpositionError(
                        f"line {number}: invalid family name {name!r}"
                    )
                if name in types:
                    raise ExpositionError(
                        f"line {number}: duplicate TYPE for {name!r}"
                    )
                if name in samples:
                    raise ExpositionError(
                        f"line {number}: TYPE for {name!r} after its samples"
                    )
                types[name] = parts[3]
            continue
        match = _SAMPLE_LINE.match(line)
        if match is None:
            raise ExpositionError(f"line {number}: malformed sample {raw!r}")
        labels: dict[str, str] = {}
        if match.group("labels"):
            for pair in match.group("labels").split(","):
                pair_match = _LABEL_PAIR.match(pair.strip())
                if pair_match is None:
                    raise ExpositionError(
                        f"line {number}: malformed label pair {pair!r}"
                    )
                if pair_match.group("name") in labels:
                    raise ExpositionError(
                        f"line {number}: duplicate label "
                        f"{pair_match.group('name')!r}"
                    )
                labels[pair_match.group("name")] = pair_match.group("value")
        value = _parse_value(match.group("value"))
        sample_name = match.group("name")
        family = family_of(sample_name)
        if family not in types:
            raise ExpositionError(
                f"line {number}: sample {sample_name!r} has no TYPE line"
            )
        series = sample_name + repr(sorted(labels.items()))
        if series in seen_series:
            raise ExpositionError(
                f"line {number}: duplicate series {sample_name!r} "
                f"with labels {labels!r}"
            )
        seen_series.add(series)
        samples.setdefault(family, []).append((labels, value))
        samples.setdefault(f"__name__:{sample_name}", []).append(
            (labels, value)
        )

    result: dict[str, dict[str, Any]] = {}
    for family, family_type in types.items():
        family_samples = samples.get(family, [])
        if family_type == "histogram":
            _check_histogram(family, samples)
        result[family] = {
            "type": family_type,
            "samples": len(family_samples),
        }
    return result


def _check_histogram(
    family: str, samples: dict[str, list[tuple[dict[str, str], float]]]
) -> None:
    """Enforce bucket cumulativity / ``+Inf`` / ``_sum`` invariants."""
    buckets = samples.get(f"__name__:{family}_bucket", [])
    counts = samples.get(f"__name__:{family}_count", [])
    sums = samples.get(f"__name__:{family}_sum", [])
    if not buckets:
        raise ExpositionError(f"histogram {family!r} has no _bucket samples")
    if not counts or not sums:
        raise ExpositionError(
            f"histogram {family!r} is missing _count or _sum samples"
        )

    def series_key(labels: Mapping[str, str]) -> str:
        return repr(sorted((k, v) for k, v in labels.items() if k != "le"))

    by_series: dict[str, list[tuple[float, float]]] = {}
    for labels, value in buckets:
        if "le" not in labels:
            raise ExpositionError(
                f"histogram {family!r} bucket sample without le label"
            )
        by_series.setdefault(series_key(labels), []).append(
            (_parse_value(labels["le"]), value)
        )
    count_by_series = {series_key(l): v for l, v in counts}
    for key, entries in by_series.items():
        entries.sort(key=lambda pair: pair[0])
        previous = -math.inf
        for bound, value in entries:
            if value < previous:
                raise ExpositionError(
                    f"histogram {family!r} buckets are not cumulative"
                )
            previous = value
        last_bound, last_value = entries[-1]
        if not math.isinf(last_bound):
            raise ExpositionError(
                f"histogram {family!r} series is missing the +Inf bucket"
            )
        if key in count_by_series and count_by_series[key] != last_value:
            raise ExpositionError(
                f"histogram {family!r} _count disagrees with +Inf bucket"
            )


class _MetricsHandler(BaseHTTPRequestHandler):
    """Request handler of the sidecar: ``GET /metrics`` only, silent logs."""

    server: "_SidecarServer"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        """Serve the current exposition or 404 for any other path."""
        if self.path.partition("?")[0] != "/metrics":
            self.send_error(404, "not found")
            return
        try:
            body = self.server.exposition().encode("utf-8")
        except RuntimeError:
            # Registry mutated mid-snapshot by the run thread; the next
            # scrape will see a consistent state.
            self.send_error(503, "snapshot in progress")
            return
        self.send_response(200)
        self.send_header("Content-Type", CONTENT_TYPE)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        """Never write access noise to stderr from the sidecar."""


class _SidecarServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, snapshot_fn: Callable[[], Mapping[str, Any]]):
        super().__init__(address, _MetricsHandler)
        self._snapshot_fn = snapshot_fn

    def exposition(self) -> str:
        return render_exposition(self._snapshot_fn())


class MetricsSidecar:
    """Background ``/metrics`` endpoint for batch runs.

    Serves the live exposition of ``snapshot_fn()`` (typically
    ``telemetry.metrics.snapshot``) from a daemon thread; pass ``port=0``
    to bind an ephemeral port (read it back from :attr:`port`).  Purely
    read-only over the registry — starting, scraping or never starting the
    sidecar cannot change a run's outputs.
    """

    def __init__(
        self,
        snapshot_fn: Callable[[], Mapping[str, Any]],
        port: int,
        host: str = "127.0.0.1",
    ):
        self._server = _SidecarServer((host, port), snapshot_fn)
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="repro-metrics-sidecar",
            daemon=True,
        )
        self._thread.start()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        return int(self._server.server_address[1])

    def close(self) -> None:
        """Stop serving and join the sidecar thread (idempotent)."""
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5.0)


def _main(argv: list[str] | None = None) -> int:
    """``python -m repro.obs.expose [--quiet] <file|->``: validate text.

    Exit codes: ``0`` valid exposition, ``1`` invalid, ``2`` usage error —
    the same contract as ``python -m repro.obs.schema``.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.expose",
        description="Validate Prometheus text exposition (file or '-').",
    )
    parser.add_argument("path", help="exposition text file, or - for stdin")
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the success line"
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        return 2 if exc.code else 0
    try:
        if options.path == "-":
            text = sys.stdin.read()
        else:
            text = open(options.path, encoding="utf-8").read()
        families = parse_exposition(text)
    except (OSError, ExpositionError) as exc:
        print(f"invalid exposition: {exc}", file=sys.stderr)
        return 1
    if not families:
        print("invalid exposition: no metric families", file=sys.stderr)
        return 1
    if not options.quiet:
        total = sum(entry["samples"] for entry in families.values())
        print(f"valid exposition: {len(families)} families, {total} samples")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(_main())
