"""Run telemetry: hierarchical spans, metrics, JSONL events, manifests.

The observability layer of the library.  One :class:`Telemetry` object
accompanies a run and collects

* **spans** — nested timed regions (run → stage → executor → worker →
  unit/chunk) with monotonic wall/CPU durations and structured attributes
  (:mod:`repro.obs.spans`);
* **metrics** — counters, gauges and histograms incremented at the hot
  seams: artifact-cache hits/misses/bytes, generator session/chunk
  throughput, executor worker utilization, fidelity-gate verdicts
  (:mod:`repro.obs.metrics`), exposed live in the Prometheus text format
  (:mod:`repro.obs.expose`);
* **sinks** — a line-delimited ``events.jsonl`` stream plus a per-run
  ``manifest.json`` (seed, trace id, git sha, config digest, stage
  timings, metric snapshot), validated by the checked-in schema
  (:mod:`repro.obs.sinks`, :mod:`repro.obs.schema`) and rendered back by
  ``repro-traffic report`` (:mod:`repro.obs.report`);
* **progress** — for sharded campaigns, an atomically-rewritten
  ``progress.json`` with EWMA rates and an ETA, plus heartbeat events,
  tailed live by ``repro-traffic report --follow``
  (:mod:`repro.obs.progress`).

Telemetry is strictly out-of-band — identical seeds produce byte-identical
session tables and cache keys whether it is enabled or not — and the
package is dependency-free (standard library only).  :data:`NULL_TELEMETRY`
is the falsy do-nothing instance used when nothing was configured.
"""

from .expose import (
    CONTENT_TYPE,
    ExpositionError,
    MetricsSidecar,
    parse_exposition,
    registry_exposition,
    render_exposition,
)
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .progress import (
    PROGRESS_FILENAME,
    ProgressError,
    ProgressTracker,
    load_progress,
)
from .report import follow_run, render_manifest, render_run
from .schema import SchemaError, validate_event, validate_events_file
from .sinks import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    JsonlSink,
    SinkError,
    load_manifest,
    read_events,
)
from .spans import SPAN_KINDS, ActiveSpan, SpanError, SpanRecord
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry, TelemetryError

__all__ = [
    "ActiveSpan",
    "CONTENT_TYPE",
    "Counter",
    "EVENTS_FILENAME",
    "ExpositionError",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MANIFEST_FILENAME",
    "MetricsError",
    "MetricsRegistry",
    "MetricsSidecar",
    "NULL_TELEMETRY",
    "NullMetricsRegistry",
    "NullTelemetry",
    "PROGRESS_FILENAME",
    "ProgressError",
    "ProgressTracker",
    "SPAN_KINDS",
    "SchemaError",
    "SinkError",
    "SpanError",
    "SpanRecord",
    "Telemetry",
    "TelemetryError",
    "follow_run",
    "load_manifest",
    "load_progress",
    "parse_exposition",
    "read_events",
    "registry_exposition",
    "render_exposition",
    "render_manifest",
    "render_run",
    "validate_event",
    "validate_events_file",
]
