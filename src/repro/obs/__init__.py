"""Run telemetry: hierarchical spans, metrics, JSONL events, manifests.

The observability layer of the library.  One :class:`Telemetry` object
accompanies a run and collects

* **spans** — nested timed regions (run → stage → executor → worker →
  unit/chunk) with monotonic wall/CPU durations and structured attributes
  (:mod:`repro.obs.spans`);
* **metrics** — counters, gauges and histograms incremented at the hot
  seams: artifact-cache hits/misses/bytes, generator session/chunk
  throughput, executor worker utilization, fidelity-gate verdicts
  (:mod:`repro.obs.metrics`);
* **sinks** — a line-delimited ``events.jsonl`` stream plus a per-run
  ``manifest.json`` (seed, git sha, config digest, stage timings, metric
  snapshot), validated by the checked-in schema
  (:mod:`repro.obs.sinks`, :mod:`repro.obs.schema`) and rendered back by
  ``repro-traffic report`` (:mod:`repro.obs.report`).

Telemetry is strictly out-of-band — identical seeds produce byte-identical
session tables and cache keys whether it is enabled or not — and the
package is dependency-free (standard library only).  :data:`NULL_TELEMETRY`
is the falsy do-nothing instance used when nothing was configured.
"""

from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullMetricsRegistry,
)
from .report import render_manifest, render_run
from .schema import SchemaError, validate_event, validate_events_file
from .sinks import (
    EVENTS_FILENAME,
    MANIFEST_FILENAME,
    JsonlSink,
    SinkError,
    load_manifest,
    read_events,
)
from .spans import SPAN_KINDS, ActiveSpan, SpanError, SpanRecord
from .telemetry import NULL_TELEMETRY, NullTelemetry, Telemetry, TelemetryError

__all__ = [
    "ActiveSpan",
    "Counter",
    "EVENTS_FILENAME",
    "Gauge",
    "Histogram",
    "JsonlSink",
    "MANIFEST_FILENAME",
    "MetricsError",
    "MetricsRegistry",
    "NULL_TELEMETRY",
    "NullMetricsRegistry",
    "NullTelemetry",
    "SPAN_KINDS",
    "SchemaError",
    "SinkError",
    "SpanError",
    "SpanRecord",
    "Telemetry",
    "TelemetryError",
    "load_manifest",
    "read_events",
    "render_manifest",
    "render_run",
    "validate_event",
    "validate_events_file",
]
