"""Live campaign progress: atomic ``progress.json`` plus heartbeat events.

A multi-hour sharded campaign (the paper's 282k BS × 45 day footprint
extrapolates to ~46 h) needs something between "stare at stdout" and
"wait for the manifest": this module gives the driver a
:class:`ProgressTracker` that, after every dispatch wave,

* rewrites ``<telemetry-dir>/progress.json`` **atomically** (write to a
  ``.tmp-`` sibling, then ``os.replace``) so a tailer — human, the
  ``report --follow`` subcommand, or a dashboard — never reads a torn
  file;
* emits a ``heartbeat`` event into ``events.jsonl`` through the owning
  telemetry, schema-validated like every other event.

Rates are EWMA-smoothed (recent waves dominate, early warm-up noise
decays) and the ETA is derived from the smoothed shard rate.  Everything
here is strictly out-of-band: the tracker only *observes* counts the
driver already has, so enabling or disabling progress tracking cannot
change a campaign's aggregates byte for byte.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .telemetry import Telemetry

#: File name of the live progress snapshot inside a telemetry directory.
PROGRESS_FILENAME = "progress.json"

#: Format tag stamped into every progress snapshot.
PROGRESS_SCHEMA = "repro-campaign-progress/1"

#: Smoothing factor of the rate EWMA (weight of the newest wave).
DEFAULT_EWMA_ALPHA = 0.3


class ProgressError(OSError):
    """Raised when a progress snapshot cannot be read."""


def load_progress(directory: str | Path) -> dict[str, Any]:
    """Read ``progress.json`` back from a telemetry directory."""
    path = Path(directory) / PROGRESS_FILENAME
    try:
        payload = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ProgressError(f"cannot read progress at {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProgressError(f"progress at {path} is not a JSON object")
    return payload


class ProgressTracker:
    """Per-wave progress observer of one sharded campaign run.

    Parameters
    ----------
    telemetry:
        The run's telemetry.  A falsy (null) telemetry makes the tracker
        fully inert; a telemetry without a directory still emits
        heartbeat events in-memory semantics (discarded with the sink)
        but writes no file.
    total_shards:
        Number of shards the campaign will execute in total.
    trace_id:
        The run-scoped trace identifier, echoed into every snapshot so a
        tailer can correlate the file with events and served aggregates.
    ewma_alpha:
        Weight of the newest inter-wave rate sample in the EWMA.
    """

    def __init__(
        self,
        telemetry: "Telemetry",
        *,
        total_shards: int,
        trace_id: str | None = None,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
    ):
        self._telemetry = telemetry
        self.enabled = bool(telemetry)
        self.total_shards = int(total_shards)
        self.trace_id = trace_id
        self._alpha = float(ewma_alpha)
        self._start = time.monotonic()
        self._last_time = self._start
        self._last_shards = 0
        self._last_sessions = 0
        self._shard_rate: float | None = None
        self._session_rate: float | None = None
        self.path: Path | None = (
            telemetry.directory / PROGRESS_FILENAME
            if self.enabled and telemetry.directory is not None
            else None
        )

    def _smooth(self, previous: float | None, sample: float) -> float:
        if previous is None:
            return sample
        return self._alpha * sample + (1.0 - self._alpha) * previous

    def update(
        self,
        shards_done: int,
        sessions: int,
        *,
        wave: int,
        peak_rss_mb: float | None = None,
    ) -> dict[str, Any] | None:
        """Record one wave's completion; returns the written snapshot.

        ``shards_done``/``sessions`` are cumulative totals.  Returns
        ``None`` (and does nothing) when the tracker is inert.
        """
        if not self.enabled:
            return None
        now = time.monotonic()
        elapsed = now - self._start
        dt = now - self._last_time
        if dt > 0 and shards_done > self._last_shards:
            self._shard_rate = self._smooth(
                self._shard_rate, (shards_done - self._last_shards) / dt
            )
            self._session_rate = self._smooth(
                self._session_rate, (sessions - self._last_sessions) / dt
            )
        self._last_time = now
        self._last_shards = int(shards_done)
        self._last_sessions = int(sessions)
        remaining = max(0, self.total_shards - int(shards_done))
        if remaining == 0:
            eta_s: float | None = 0.0
        elif self._shard_rate:
            eta_s = remaining / self._shard_rate
        else:
            eta_s = None
        snapshot: dict[str, Any] = {
            "schema": PROGRESS_SCHEMA,
            "trace_id": self.trace_id,
            "shards": {"done": int(shards_done), "total": self.total_shards},
            "sessions": int(sessions),
            "sessions_per_s": (
                round(self._session_rate, 3)
                if self._session_rate is not None
                else None
            ),
            "shards_per_s": (
                round(self._shard_rate, 6)
                if self._shard_rate is not None
                else None
            ),
            "wave": int(wave),
            "elapsed_s": round(elapsed, 3),
            "eta_s": round(eta_s, 3) if eta_s is not None else None,
            "peak_rss_mb": (
                round(peak_rss_mb, 3) if peak_rss_mb is not None else None
            ),
        }
        if self.path is not None:
            self._write(snapshot)
        self._telemetry.heartbeat(
            done=int(shards_done),
            total=self.total_shards,
            sessions=int(sessions),
            rate=snapshot["sessions_per_s"],
            eta_s=snapshot["eta_s"],
            wave=int(wave),
            elapsed_s=snapshot["elapsed_s"],
        )
        return snapshot

    def _write(self, snapshot: dict[str, Any]) -> None:
        """Atomically rewrite ``progress.json`` (tmp sibling + replace)."""
        assert self.path is not None
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp = self.path.with_name(f".tmp-{self.path.name}")
        tmp.write_text(
            json.dumps(snapshot, indent=2, sort_keys=True) + "\n"
        )
        os.replace(tmp, self.path)
