"""Schema of the ``events.jsonl`` telemetry stream, plus its validator.

Every line of an event stream is one JSON object whose ``type`` field
selects its shape:

* ``span`` — one closed span of the run hierarchy;
* ``stage`` — one pipeline stage outcome (the observer's record);
* ``message`` — a free-form progress message;
* ``access`` — one served HTTP request (the RED access-log record);
* ``heartbeat`` — one campaign progress beat (shards done/total, rates,
  ETA) mirroring the atomically-rewritten ``progress.json``;
* ``metrics`` — the final metric snapshot (last line of a finished run).

The canonical machine-readable form is the checked-in JSON Schema document
``schemas/telemetry-events.schema.json``, generated from the field
specifications below by :func:`json_schema` (the test suite asserts the
file is in sync).  :func:`validate_event` / :func:`validate_events_file`
implement the same constraints dependency-free, so CI can validate a run's
stream without a jsonschema package.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Iterable

from .sinks import read_events
from .spans import SPAN_KINDS

#: Version tag of the event-stream format (bump on incompatible change).
EVENTS_SCHEMA_ID = "repro-telemetry-events/1"

#: Repository-relative path of the checked-in JSON Schema document.
SCHEMA_PATH = "schemas/telemetry-events.schema.json"


class SchemaError(ValueError):
    """Raised when an event does not conform to the stream schema."""


#: Field specifications per event type: ``name -> (json_types, required,
#: enum)``.  ``json_types`` uses JSON Schema type names; ``enum`` limits
#: the allowed values when not ``None``.
EVENT_FIELDS: dict[str, dict[str, tuple[tuple[str, ...], bool, tuple | None]]] = {
    "span": {
        "type": (("string",), True, ("span",)),
        "id": (("integer",), True, None),
        "parent": (("integer", "null"), True, None),
        "name": (("string",), True, None),
        "kind": (("string",), True, tuple(SPAN_KINDS)),
        "start_s": (("number",), True, None),
        "wall_s": (("number",), True, None),
        "cpu_s": (("number",), True, None),
        "status": (("string",), True, ("ok", "error")),
        "attrs": (("object",), True, None),
    },
    "stage": {
        "type": (("string",), True, ("stage",)),
        "name": (("string",), True, None),
        "status": (("string",), True, ("computed", "cached")),
        "seconds": (("number",), True, None),
        "key": (("string", "null"), False, None),
        "cache": (("string", "null"), False, ("hit", "miss", None)),
        "payload": (("object", "null"), False, None),
    },
    "message": {
        "type": (("string",), True, ("message",)),
        "level": (("string",), True, None),
        "text": (("string",), True, None),
    },
    "access": {
        "type": (("string",), True, ("access",)),
        "route": (("string",), True, None),
        "method": (("string",), True, None),
        "status": (("integer",), True, None),
        "seconds": (("number",), True, None),
        "bytes": (("integer",), True, None),
        "trace": (("string", "null"), False, None),
    },
    "heartbeat": {
        "type": (("string",), True, ("heartbeat",)),
        "done": (("integer",), True, None),
        "total": (("integer",), True, None),
        "sessions": (("integer",), True, None),
        "rate": (("number", "null"), True, None),
        "eta_s": (("number", "null"), True, None),
        "wave": (("integer",), True, None),
        "elapsed_s": (("number",), True, None),
    },
    "metrics": {
        "type": (("string",), True, ("metrics",)),
        "counters": (("object",), True, None),
        "gauges": (("object",), True, None),
        "histograms": (("object",), True, None),
    },
}


def _json_type_of(value: Any) -> str:
    """JSON Schema type name of a decoded JSON value."""
    if value is None:
        return "null"
    if isinstance(value, bool):
        return "boolean"
    if isinstance(value, int):
        return "integer"
    if isinstance(value, float):
        return "number"
    if isinstance(value, str):
        return "string"
    if isinstance(value, list):
        return "array"
    if isinstance(value, dict):
        return "object"
    raise SchemaError(f"value {value!r} is not a JSON value")


def _matches(value: Any, json_types: tuple[str, ...]) -> bool:
    actual = _json_type_of(value)
    if actual in json_types:
        return True
    # JSON Schema semantics: every integer is also a number.
    return actual == "integer" and "number" in json_types


def validate_event(event: Any) -> str:
    """Check one decoded event object; returns its type or raises.

    Unknown fields are rejected — the stream is an interchange format, so
    anything a producer emits must be in the schema.
    """
    if not isinstance(event, dict):
        raise SchemaError(f"event is not a JSON object: {event!r}")
    event_type = event.get("type")
    fields = EVENT_FIELDS.get(event_type)  # type: ignore[arg-type]
    if fields is None:
        raise SchemaError(
            f"unknown event type {event_type!r}; "
            f"expected one of {sorted(EVENT_FIELDS)}"
        )
    for name, (json_types, required, enum) in fields.items():
        if name not in event:
            if required:
                raise SchemaError(
                    f"{event_type} event missing required field {name!r}"
                )
            continue
        value = event[name]
        if not _matches(value, json_types):
            raise SchemaError(
                f"{event_type} event field {name!r} has type "
                f"{_json_type_of(value)}, expected {'/'.join(json_types)}"
            )
        if enum is not None and value not in enum:
            raise SchemaError(
                f"{event_type} event field {name!r} value {value!r} "
                f"not in {enum}"
            )
    unknown = set(event) - set(fields)
    if unknown:
        raise SchemaError(
            f"{event_type} event carries unknown fields {sorted(unknown)}"
        )
    return event_type  # type: ignore[return-value]


def validate_events(events: Iterable[Any]) -> dict[str, int]:
    """Validate a sequence of events; returns per-type counts.

    A finished run's stream must contain at least one ``span`` event and
    end with exactly one ``metrics`` snapshot — both are checked here.
    """
    counts: dict[str, int] = {}
    last_type: str | None = None
    for index, event in enumerate(events):
        try:
            last_type = validate_event(event)
        except SchemaError as exc:
            raise SchemaError(f"event #{index}: {exc}") from None
        counts[last_type] = counts.get(last_type, 0) + 1
    if counts.get("span", 0) < 1:
        raise SchemaError("event stream contains no span events")
    if counts.get("metrics", 0) != 1 or last_type != "metrics":
        raise SchemaError(
            "event stream must end with exactly one metrics snapshot"
        )
    return counts


def validate_events_file(path: str | Path) -> dict[str, int]:
    """Validate one ``events.jsonl`` file; returns per-type counts."""
    return validate_events(read_events(path))


def _field_schema(json_types: tuple[str, ...], enum: tuple | None) -> dict:
    schema: dict[str, Any] = {
        "type": list(json_types) if len(json_types) > 1 else json_types[0]
    }
    if enum is not None:
        schema["enum"] = list(enum)
    return schema


def json_schema() -> dict[str, Any]:
    """The stream schema as a standard JSON Schema document.

    This is the generator of the checked-in
    ``schemas/telemetry-events.schema.json``; regenerate with::

        python -m repro.obs.schema

    after changing :data:`EVENT_FIELDS`.
    """
    variants = []
    for event_type in sorted(EVENT_FIELDS):
        fields = EVENT_FIELDS[event_type]
        variants.append(
            {
                "title": f"{event_type} event",
                "type": "object",
                "properties": {
                    name: _field_schema(json_types, enum)
                    for name, (json_types, _, enum) in sorted(fields.items())
                },
                "required": [
                    name
                    for name, (_, required, _enum) in sorted(fields.items())
                    if required
                ],
                "additionalProperties": False,
            }
        )
    return {
        "$schema": "https://json-schema.org/draft/2020-12/schema",
        "$id": EVENTS_SCHEMA_ID,
        "title": "repro telemetry event stream (one object per JSONL line)",
        "oneOf": variants,
    }


def render_schema() -> str:
    """The checked-in schema file's exact text content."""
    import json

    return json.dumps(json_schema(), indent=2, sort_keys=True) + "\n"


def _main(argv: list[str] | None = None) -> int:
    """Regenerate the checked-in schema, or validate a stream argument.

    ``python -m repro.obs.schema [--quiet] [events.jsonl]`` — with a path
    argument the stream is validated, without one the checked-in schema
    document is regenerated.  Exit codes are a documented contract (CI
    and scripts rely on them):

    * ``0`` — the stream is valid (or the schema was regenerated);
    * ``1`` — the stream is invalid or unreadable;
    * ``2`` — usage error (unknown flag, extra arguments).

    ``--quiet`` suppresses the success line; diagnostics still go to
    stderr on failure.
    """
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.schema",
        description=(
            "Validate a telemetry events.jsonl stream, or (with no path) "
            "regenerate the checked-in JSON Schema document."
        ),
    )
    parser.add_argument(
        "path", nargs="?", default=None, help="events.jsonl file to validate"
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the success line"
    )
    try:
        options = parser.parse_args(argv)
    except SystemExit as exc:
        # argparse exits 2 on usage errors and 0 on --help; pin both.
        return 2 if exc.code else 0
    if options.path is not None:
        try:
            counts = validate_events_file(options.path)
        except (SchemaError, OSError) as exc:
            print(f"{options.path}: invalid: {exc}", file=sys.stderr)
            return 1
        if not options.quiet:
            print(f"{options.path}: valid ({counts})")
        return 0
    path = Path(SCHEMA_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(render_schema())
    if not options.quiet:
        print(f"wrote {path}")
    return 0


if __name__ == "__main__":  # pragma: no cover - module CLI
    raise SystemExit(_main())
