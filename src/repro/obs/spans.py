"""Hierarchical span records: what ran, under what, for how long.

A *span* is one timed region of a run.  Spans nest — ``run`` → ``stage`` →
``executor`` → ``worker`` → ``unit``/``chunk`` — and each closed span
becomes an immutable :class:`SpanRecord` carrying monotonic wall-clock and
process-CPU durations plus structured attributes.  The records are the raw
material of the ``events.jsonl`` stream and the per-run manifest
(:mod:`repro.obs.sinks`).

Span identifiers are small sequential integers assigned by the owning
:class:`~repro.obs.telemetry.Telemetry` — deterministic for a fixed
execution structure, and trivially cheap (no UUIDs, no randomness, so
telemetry can never perturb a run's random streams).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

#: The span kinds of the run hierarchy, outermost first.  ``campaign``
#: wraps one sharded aggregate-only campaign (its executor/worker spans
#: nest inside); ``serve`` wraps one statistics-service lifetime (ingest
#: plus request loop of ``repro-traffic serve``); ``profile`` marks an
#: opt-in cProfile capture region; ``span`` is the generic fallback.
SPAN_KINDS = (
    "run",
    "campaign",
    "serve",
    "stage",
    "executor",
    "worker",
    "unit",
    "chunk",
    "profile",
    "span",
)


class SpanError(ValueError):
    """Raised on invalid span kinds or malformed span lifecycles."""


@dataclass
class ActiveSpan:
    """A span that is currently open (mutable while in flight).

    Instrumented code receives the active span from
    :meth:`~repro.obs.telemetry.Telemetry.span` and may add attributes —
    e.g. the sessions a chunk ended up holding — right up to close time.
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    start_cpu_s: float
    attrs: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in SPAN_KINDS:
            raise SpanError(
                f"unknown span kind {self.kind!r}; expected one of {SPAN_KINDS}"
            )

    def close(
        self, end_s: float, end_cpu_s: float, status: str = "ok"
    ) -> "SpanRecord":
        """Freeze the span into its immutable record."""
        return SpanRecord(
            span_id=self.span_id,
            parent_id=self.parent_id,
            name=self.name,
            kind=self.kind,
            start_s=self.start_s,
            wall_s=max(0.0, end_s - self.start_s),
            cpu_s=max(0.0, end_cpu_s - self.start_cpu_s),
            status=status,
            attrs=dict(self.attrs),
        )


@dataclass(frozen=True)
class SpanRecord:
    """One closed span: identity, position in the hierarchy, timings.

    Attributes
    ----------
    span_id / parent_id:
        Sequential identifier of the span and of its enclosing span
        (``None`` for the root).
    name:
        Human-readable label (stage name, ``chunk-3``, ``worker-0`` …).
    kind:
        One of :data:`SPAN_KINDS`.
    start_s:
        Offset of the span's start from the telemetry origin, in seconds
        on the monotonic clock.
    wall_s / cpu_s:
        Wall-clock and process-CPU duration of the span.  Worker-reported
        spans carry the durations measured *inside* the worker process.
    status:
        ``"ok"`` or ``"error"``.
    attrs:
        Structured JSON-able attributes (unit counts, cache provenance,
        worker pid, …).
    """

    span_id: int
    parent_id: int | None
    name: str
    kind: str
    start_s: float
    wall_s: float
    cpu_s: float
    status: str = "ok"
    attrs: dict[str, Any] = field(default_factory=dict)

    def to_event(self) -> dict[str, Any]:
        """The span as one ``events.jsonl`` line payload."""
        return {
            "type": "span",
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start_s": round(self.start_s, 6),
            "wall_s": round(self.wall_s, 6),
            "cpu_s": round(self.cpu_s, 6),
            "status": self.status,
            "attrs": self.attrs,
        }
