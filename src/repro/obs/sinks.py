"""Telemetry sinks: the JSONL event stream and the per-run manifest.

Two durable outputs per instrumented run, both written into the run's
telemetry directory (``--telemetry-dir``):

* ``events.jsonl`` — one JSON object per line, streamed as spans close
  (schema: :mod:`repro.obs.schema`).  Line-delimited so a crashed run
  still leaves every completed span on disk, and so post-processing can
  stream the file without loading it whole.
* ``manifest.json`` — the run's self-describing summary: command, seed,
  git revision, configuration digest, per-stage timings and the final
  metric snapshot.  ``repro-traffic report`` renders it back into tables
  (:mod:`repro.obs.report`).

Everything here is standard library only and strictly out-of-band: sink
failures are surfaced as :class:`SinkError` by the writer, never silently
corrupted state.
"""

from __future__ import annotations

import hashlib
import json
import subprocess
import time
from pathlib import Path
from typing import Any, IO, Iterator

#: File name of the event stream inside a telemetry directory.
EVENTS_FILENAME = "events.jsonl"

#: File name of the run manifest inside a telemetry directory.
MANIFEST_FILENAME = "manifest.json"

#: Format tag stamped into every manifest (bump on incompatible change).
MANIFEST_SCHEMA = "repro-telemetry-manifest/1"


class SinkError(OSError):
    """Raised when a telemetry sink cannot be written or read."""


class JsonlSink:
    """Append-only line-delimited JSON writer for ``events.jsonl``.

    The file handle is opened lazily on the first event and must be
    released with :meth:`close` (the owning telemetry does this at
    finalization).  Events are written compactly (no spaces) with sorted
    keys, one per line, flushed on close.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._handle: IO[str] | None = None
        self.events_written = 0

    def write(self, event: dict[str, Any]) -> None:
        """Append one event object as a JSON line."""
        if self._handle is None:
            try:
                self.path.parent.mkdir(parents=True, exist_ok=True)
                self._handle = self.path.open("a", encoding="utf-8")
            except OSError as exc:
                raise SinkError(
                    f"cannot open telemetry sink {self.path}: {exc}"
                ) from exc
        self._handle.write(
            json.dumps(event, sort_keys=True, separators=(",", ":"))
        )
        self._handle.write("\n")
        self.events_written += 1

    def close(self) -> None:
        """Flush and release the underlying file handle (idempotent)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_events(path: str | Path) -> Iterator[dict[str, Any]]:
    """Stream the parsed events of an ``events.jsonl`` file.

    Blank lines are skipped; an unparsable line raises :class:`SinkError`
    naming its line number, so corrupt streams fail loudly.
    """
    path = Path(path)
    try:
        with path.open(encoding="utf-8") as handle:
            for number, line in enumerate(handle, start=1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    raise SinkError(
                        f"{path}:{number}: unparsable event line: {exc}"
                    ) from exc
                if not isinstance(event, dict):
                    raise SinkError(
                        f"{path}:{number}: event line is not a JSON object"
                    )
                yield event
    except OSError as exc:
        raise SinkError(f"cannot read event stream {path}: {exc}") from exc


def git_revision() -> str | None:
    """Current git commit hash, or ``None`` outside a repository.

    Recorded in the manifest so an archived run names the exact code that
    produced it.  Any failure (no git, no repo, timeout) degrades to
    ``None`` — provenance must never break a run.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if proc.returncode != 0:
        return None
    sha = proc.stdout.strip()
    return sha or None


def config_digest(config: Any) -> str:
    """Short stable digest of a JSON-able run configuration.

    Values that are not natively JSON-serializable are folded in via
    ``str()`` — the digest identifies a configuration, it does not need to
    round-trip it.
    """
    text = json.dumps(
        config, sort_keys=True, separators=(",", ":"), default=str
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


def build_manifest(
    *,
    command: str | None,
    seed: int | None,
    argv: list[str] | None,
    config: Any,
    status: str,
    wall_s: float,
    stages: list[dict[str, Any]],
    metrics: dict[str, Any],
    spans_by_kind: dict[str, int],
    events_path: str | None,
    trace_id: str | None = None,
) -> dict[str, Any]:
    """Assemble the manifest payload of one finished run."""
    return {
        "schema": MANIFEST_SCHEMA,
        "command": command,
        "seed": seed,
        "trace_id": trace_id,
        "argv": argv,
        "git_sha": git_revision(),
        "config_digest": config_digest(config),
        "finished_unix": time.time(),
        "status": status,
        "wall_s": round(wall_s, 6),
        "stages": stages,
        "metrics": metrics,
        "spans": {
            "total": sum(spans_by_kind.values()),
            "by_kind": dict(sorted(spans_by_kind.items())),
        },
        "events_file": events_path,
    }


def write_manifest(directory: str | Path, manifest: dict[str, Any]) -> Path:
    """Write ``manifest.json`` into the telemetry directory."""
    directory = Path(directory)
    try:
        directory.mkdir(parents=True, exist_ok=True)
        path = directory / MANIFEST_FILENAME
        path.write_text(json.dumps(manifest, indent=2, sort_keys=True) + "\n")
    except OSError as exc:
        raise SinkError(f"cannot write manifest in {directory}: {exc}") from exc
    return path


def load_manifest(directory: str | Path) -> dict[str, Any]:
    """Read a run's ``manifest.json`` back from its telemetry directory."""
    path = Path(directory) / MANIFEST_FILENAME
    try:
        manifest = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SinkError(f"cannot read manifest at {path}: {exc}") from exc
    if not isinstance(manifest, dict):
        raise SinkError(f"manifest at {path} is not a JSON object")
    return manifest
