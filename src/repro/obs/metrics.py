"""In-process metrics registry: counters, gauges and histograms.

The registry is the numeric half of the telemetry subsystem
(:mod:`repro.obs`): instrumented seams — the artifact cache, the batched
generator, the executors, the fidelity gate — increment named instruments
here, and :meth:`MetricsRegistry.snapshot` folds everything into one
JSON-able mapping for the run manifest and the final ``events.jsonl``
record.  The same snapshot feeds the Prometheus text exposition
(:mod:`repro.obs.expose`) and the cross-process merge used when workers
report their own registries back to the parent.

Design constraints, in order:

* **Out-of-band** — instruments never touch random streams, cache keys or
  artifact bytes; dropping every call changes nothing about a run's
  results.
* **Cheap** — an increment is one attribute add on a plain object; the
  histogram buckets by ``math.frexp`` (power-of-two decades), no search.
* **Dependency-free** — standard library only, so the package imports in
  any environment the library itself can run in.

Instruments may carry **labels** (small, sorted ``str -> str`` mappings,
e.g. ``route``/``method``/``status`` on the serve request histogram).  A
labeled instrument is registered under its *identity* — the name plus the
sorted label set rendered ``name{k="v",...}`` — while the bare name still
pins the instrument kind, so ``serve.request.seconds`` can never be a
counter for one label set and a histogram for another.
"""

from __future__ import annotations

import math
from typing import Any, Iterator, Mapping


class MetricsError(ValueError):
    """Raised on invalid metric names, labels or mismatched kinds."""


def _check_name(name: str) -> str:
    """Validate an instrument name (dotted lowercase words)."""
    if not name or name != name.strip():
        raise MetricsError(f"invalid metric name {name!r}")
    return name


_LABEL_FORBIDDEN = set('",\n\\{}')


def _check_labels(
    labels: Mapping[str, str] | None,
) -> dict[str, str] | None:
    """Validate and normalize a label mapping (``None`` when unlabeled)."""
    if not labels:
        return None
    checked: dict[str, str] = {}
    for key in sorted(labels):
        value = labels[key]
        if not key or not key.replace("_", "").isalnum():
            raise MetricsError(f"invalid label name {key!r}")
        if not isinstance(value, str) or _LABEL_FORBIDDEN & set(value):
            raise MetricsError(
                f"invalid label value {value!r} for label {key!r}"
            )
        checked[key] = value
    return checked


def label_identity(name: str, labels: Mapping[str, str] | None) -> str:
    """Canonical identity of an instrument: ``name{k="v",...}``, sorted."""
    if not labels:
        return name
    body = ",".join(f'{key}="{labels[key]}"' for key in sorted(labels))
    return f"{name}{{{body}}}"


def parse_identity(identity: str) -> tuple[str, dict[str, str] | None]:
    """Invert :func:`label_identity` (labels come back sorted)."""
    if "{" not in identity:
        return identity, None
    name, _, rest = identity.partition("{")
    if not rest.endswith("}"):
        raise MetricsError(f"malformed metric identity {identity!r}")
    labels: dict[str, str] = {}
    for part in rest[:-1].split(","):
        key, sep, value = part.partition("=")
        if not sep or len(value) < 2 or value[0] != '"' or value[-1] != '"':
            raise MetricsError(f"malformed metric identity {identity!r}")
        labels[key] = value[1:-1]
    return name, labels


class Counter:
    """Monotonically increasing count (events, sessions, bytes)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = labels
        self.value = 0

    @property
    def identity(self) -> str:
        """Registry key: name plus sorted label set."""
        return label_identity(self.name, self.labels)

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount

    def merge(self, value: int | float) -> None:
        """Fold a snapshot value from another registry into this counter."""
        self.inc(value)


class Gauge:
    """Last-written value of a quantity (utilization, claim statistic)."""

    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = labels
        self.value: float | None = None

    @property
    def identity(self) -> str:
        """Registry key: name plus sorted label set."""
        return label_identity(self.name, self.labels)

    def set(self, value: float) -> None:
        """Record the current value, replacing any previous one."""
        self.value = float(value)

    def add(self, delta: float) -> None:
        """Shift the value by ``delta`` (unset gauges start from 0.0).

        This is the in-flight idiom: ``add(1)`` on request entry,
        ``add(-1)`` on exit.
        """
        self.value = (self.value or 0.0) + float(delta)

    def merge(self, value: float | None) -> None:
        """Fold a snapshot value in; the incoming write wins if present."""
        if value is not None:
            self.set(value)


class Histogram:
    """Power-of-two bucketed distribution of observed values.

    Buckets are keyed by the binary exponent of the observation
    (``frexp``), so ``observe`` costs one dict increment and the merged
    snapshot still reconstructs the shape of e.g. per-unit wall times
    across a whole campaign.  Count, sum, min and max are tracked exactly.
    Non-positive and non-finite observations land in exponent 0 (``frexp``
    of inf/nan reports exponent 0, and values <= 0 are folded there
    explicitly) so the bucket keys stay small integers.
    """

    __slots__ = ("name", "labels", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str, labels: dict[str, str] | None = None):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    @property
    def identity(self) -> str:
        """Registry key: name plus sorted label set."""
        return label_identity(self.name, self.labels)

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    def merge(self, entry: Mapping[str, Any]) -> None:
        """Fold a snapshot entry (``{count, sum, min, max, buckets}``) in."""
        count = int(entry.get("count", 0))
        if count <= 0:
            return
        self.count += count
        self.total += float(entry.get("sum", 0.0))
        other_min = entry.get("min")
        if other_min is not None and (self.min is None or other_min < self.min):
            self.min = float(other_min)
        other_max = entry.get("max")
        if other_max is not None and (self.max is None or other_max > self.max):
            self.max = float(other_max)
        for exponent, bucket_count in entry.get("buckets") or []:
            exponent = int(exponent)
            self.buckets[exponent] = (
                self.buckets.get(exponent, 0) + int(bucket_count)
            )

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observations (``None`` when empty)."""
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """Named instruments of one run, created on first use.

    A name is bound to one instrument kind for the lifetime of the
    registry; asking for the same name with a different kind — even under
    a different label set — is a bug in the instrumentation and raises
    :class:`MetricsError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._kinds: dict[str, type] = {}

    def _get(
        self,
        name: str,
        kind: type,
        labels: Mapping[str, str] | None = None,
    ) -> Any:
        _check_name(name)
        checked = _check_labels(labels)
        identity = label_identity(name, checked)
        instrument = self._instruments.get(identity)
        if instrument is None:
            registered = self._kinds.get(name)
            if registered is not None and registered is not kind:
                raise MetricsError(
                    f"metric {name!r} already registered as "
                    f"{registered.__name__}, not {kind.__name__}"
                )
            instrument = kind(name, checked)
            self._instruments[identity] = instrument
            self._kinds[name] = kind
        elif type(instrument) is not kind:
            raise MetricsError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        return self._get(name, Counter, labels)

    def gauge(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        return self._get(name, Gauge, labels)

    def histogram(
        self, name: str, labels: Mapping[str, str] | None = None
    ) -> Histogram:
        """The histogram registered under ``name`` (created if absent)."""
        return self._get(name, Histogram, labels)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        """Iterate over the instruments in identity order."""
        return iter(
            self._instruments[identity]
            for identity in sorted(self._instruments)
        )

    def __len__(self) -> int:
        """Number of registered instruments."""
        return len(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-able mapping of every instrument's current state.

        Shape: ``{"counters": {identity: value}, "gauges": {identity:
        value}, "histograms": {identity: {count, sum, min, max, mean,
        buckets}}}`` with identities sorted and histogram ``buckets`` as
        ``[[exponent, count], ...]`` pairs in ascending exponent order —
        byte-stable for identical instrument states, so manifests diff
        cleanly run over run and snapshots merge deterministically across
        processes.
        """
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for instrument in self:
            if isinstance(instrument, Counter):
                counters[instrument.identity] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.identity] = instrument.value
            else:
                histograms[instrument.identity] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "mean": instrument.mean,
                    "buckets": [
                        [exponent, instrument.buckets[exponent]]
                        for exponent in sorted(instrument.buckets)
                    ],
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Counters add, gauges take the incoming write when present, and
        histograms fold counts/sums/extremes/buckets exactly.  Identities
        are processed in sorted order and every fold is commutative over
        disjoint observations, so merging N worker snapshots yields the
        same registry state regardless of arrival order.
        """
        for identity in sorted(snapshot.get("counters", {})):
            name, labels = parse_identity(identity)
            self.counter(name, labels).merge(snapshot["counters"][identity])
        for identity in sorted(snapshot.get("gauges", {})):
            name, labels = parse_identity(identity)
            self.gauge(name, labels).merge(snapshot["gauges"][identity])
        for identity in sorted(snapshot.get("histograms", {})):
            name, labels = parse_identity(identity)
            self.histogram(name, labels).merge(
                snapshot["histograms"][identity]
            )


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments are shared do-nothing singletons.

    The default when no telemetry is configured: instrumented code can
    increment unconditionally and the disabled path stays allocation-free.
    """

    class _NullInstrument:
        """Absorbs every instrument operation without recording anything."""

        name = "null"
        labels = None
        identity = "null"
        value = 0
        count = 0
        total = 0.0
        min = None
        max = None
        mean = None
        buckets: dict[int, int] = {}

        def inc(self, amount: int | float = 1) -> None:
            """Discard a counter increment."""

        def set(self, value: float) -> None:
            """Discard a gauge write."""

        def add(self, delta: float) -> None:
            """Discard a gauge shift."""

        def observe(self, value: float) -> None:
            """Discard a histogram observation."""

        def merge(self, entry: Any) -> None:
            """Discard a snapshot fold."""

    _NULL = _NullInstrument()

    def counter(self, name, labels=None):  # type: ignore[override]
        """The shared no-op instrument, whatever the name."""
        return self._NULL

    def gauge(self, name, labels=None):  # type: ignore[override]
        """The shared no-op instrument, whatever the name."""
        return self._NULL

    def histogram(self, name, labels=None):  # type: ignore[override]
        """The shared no-op instrument, whatever the name."""
        return self._NULL

    def merge_snapshot(self, snapshot) -> None:  # type: ignore[override]
        """Discard a snapshot fold."""
