"""In-process metrics registry: counters, gauges and histograms.

The registry is the numeric half of the telemetry subsystem
(:mod:`repro.obs`): instrumented seams — the artifact cache, the batched
generator, the executors, the fidelity gate — increment named instruments
here, and :meth:`MetricsRegistry.snapshot` folds everything into one
JSON-able mapping for the run manifest and the final ``events.jsonl``
record.

Design constraints, in order:

* **Out-of-band** — instruments never touch random streams, cache keys or
  artifact bytes; dropping every call changes nothing about a run's
  results.
* **Cheap** — an increment is one attribute add on a plain object; the
  histogram buckets by ``math.frexp`` (power-of-two decades), no search.
* **Dependency-free** — standard library only, so the package imports in
  any environment the library itself can run in.
"""

from __future__ import annotations

import math
from typing import Any, Iterator


class MetricsError(ValueError):
    """Raised on invalid metric names or mismatched instrument kinds."""


def _check_name(name: str) -> str:
    """Validate an instrument name (dotted lowercase words)."""
    if not name or name != name.strip():
        raise MetricsError(f"invalid metric name {name!r}")
    return name


class Counter:
    """Monotonically increasing count (events, sessions, bytes)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int | float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the count."""
        if amount < 0:
            raise MetricsError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """Last-written value of a quantity (utilization, claim statistic)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        """Record the current value, replacing any previous one."""
        self.value = float(value)


class Histogram:
    """Power-of-two bucketed distribution of observed values.

    Buckets are keyed by the binary exponent of the observation
    (``frexp``), so ``observe`` costs one dict increment and the merged
    snapshot still reconstructs the shape of e.g. per-unit wall times
    across a whole campaign.  Count, sum, min and max are tracked exactly.
    """

    __slots__ = ("name", "count", "total", "min", "max", "buckets")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        exponent = math.frexp(value)[1] if value > 0 else 0
        self.buckets[exponent] = self.buckets.get(exponent, 0) + 1

    @property
    def mean(self) -> float | None:
        """Arithmetic mean of the observations (``None`` when empty)."""
        return self.total / self.count if self.count else None


class MetricsRegistry:
    """Named instruments of one run, created on first use.

    A name is bound to one instrument kind for the lifetime of the
    registry; asking for the same name with a different kind is a bug in
    the instrumentation and raises :class:`MetricsError`.
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, kind: type) -> Any:
        instrument = self._instruments.get(_check_name(name))
        if instrument is None:
            instrument = kind(name)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise MetricsError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}, not {kind.__name__}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter registered under ``name`` (created if absent)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge registered under ``name`` (created if absent)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram registered under ``name`` (created if absent)."""
        return self._get(name, Histogram)

    def __iter__(self) -> Iterator[Counter | Gauge | Histogram]:
        """Iterate over the instruments in name order."""
        return iter(
            self._instruments[name] for name in sorted(self._instruments)
        )

    def __len__(self) -> int:
        """Number of registered instruments."""
        return len(self._instruments)

    def snapshot(self) -> dict[str, Any]:
        """One JSON-able mapping of every instrument's current state.

        Shape: ``{"counters": {name: value}, "gauges": {name: value},
        "histograms": {name: {count, sum, min, max, mean}}}`` with names
        sorted — byte-stable for identical instrument states, so manifests
        diff cleanly run over run.
        """
        counters: dict[str, Any] = {}
        gauges: dict[str, Any] = {}
        histograms: dict[str, Any] = {}
        for instrument in self:
            if isinstance(instrument, Counter):
                counters[instrument.name] = instrument.value
            elif isinstance(instrument, Gauge):
                gauges[instrument.name] = instrument.value
            else:
                histograms[instrument.name] = {
                    "count": instrument.count,
                    "sum": instrument.total,
                    "min": instrument.min,
                    "max": instrument.max,
                    "mean": instrument.mean,
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


class NullMetricsRegistry(MetricsRegistry):
    """Registry whose instruments are shared do-nothing singletons.

    The default when no telemetry is configured: instrumented code can
    increment unconditionally and the disabled path stays allocation-free.
    """

    class _NullInstrument:
        """Absorbs every instrument operation without recording anything."""

        name = "null"
        value = 0
        count = 0
        total = 0.0
        min = None
        max = None
        mean = None
        buckets: dict[int, int] = {}

        def inc(self, amount: int | float = 1) -> None:
            """Discard a counter increment."""

        def set(self, value: float) -> None:
            """Discard a gauge write."""

        def observe(self, value: float) -> None:
            """Discard a histogram observation."""

    _NULL = _NullInstrument()

    def counter(self, name: str):  # type: ignore[override]
        """The shared no-op instrument, whatever the name."""
        return self._NULL

    def gauge(self, name: str):  # type: ignore[override]
        """The shared no-op instrument, whatever the name."""
        return self._NULL

    def histogram(self, name: str):  # type: ignore[override]
        """The shared no-op instrument, whatever the name."""
        return self._NULL
