"""Render a past run's telemetry into human-readable tables.

Backs the ``repro-traffic report <telemetry-dir>`` subcommand: loads the
run's ``manifest.json`` (and, when present, its ``events.jsonl``) and
formats the stage timing table, the metric snapshot and the span census as
plain aligned text — no dependencies, so the renderer works in any
environment that can read the files.

``repro-traffic report --follow`` switches to :func:`follow_run`, which
tails a *live* run instead: events are rendered as their lines land in
``events.jsonl`` (heartbeats, stage outcomes, messages, access records)
and the tail terminates when the final ``metrics`` snapshot appears — or
when ``--follow-timeout`` elapses, so scripted smokes never hang.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Callable

from .progress import PROGRESS_FILENAME, load_progress
from .sinks import EVENTS_FILENAME, load_manifest, read_events


class ReportRenderError(ValueError):
    """Raised when a telemetry directory cannot be rendered."""


def _format_value(value: Any) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _table(headers: list[str], rows: list[list[Any]]) -> list[str]:
    """Align a small table as text lines (header, rule, rows)."""
    cells = [[_format_value(v) for v in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells)) if cells
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in cells:
        lines.append(
            "  ".join(row[i].ljust(widths[i]) for i in range(len(row))).rstrip()
        )
    return lines


def _stage_rows(stages: list[dict[str, Any]]) -> list[list[Any]]:
    rows = []
    for stage in stages:
        cache = stage.get("cache")
        key = stage.get("key")
        provenance = cache if cache else "-"
        if key:
            provenance = f"{provenance} {key[:8]}" if cache else key[:8]
        payload = stage.get("payload") or {}
        rows.append(
            [
                stage.get("name", "?"),
                stage.get("status", "?"),
                stage.get("seconds"),
                provenance,
                ", ".join(f"{k}={v}" for k, v in payload.items()) or "-",
            ]
        )
    return rows


def render_manifest(manifest: dict[str, Any]) -> list[str]:
    """Format one manifest payload as report lines."""
    lines = [
        f"command:       {_format_value(manifest.get('command'))}",
        f"seed:          {_format_value(manifest.get('seed'))}",
        f"status:        {_format_value(manifest.get('status'))}",
        f"wall time:     {_format_value(manifest.get('wall_s'))} s",
        f"git sha:       {_format_value(manifest.get('git_sha'))}",
        f"config digest: {_format_value(manifest.get('config_digest'))}",
        "",
    ]
    stages = manifest.get("stages") or []
    if stages:
        lines.append("Stages:")
        lines.extend(
            _table(
                ["stage", "status", "seconds", "cache", "summary"],
                _stage_rows(stages),
            )
        )
        lines.append("")
    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    if counters or gauges:
        lines.append("Metrics:")
        rows = [["counter", name, value] for name, value in counters.items()]
        rows += [["gauge", name, value] for name, value in gauges.items()]
        lines.extend(_table(["kind", "metric", "value"], rows))
        lines.append("")
    histograms = metrics.get("histograms") or {}
    if histograms:
        lines.append("Histograms:")
        lines.extend(
            _table(
                ["metric", "count", "mean", "min", "max"],
                [
                    [name, h.get("count"), h.get("mean"), h.get("min"),
                     h.get("max")]
                    for name, h in histograms.items()
                ],
            )
        )
        lines.append("")
    spans = manifest.get("spans") or {}
    by_kind = spans.get("by_kind") or {}
    if by_kind:
        census = ", ".join(f"{kind}={n}" for kind, n in by_kind.items())
        lines.append(f"Spans: {spans.get('total', 0)} ({census})")
    return lines


def render_run(directory: str | Path) -> list[str]:
    """Render the report of one telemetry directory.

    Requires ``manifest.json``; when the run's ``events.jsonl`` is present
    too, the slowest recorded spans are appended so hotspots are visible
    without any extra tooling.
    """
    directory = Path(directory)
    try:
        manifest = load_manifest(directory)
    except OSError as exc:
        raise ReportRenderError(str(exc)) from exc
    lines = [f"Telemetry report: {directory}", ""]
    lines.extend(render_manifest(manifest))
    events_path = directory / EVENTS_FILENAME
    if events_path.exists():
        spans = [
            event
            for event in read_events(events_path)
            if event.get("type") == "span"
        ]
        slowest = sorted(
            spans, key=lambda e: e.get("wall_s", 0.0), reverse=True
        )[:10]
        if slowest:
            lines.append("")
            lines.append("Slowest spans:")
            lines.extend(
                _table(
                    ["kind", "name", "wall_s", "cpu_s", "status"],
                    [
                        [e.get("kind"), e.get("name"), e.get("wall_s"),
                         e.get("cpu_s"), e.get("status")]
                        for e in slowest
                    ],
                )
            )
    return lines


def _follow_line(event: dict[str, Any]) -> str | None:
    """One rendered line per followed event (``None`` to stay silent)."""
    event_type = event.get("type")
    if event_type == "heartbeat":
        eta = event.get("eta_s")
        rate = event.get("rate")
        eta_text = f"eta {eta:.0f}s" if eta is not None else "eta n/a"
        rate_text = f"{rate:,.0f}/s" if rate is not None else "warming up"
        return (
            f"[follow] wave {event.get('wave')}: "
            f"{event.get('done')}/{event.get('total')} shards, "
            f"{event.get('sessions'):,} sessions ({rate_text}), {eta_text}"
        )
    if event_type == "stage":
        return (
            f"[follow] stage {event.get('name')} {event.get('status')} "
            f"in {_format_value(event.get('seconds'))}s"
        )
    if event_type == "message":
        return f"[follow] {event.get('text')}"
    if event_type == "access":
        return (
            f"[follow] {event.get('method')} {event.get('route')} "
            f"{event.get('status')}"
        )
    return None


def follow_run(
    directory: str | Path,
    *,
    poll_s: float = 0.5,
    timeout_s: float | None = None,
    emit: Callable[[str], None] = print,
) -> str:
    """Tail a live run's telemetry; returns ``"finished"`` or ``"timeout"``.

    Renders events as their lines land in ``events.jsonl`` and, alongside
    each heartbeat, the matching ``progress.json`` snapshot.  Terminates
    when the stream's final ``metrics`` snapshot appears (the run is
    over) or when ``timeout_s`` elapses — a completed run's directory
    therefore renders fully and returns immediately, which is what the CI
    smoke relies on.  Unparsable (torn) trailing lines are retried on the
    next poll, never fatal.
    """
    directory = Path(directory)
    events_path = directory / EVENTS_FILENAME
    start = time.monotonic()

    def timed_out() -> bool:
        return (
            timeout_s is not None
            and time.monotonic() - start >= timeout_s
        )

    while not events_path.exists():
        if timed_out():
            emit(f"[follow] timeout waiting for {events_path}")
            return "timeout"
        time.sleep(poll_s)
    emit(f"[follow] tailing {events_path}")
    buffer = ""
    with events_path.open(encoding="utf-8") as handle:
        while True:
            chunk = handle.readline()
            if not chunk:
                if timed_out():
                    emit("[follow] timeout")
                    return "timeout"
                time.sleep(poll_s)
                continue
            buffer += chunk
            if not buffer.endswith("\n"):
                continue
            line, buffer = buffer.strip(), ""
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue
            if not isinstance(event, dict):
                continue
            rendered = _follow_line(event)
            if rendered is not None:
                emit(rendered)
            if event.get("type") == "heartbeat":
                try:
                    progress = load_progress(directory)
                except OSError:
                    progress = None
                if progress is not None:
                    rss = progress.get("peak_rss_mb")
                    emit(
                        f"[follow] {PROGRESS_FILENAME}: "
                        f"elapsed {progress.get('elapsed_s')}s, "
                        f"peak rss {_format_value(rss)} MB"
                    )
            if event.get("type") == "metrics":
                emit("[follow] run finished (metrics snapshot observed)")
                return "finished"
