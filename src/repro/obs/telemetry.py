"""The telemetry facade: spans, metrics, sinks and rendering in one object.

One :class:`Telemetry` instance accompanies one run.  It owns

* the **span stack** — instrumented code opens hierarchical spans with
  :meth:`Telemetry.span` (run → stage → executor → worker → unit/chunk)
  or reports worker-measured ones with :meth:`Telemetry.record_span`;
* the **metrics registry** (:class:`~repro.obs.metrics.MetricsRegistry`)
  the instrumented seams increment;
* the **sinks** — with a telemetry directory configured, closed spans
  stream into ``events.jsonl`` and :meth:`Telemetry.finalize` writes the
  run manifest;
* the **stage renderer** — :meth:`Telemetry.observe` is the single
  verbosity-aware observer the pipeline hands its
  :class:`~repro.pipeline.stages.StageEvent` stream to (it replaced the
  per-subcommand ``_print_event`` copies in the CLI).

Telemetry is strictly *out-of-band*: it never touches random streams,
cache keys or artifact contents, so a run with telemetry enabled produces
byte-identical results to the same run without it.

:data:`NULL_TELEMETRY` is the do-nothing instance used when no telemetry
is configured; it is *falsy*, so hot paths can skip per-unit timing with a
plain truthiness check while still calling metric instruments
unconditionally.
"""

from __future__ import annotations

import cProfile
import json
import time
from contextlib import contextmanager
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterator

from .metrics import MetricsRegistry, NullMetricsRegistry
from .sinks import (
    EVENTS_FILENAME,
    JsonlSink,
    build_manifest,
    write_manifest,
)
from .spans import ActiveSpan, SpanRecord

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.stages import StageEvent


class TelemetryError(RuntimeError):
    """Raised on telemetry lifecycle misuse (e.g. double finalization)."""


class Telemetry:
    """Telemetry of one run: span hierarchy, metrics, sinks, rendering.

    Parameters
    ----------
    directory:
        Telemetry output directory (``events.jsonl``, ``manifest.json``,
        optional per-stage profiles).  ``None`` keeps everything
        in-memory — spans and metrics still accumulate for programmatic
        inspection, nothing is written.
    verbosity:
        ``0`` silences stage lines, ``1`` (default) prints one line per
        stage outcome, ``2`` additionally prints closed run/stage/executor
        spans with their timings.
    log_json:
        Render stage outcomes as compact JSON lines instead of the
        human-readable form (machine-tailable stdout).
    profile:
        Enable the per-stage :mod:`cProfile` hook — each profiled stage
        dumps ``profile-<stage>.pstats`` into ``directory``.
    trace_id:
        Run-scoped trace identifier (minted deterministically from the
        root seed by :class:`~repro.pipeline.context.RunContext`).  It is
        stamped into the manifest, carried on ``access`` events and
        echoed by downstream consumers (campaign checkpoints, the serve
        store, the ``X-Repro-Trace`` response header).
    """

    def __init__(
        self,
        directory: str | Path | None = None,
        verbosity: int = 1,
        log_json: bool = False,
        profile: bool = False,
        trace_id: str | None = None,
    ):
        self.directory = Path(directory) if directory is not None else None
        self.verbosity = int(verbosity)
        self.log_json = bool(log_json)
        self.profile = bool(profile)
        self.trace_id = trace_id
        self.metrics = MetricsRegistry()
        self._origin = time.perf_counter()
        self._sink = (
            JsonlSink(self.directory / EVENTS_FILENAME)
            if self.directory is not None
            else None
        )
        self._stack: list[ActiveSpan] = []
        self._records: list[SpanRecord] = []
        self._spans_by_kind: dict[str, int] = {}
        self._stages: list[dict[str, Any]] = []
        self._next_span_id = 0
        self._finalized = False

    # ------------------------------------------------------------------
    # Clock and span plumbing
    # ------------------------------------------------------------------
    def elapsed_s(self) -> float:
        """Seconds since this telemetry was created (monotonic clock)."""
        return time.perf_counter() - self._origin

    def _allocate_id(self) -> int:
        span_id = self._next_span_id
        self._next_span_id += 1
        return span_id

    def _commit(self, record: SpanRecord) -> None:
        self._records.append(record)
        self._spans_by_kind[record.kind] = (
            self._spans_by_kind.get(record.kind, 0) + 1
        )
        if self._sink is not None:
            self._sink.write(record.to_event())
        if self.verbosity >= 2 and record.kind in ("run", "stage", "executor"):
            self._emit_line(
                f"[span] {record.kind}:{record.name} "
                f"wall {record.wall_s:.3f}s cpu {record.cpu_s:.3f}s"
            )

    def current_span_id(self) -> int | None:
        """Identifier of the innermost open span, if any."""
        return self._stack[-1].span_id if self._stack else None

    def current_stage(self) -> str | None:
        """Name of the innermost open ``stage``-kind span, if any."""
        for span in reversed(self._stack):
            if span.kind == "stage":
                return span.name
        return None

    @contextmanager
    def span(
        self,
        name: str,
        kind: str = "span",
        attrs: dict[str, Any] | None = None,
    ) -> Iterator[ActiveSpan]:
        """Open a child span of the innermost open span.

        Yields the :class:`~repro.obs.spans.ActiveSpan`; callers may add
        attributes until the block exits.  An exception escaping the block
        closes the span with ``status="error"`` and re-raises.
        """
        span = ActiveSpan(
            span_id=self._allocate_id(),
            parent_id=self.current_span_id(),
            name=name,
            kind=kind,
            start_s=self.elapsed_s(),
            start_cpu_s=time.process_time(),
            attrs=dict(attrs or {}),
        )
        self._stack.append(span)
        try:
            yield span
        except BaseException:
            self._stack.pop()
            self._commit(
                span.close(self.elapsed_s(), time.process_time(), "error")
            )
            raise
        else:
            self._stack.pop()
            self._commit(span.close(self.elapsed_s(), time.process_time()))

    def record_span(
        self,
        name: str,
        kind: str,
        wall_s: float,
        cpu_s: float,
        attrs: dict[str, Any] | None = None,
        parent_id: int | None = None,
        status: str = "ok",
    ) -> SpanRecord:
        """Commit a span that was timed elsewhere (e.g. inside a worker).

        The span is attached under ``parent_id`` (default: the innermost
        open span) and its start offset is back-computed from now minus
        ``wall_s`` — workers run on their own clocks, so only durations
        travel across the process boundary.
        """
        record = SpanRecord(
            span_id=self._allocate_id(),
            parent_id=(
                parent_id if parent_id is not None else self.current_span_id()
            ),
            name=name,
            kind=kind,
            start_s=max(0.0, self.elapsed_s() - wall_s),
            wall_s=wall_s,
            cpu_s=cpu_s,
            status=status,
            attrs=dict(attrs or {}),
        )
        self._commit(record)
        return record

    def span_records(self, kind: str | None = None) -> list[SpanRecord]:
        """Closed spans so far, optionally filtered by kind."""
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    # ------------------------------------------------------------------
    # Stage observation and rendering
    # ------------------------------------------------------------------
    def _emit_line(self, text: str) -> None:
        print(text)

    def observe(self, event: "StageEvent") -> None:
        """The pipeline's stage observer: record and render one outcome.

        This is the single verbosity-aware renderer every subcommand
        shares: quiet runs (verbosity 0) stay silent, normal runs print
        the classic ``[pipeline] …`` line, ``log_json`` runs print the
        event as one compact JSON object instead.  The event is also
        appended to the JSONL sink and folded into the manifest's stage
        table.
        """
        entry = {
            "name": event.stage,
            "status": event.status,
            "seconds": round(event.seconds, 6),
            "key": event.key,
            "cache": event.cache_status,
            "payload": dict(event.payload) if event.payload else None,
        }
        self._stages.append(entry)
        if self._sink is not None:
            self._sink.write({"type": "stage", **entry})
        if self.log_json:
            self._emit_line(
                json.dumps({"type": "stage", **entry}, sort_keys=True)
            )
        elif self.verbosity >= 1:
            self._emit_line(f"[pipeline] {event.describe()}")

    def message(self, text: str, level: str = "info") -> None:
        """Record (and render) one free-form progress message."""
        if self._sink is not None:
            self._sink.write({"type": "message", "level": level, "text": text})
        if self.log_json:
            self._emit_line(
                json.dumps(
                    {"type": "message", "level": level, "text": text},
                    sort_keys=True,
                )
            )
        elif self.verbosity >= 1:
            self._emit_line(text)

    def access(
        self,
        *,
        route: str,
        method: str,
        status: int,
        seconds: float,
        bytes_sent: int,
        trace: str | None = None,
    ) -> None:
        """Record one served HTTP request (the RED access-log line).

        Streams a schema-validated ``access`` event into ``events.jsonl``
        and, at verbosity >= 2 (or in ``log_json`` mode), renders one line
        to stdout.  ``trace`` is the trace id of the campaign whose data
        answered the request, when the route resolved one.
        """
        if self._sink is not None:
            self._sink.write(
                {
                    "type": "access",
                    "route": route,
                    "method": method,
                    "status": int(status),
                    "seconds": round(float(seconds), 6),
                    "bytes": int(bytes_sent),
                    "trace": trace,
                }
            )
        if self.log_json:
            self._emit_line(
                json.dumps(
                    {
                        "type": "access",
                        "route": route,
                        "method": method,
                        "status": int(status),
                        "seconds": round(float(seconds), 6),
                        "bytes": int(bytes_sent),
                        "trace": trace,
                    },
                    sort_keys=True,
                )
            )
        elif self.verbosity >= 2:
            self._emit_line(
                f"[access] {method} {route} {int(status)} "
                f"{float(seconds) * 1000.0:.1f}ms {int(bytes_sent)}B"
            )

    def heartbeat(
        self,
        *,
        done: int,
        total: int,
        sessions: int,
        rate: float | None,
        eta_s: float | None,
        wave: int,
        elapsed_s: float,
    ) -> None:
        """Record one campaign progress beat (mirrors ``progress.json``).

        Streams a schema-validated ``heartbeat`` event and, at verbosity
        >= 1, renders a single human progress line.
        """
        if self._sink is not None:
            self._sink.write(
                {
                    "type": "heartbeat",
                    "done": int(done),
                    "total": int(total),
                    "sessions": int(sessions),
                    "rate": rate,
                    "eta_s": eta_s,
                    "wave": int(wave),
                    "elapsed_s": float(elapsed_s),
                }
            )
        if self.log_json:
            self._emit_line(
                json.dumps(
                    {
                        "type": "heartbeat",
                        "done": int(done),
                        "total": int(total),
                        "sessions": int(sessions),
                        "rate": rate,
                        "eta_s": eta_s,
                        "wave": int(wave),
                        "elapsed_s": float(elapsed_s),
                    },
                    sort_keys=True,
                )
            )
        elif self.verbosity >= 1:
            eta = f"eta {eta_s:.0f}s" if eta_s is not None else "eta n/a"
            rate_text = f"{rate:,.0f}/s" if rate is not None else "warming up"
            self._emit_line(
                f"[campaign] wave {int(wave)}: {int(done)}/{int(total)} "
                f"shards, {int(sessions):,} sessions ({rate_text}), {eta}"
            )

    # ------------------------------------------------------------------
    # Profiling hook
    # ------------------------------------------------------------------
    @contextmanager
    def profile_stage(self, stage: str) -> Iterator[None]:
        """Opt-in cProfile capture around one stage body.

        Active only when the telemetry was created with ``profile=True``
        and has a directory; the stats land in
        ``<directory>/profile-<stage>.pstats`` and the capture is logged
        as a ``profile`` span.
        """
        if not self.profile or self.directory is None:
            yield
            return
        profiler = cProfile.Profile()
        with self.span(f"profile:{stage}", kind="profile") as span:
            profiler.enable()
            try:
                yield
            finally:
                profiler.disable()
                self.directory.mkdir(parents=True, exist_ok=True)
                path = self.directory / f"profile-{stage}.pstats"
                profiler.dump_stats(str(path))
                span.attrs["stage"] = stage
                span.attrs["path"] = path.name

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    @property
    def finalized(self) -> bool:
        """Whether :meth:`finalize` already ran."""
        return self._finalized

    def finalize(
        self,
        command: str | None = None,
        seed: int | None = None,
        argv: list[str] | None = None,
        config: Any = None,
        status: str = "ok",
    ) -> dict[str, Any]:
        """Close the run: flush sinks, write the manifest, return it.

        Appends the final metric snapshot to the event stream, closes it,
        and — when a telemetry directory is configured — writes
        ``manifest.json`` next to it.  The manifest payload is returned
        either way, so callers can inspect a memory-only run.  Calling
        twice raises :class:`TelemetryError`.
        """
        if self._finalized:
            raise TelemetryError("telemetry already finalized")
        self._finalized = True
        snapshot = self.metrics.snapshot()
        if self._sink is not None:
            self._sink.write({"type": "metrics", **snapshot})
            self._sink.close()
        manifest = build_manifest(
            command=command,
            seed=seed,
            trace_id=self.trace_id,
            argv=argv,
            config=config,
            status=status,
            wall_s=self.elapsed_s(),
            stages=list(self._stages),
            metrics=snapshot,
            spans_by_kind=dict(self._spans_by_kind),
            events_path=EVENTS_FILENAME if self._sink is not None else None,
        )
        if self.directory is not None:
            write_manifest(self.directory, manifest)
        return manifest


class _DiscardDict(dict):
    """A dict that silently drops writes (attrs of the null span)."""

    def __setitem__(self, key, value):  # noqa: D105 - trivial override
        """Discard the assignment."""

    def update(self, *args, **kwargs):
        """Discard the update."""


class NullTelemetry(Telemetry):
    """Do-nothing telemetry: every operation is a cheap no-op.

    Falsy on purpose — ``if telemetry:`` guards per-unit timing loops —
    while keeping the full :class:`Telemetry` interface callable, so
    instrumented code never branches for metrics or span bookkeeping.
    """

    _NULL_SPAN = ActiveSpan(
        span_id=-1,
        parent_id=None,
        name="null",
        kind="span",
        start_s=0.0,
        start_cpu_s=0.0,
        attrs=_DiscardDict(),
    )

    def __init__(self) -> None:
        super().__init__(directory=None, verbosity=0)
        self.metrics = NullMetricsRegistry()

    def __bool__(self) -> bool:
        """Null telemetry is falsy (real telemetry is truthy)."""
        return False

    @contextmanager
    def span(self, name, kind="span", attrs=None):  # type: ignore[override]
        """Yield the shared inert span without recording anything."""
        yield self._NULL_SPAN

    def record_span(self, *args, **kwargs):  # type: ignore[override]
        """Discard an externally timed span."""
        return None

    def observe(self, event) -> None:
        """Discard a stage event (library runs without telemetry)."""

    def message(self, text: str, level: str = "info") -> None:
        """Discard a progress message."""

    def access(self, **kwargs) -> None:  # type: ignore[override]
        """Discard an access record."""

    def heartbeat(self, **kwargs) -> None:  # type: ignore[override]
        """Discard a progress beat."""

    @contextmanager
    def profile_stage(self, stage: str):
        """Never profile under null telemetry."""
        yield

    def finalize(self, *args, **kwargs):  # type: ignore[override]
        """Nothing to flush; returns an empty manifest-shaped mapping."""
        return {}


#: Shared do-nothing telemetry used wherever none was configured.
NULL_TELEMETRY = NullTelemetry()
