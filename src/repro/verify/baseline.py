"""Golden baseline of the paper's quantitative claims and their tolerances.

The checked-in baseline (``baselines/paper_claims.json``) pins down, for
every gated statistic: the paper provenance of the claim, the tolerance
band ``[lo, hi]`` the statistic must stay inside, and the value observed
when the baseline was last regenerated (informational — the *band* is what
gates).  It also pins the campaign configuration the gate simulates, so the
statistics are measured on exactly the population the bands were calibrated
for.

Bands are deliberately calibrated across several root seeds (see
``docs/VALIDATION.md``): the gate must fail on genuine statistical drift,
never on seed-to-seed noise.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Any, Mapping

#: Environment variable overriding the baseline file location.
BASELINE_ENV = "REPRO_BASELINE"

#: Repository-relative path of the checked-in golden baseline.
DEFAULT_BASELINE_RELPATH = Path("baselines") / "paper_claims.json"


class BaselineError(ValueError):
    """Raised on missing or malformed baseline files."""


@dataclass(frozen=True)
class ClaimBand:
    """Tolerance band of one gated statistic.

    Attributes
    ----------
    lo / hi:
        Inclusive bounds the measured statistic must fall within.
    provenance:
        The paper figure/table/section the claim reproduces.
    observed:
        The value measured when the baseline was last regenerated; kept for
        context in reviews and reports, not used for gating.
    """

    lo: float
    hi: float
    provenance: str = ""
    observed: float | None = None

    def __post_init__(self) -> None:
        if not self.lo <= self.hi:
            raise BaselineError(
                f"empty tolerance band [{self.lo}, {self.hi}]"
            )

    def to_dict(self) -> dict:
        """JSON-serializable rendering of the band."""
        payload: dict[str, Any] = {
            "lo": self.lo,
            "hi": self.hi,
            "provenance": self.provenance,
        }
        if self.observed is not None:
            payload["observed"] = self.observed
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ClaimBand":
        """Inverse of :meth:`to_dict`."""
        try:
            observed = payload.get("observed")
            return cls(
                lo=float(payload["lo"]),
                hi=float(payload["hi"]),
                provenance=str(payload.get("provenance", "")),
                observed=None if observed is None else float(observed),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(f"malformed claim band: {exc}") from exc


@dataclass(frozen=True)
class CampaignSpec:
    """The fixed small campaign the fidelity gate simulates.

    The spec is part of the baseline because the tolerance bands are only
    valid for the population they were calibrated on — changing the scale
    requires recalibrating the bands.
    """

    n_bs: int = 20
    n_days: int = 1
    min_sessions: int = 300

    def __post_init__(self) -> None:
        if self.n_bs < 10 or self.n_days < 1 or self.min_sessions < 1:
            raise BaselineError(
                f"invalid campaign spec ({self.n_bs} BSs, {self.n_days} "
                f"days, min {self.min_sessions} sessions)"
            )

    def to_dict(self) -> dict:
        """JSON-serializable rendering of the spec."""
        return {
            "n_bs": self.n_bs,
            "n_days": self.n_days,
            "min_sessions": self.min_sessions,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CampaignSpec":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                n_bs=int(payload["n_bs"]),
                n_days=int(payload["n_days"]),
                min_sessions=int(payload["min_sessions"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise BaselineError(f"malformed campaign spec: {exc}") from exc


@dataclass(frozen=True)
class Baseline:
    """The full golden baseline: campaign spec plus one band per claim."""

    campaign: CampaignSpec = field(default_factory=CampaignSpec)
    claims: dict[str, ClaimBand] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.claims:
            raise BaselineError("a baseline needs at least one claim")

    def with_observed(self, measured: Mapping[str, float]) -> "Baseline":
        """Copy of the baseline with refreshed ``observed`` values.

        Only the informational observations change — the tolerance bands
        themselves are never rewritten programmatically, so regenerating a
        baseline cannot silently widen the gate.
        """
        unknown = sorted(set(measured) - set(self.claims))
        if unknown:
            raise BaselineError(f"measured unknown claims: {unknown}")
        claims = {
            key: (
                replace(band, observed=float(measured[key]))
                if key in measured
                else band
            )
            for key, band in self.claims.items()
        }
        return Baseline(campaign=self.campaign, claims=claims)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable rendering of the baseline."""
        return {
            "campaign": self.campaign.to_dict(),
            "claims": {
                key: band.to_dict() for key, band in self.claims.items()
            },
        }

    def save(self, path: str | Path) -> None:
        """Write the baseline as an indented JSON document."""
        Path(path).write_text(
            json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Baseline":
        """Inverse of :meth:`to_dict`."""
        try:
            campaign = CampaignSpec.from_dict(payload["campaign"])
            claims_payload = payload["claims"]
            if not isinstance(claims_payload, Mapping):
                raise BaselineError("'claims' must be an object")
            claims = {
                str(key): ClaimBand.from_dict(band)
                for key, band in claims_payload.items()
            }
        except (KeyError, TypeError) as exc:
            raise BaselineError(f"malformed baseline payload: {exc}") from exc
        return cls(campaign=campaign, claims=claims)

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        """Read a baseline from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise BaselineError(
                f"cannot read baseline at {path}: {exc}"
            ) from exc
        return cls.from_dict(payload)


def default_baseline_path(start: str | Path | None = None) -> Path:
    """Locate the golden baseline file.

    Resolution order: the :data:`BASELINE_ENV` environment variable, then
    ``baselines/paper_claims.json`` relative to ``start`` (default: the
    working directory) and each of its parents — so the gate finds the
    checked-in baseline from any subdirectory of the repository.
    """
    override = os.environ.get(BASELINE_ENV)
    if override:
        return Path(override)
    base = Path(start) if start is not None else Path.cwd()
    for directory in [base, *base.resolve().parents]:
        candidate = directory / DEFAULT_BASELINE_RELPATH
        if candidate.exists():
            return candidate
    raise BaselineError(
        f"no {DEFAULT_BASELINE_RELPATH} found from {base} upward; pass an "
        f"explicit path or set ${BASELINE_ENV}"
    )
