"""Machine-readable outcome of the statistical fidelity gate.

A :class:`FidelityReport` is the gate's product: one :class:`CheckResult`
per measured statistic, each carrying the measured value, the tolerance
band it was judged against and the paper provenance of the claim.  The
report serializes to JSON so CI can archive it as a build artifact and
later runs can be diffed statistic by statistic.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Mapping


class ReportError(ValueError):
    """Raised on malformed report payloads."""


@dataclass(frozen=True)
class CheckResult:
    """Verdict on one measured statistic of one paper claim.

    Attributes
    ----------
    claim:
        Baseline claim key the statistic was judged against.
    statistic:
        Fully qualified statistic name — equals ``claim`` for scalar
        claims, ``claim[qualifier]`` for per-service families.
    value:
        The measured value.
    lo / hi:
        The tolerance band the value must fall inside (inclusive).
    passed:
        Whether ``lo <= value <= hi``.
    provenance:
        Paper figure/table/section the claim reproduces.
    skipped:
        The claim could not be measured on this input (e.g. an all-empty
        campaign) and was deterministically skipped instead of judged;
        a skipped check never fails the gate and its ``value`` is the
        neutral ``0.0`` placeholder, not a measurement.
    """

    claim: str
    statistic: str
    value: float
    lo: float
    hi: float
    passed: bool
    provenance: str = ""
    skipped: bool = False

    def to_dict(self) -> dict:
        """JSON-serializable rendering of the verdict."""
        return {
            "claim": self.claim,
            "statistic": self.statistic,
            "value": self.value,
            "lo": self.lo,
            "hi": self.hi,
            "passed": self.passed,
            "provenance": self.provenance,
            "skipped": self.skipped,
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "CheckResult":
        """Inverse of :meth:`to_dict` (``skipped`` defaults to judged)."""
        try:
            return cls(
                claim=str(payload["claim"]),
                statistic=str(payload["statistic"]),
                value=float(payload["value"]),
                lo=float(payload["lo"]),
                hi=float(payload["hi"]),
                passed=bool(payload["passed"]),
                provenance=str(payload.get("provenance", "")),
                skipped=bool(payload.get("skipped", False)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ReportError(f"malformed check result: {exc}") from exc


@dataclass
class FidelityReport:
    """Full outcome of one fidelity-gate run.

    ``meta`` records the run configuration (seed, campaign scale, baseline
    path) so an archived report is self-describing.
    """

    results: list[CheckResult] = field(default_factory=list)
    meta: dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """True when every statistic sits inside its tolerance band."""
        return all(r.passed for r in self.results)

    def failures(self) -> list[CheckResult]:
        """The statistics that left their tolerance band."""
        return [r for r in self.results if not r.passed]

    def claims(self) -> list[str]:
        """Distinct claim keys covered, in first-appearance order."""
        seen: list[str] = []
        for result in self.results:
            if result.claim not in seen:
                seen.append(result.claim)
        return seen

    def result(self, statistic: str) -> CheckResult:
        """Look one statistic's verdict up by its qualified name."""
        for result in self.results:
            if result.statistic == statistic:
                return result
        raise ReportError(f"no statistic named {statistic!r} in the report")

    def skipped(self) -> list[CheckResult]:
        """The checks that were deterministically skipped, not judged."""
        return [r for r in self.results if r.skipped]

    def summary(self) -> dict[str, Any]:
        """Compact payload for the pipeline's stage-event mechanism.

        The verdict is ``FAILED`` on any breach, ``SKIPPED`` when every
        check was skipped (nothing was actually judged) and ``OK``
        otherwise.
        """
        skipped = len(self.skipped())
        if not self.ok:
            verdict = "FAILED"
        elif self.results and skipped == len(self.results):
            verdict = "SKIPPED"
        else:
            verdict = "OK"
        return {
            "checks": len(self.results),
            "claims": len(self.claims()),
            "failed": len(self.failures()),
            "skipped": skipped,
            "verdict": verdict,
        }

    def record_metrics(self, metrics) -> None:
        """Publish the gate's verdicts into a run's metrics registry.

        Counts every judged statistic (``verify.checks``) and every
        out-of-band one (``verify.failed``), and exposes each measured
        value as a ``verify.value.<statistic>`` gauge — so a run manifest
        carries the fidelity outcome next to the timing data.  ``metrics``
        is a :class:`~repro.obs.metrics.MetricsRegistry` (or the null
        registry, making this a no-op).
        """
        metrics.counter("verify.checks").inc(len(self.results))
        metrics.counter("verify.failed").inc(len(self.failures()))
        metrics.counter("verify.skipped").inc(len(self.skipped()))
        for result in self.results:
            if result.skipped:
                continue  # a placeholder value is not a measurement
            metrics.gauge(f"verify.value.{result.statistic}").set(
                result.value
            )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable rendering of the whole report."""
        return {
            "ok": self.ok,
            "meta": self.meta,
            "summary": self.summary(),
            "results": [r.to_dict() for r in self.results],
        }

    def to_json(self) -> str:
        """The report as an indented JSON document."""
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    def write(self, path: str | Path) -> None:
        """Write the JSON report to ``path``."""
        Path(path).write_text(self.to_json() + "\n")

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "FidelityReport":
        """Inverse of :meth:`to_dict` (``ok``/``summary`` are derived)."""
        try:
            results = [CheckResult.from_dict(r) for r in payload["results"]]
            meta = dict(payload.get("meta", {}))
        except (KeyError, TypeError) as exc:
            raise ReportError(f"malformed report payload: {exc}") from exc
        return cls(results=results, meta=meta)

    @classmethod
    def load(cls, path: str | Path) -> "FidelityReport":
        """Read a report back from a JSON file."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ReportError(f"cannot read report at {path}: {exc}") from exc
        return cls.from_dict(payload)
