"""Measurement of the paper's headline statistics on a simulated campaign.

Each ``measure_*`` function computes one family of quantitative claims from
the paper on the artifacts of a pipeline run (campaign table, BS network,
fitted model bank) and returns scalar statistics keyed by *claim name* —
the keys the golden baseline (:mod:`repro.verify.baseline`) attaches
tolerance bands to.  :func:`evaluate` then turns measured statistics plus a
baseline into a :class:`~repro.verify.report.FidelityReport`.

The statistics and their provenance (see also ``docs/VALIDATION.md``):

* ``rank-exponential-r2`` / ``top20-session-share`` — the negative
  exponential service ranking of Fig 4 (paper: R² ≈ 0.97, top-20 ≈ 78 %);
* ``modeled-services`` — the bank covers most of the 31-service catalog;
* ``volume-emd`` / ``volume-emd-generated`` — Section 5.4 model quality:
  EMD of each fitted mixture against the measured volume PDF, and against
  a histogram of samples drawn back out of the model;
* ``beta-*`` / ``powerlaw-r2-median`` — the Fig 10 duration–volume power
  laws: exponents span [0.1, 1.8], video is super-linear, and the fits
  recover the generator's ground-truth exponents;
* ``arrival-*`` / ``pareto-shape-hill`` — the Section 5.1 bi-modal arrival
  process: Gaussian ``mu`` and Pareto scale recovery per load decile, the
  Fig 3 fit EMD, and a Hill estimate of the fixed Pareto shape 1.765;
* ``circadian-day-night-ratio`` — the Fig 3 day/night bi-modality.
"""

from __future__ import annotations

import numpy as np

from .report import CheckResult, FidelityReport


class CheckError(ValueError):
    """Raised when a statistic cannot be measured on the given artifacts."""


#: Number of top-ranked services whose volume models are EMD-checked.
TOP_SERVICES = 10

#: Sample count drawn from each volume model for the generated-sample EMD.
N_GENERATED = 20_000

#: Services this close to ``beta = 1`` are excluded from the linearity
#: agreement statistic: their super/sub-linear class is not identifiable.
BETA_LINEARITY_MARGIN = 0.15


def measure_ranking(table) -> dict[str, float]:
    """Fig 4 statistics: exponential-law R² and top-20 concentration."""
    from ..analysis.ranking import (
        fit_exponential_law,
        rank_services,
        top_k_session_fraction,
    )

    ranking = rank_services(table)
    law = fit_exponential_law(ranking)
    return {
        "rank-exponential-r2": float(law.r2),
        "top20-session-share": float(top_k_session_fraction(ranking, 20)),
    }


def measure_volume_models(
    table, bank, rng: np.random.Generator
) -> dict[str, float]:
    """Section 5.2/5.4 statistics: per-service volume-model fidelity.

    ``volume-emd`` is the worst model-vs-measured EMD among the
    :data:`TOP_SERVICES` most popular modeled services, taken from the fit
    diagnostics the bank records; ``volume-emd-generated`` closes the loop
    generatively — histograms of :data:`N_GENERATED` samples drawn from each
    model must EMD-match the model's own analytic PDF.
    """
    from ..analysis.emd import emd
    from ..analysis.histogram import LogHistogram
    from ..analysis.ranking import rank_services

    top = [r.service for r in rank_services(table) if r.service in bank]
    top = top[:TOP_SERVICES]
    if not top:
        raise CheckError("no ranked service has a fitted model")
    diagnostics = bank.diagnostics()
    missing = [name for name in top if name not in diagnostics]
    if missing:
        raise CheckError(f"models without fit diagnostics: {missing}")

    generated_emds = []
    for name in top:
        model = bank.get(name).volume
        samples = model.sample_volumes_mb(rng, N_GENERATED)
        generated_emds.append(
            emd(model.as_histogram(), LogHistogram.from_volumes(samples))
        )
    return {
        "modeled-services": float(len(bank)),
        "volume-emd": max(diagnostics[name].volume_emd for name in top),
        "volume-emd-generated": float(max(generated_emds)),
    }


def measure_duration_models(bank) -> dict[str, float]:
    """Fig 10 statistics: power-law exponent range, recovery, fit quality.

    The generator's ground-truth exponents (:data:`repro.dataset.profiles.PROFILES`)
    are known, so besides the paper's published range [0.1, 1.8] the gate
    checks that fitting *recovers* them — absolute error and, for services
    clearly away from ``beta = 1``, the super/sub-linear classification.
    """
    from ..dataset.profiles import PROFILES

    betas = {name: bank.get(name).duration.beta for name in bank.services()}
    r2s = [bank.get(name).duration.r2 for name in bank.services()]
    if not betas:
        raise CheckError("the bank holds no fitted duration models")
    errors = [abs(betas[s] - PROFILES[s].beta) for s in betas]
    classed = [
        float(np.sign(betas[s] - 1.0) == np.sign(PROFILES[s].beta - 1.0))
        for s in betas
        if abs(PROFILES[s].beta - 1.0) > BETA_LINEARITY_MARGIN
    ]
    if not classed:
        raise CheckError("no service is clearly super- or sub-linear")
    return {
        "beta-min": float(min(betas.values())),
        "beta-max": float(max(betas.values())),
        "beta-recovery-max-abs-error": float(max(errors)),
        "beta-linearity-agreement": float(np.mean(classed)),
        "powerlaw-r2-median": float(np.median(r2s)),
    }


def measure_arrivals(table, network, n_days: int) -> dict[str, float]:
    """Section 5.1 / Fig 3 statistics: bi-modal arrival-model recovery.

    Per load decile, the fitted daytime Gaussian mean and nighttime Pareto
    scale are compared against the decile's ground-truth station parameters
    (averaged over its jittered BSs); the fit EMD is the Fig 3 curve
    distance.  The Pareto shape (fixed at 1.765) is re-estimated from the
    pooled nighttime counts of the busiest decile with the Hill estimator —
    biased low by the integer rounding of counts, hence the wide band in the
    baseline.
    """
    from ..core.arrivals import fit_decile_arrivals_diagnosed
    from ..dataset.aggregation import minute_arrival_counts
    from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask

    fits = fit_decile_arrivals_diagnosed(table, network, n_days)
    if not fits:
        raise CheckError("no decile has any BS to fit arrivals from")
    mu_errors, scale_errors, emds = [], [], []
    for decile, fit in fits.items():
        stations = [
            network.station(i) for i in network.bs_ids_in_decile(decile)
        ]
        true_mu = float(np.mean([s.peak_rate for s in stations]))
        true_scale = float(np.mean([s.night_scale for s in stations]))
        mu_errors.append(abs(fit.model.peak_mu - true_mu) / true_mu)
        scale_errors.append(
            abs(fit.model.night_scale - true_scale) / true_scale
        )
        emds.append(fit.emd)

    # Hill estimate of the Pareto shape from the busiest fitted decile.
    busiest = max(fits)
    ids = network.bs_ids_in_decile(busiest)
    counts = minute_arrival_counts(table, ids, n_days).reshape(
        len(ids) * n_days, MINUTES_PER_DAY
    )
    night = counts[:, ~peak_minute_mask()].ravel().astype(float)
    scale = float(
        np.mean([network.station(i).night_scale for i in ids])
    )
    tail = night[night >= scale]
    if tail.size < 10:
        raise CheckError("too few nighttime counts above the Pareto scale")
    log_excess = float(np.sum(np.log(tail / scale)))
    if log_excess <= 0:
        raise CheckError("nighttime counts are degenerate at the scale")
    return {
        "arrival-peak-mu-max-rel-error": float(max(mu_errors)),
        "arrival-night-scale-max-rel-error": float(max(scale_errors)),
        "arrival-emd-max": float(max(emds)),
        "pareto-shape-hill": float(tail.size / log_excess),
    }


def measure_circadian(table) -> dict[str, float]:
    """Fig 3 bi-modality: arrival-rate ratio of the day and night phases."""
    from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask

    if len(table) == 0:
        raise CheckError("cannot measure circadian structure of no sessions")
    per_minute = np.bincount(
        np.asarray(table.start_minute), minlength=MINUTES_PER_DAY
    )
    mask = peak_minute_mask()
    night_mean = float(per_minute[~mask].mean())
    if night_mean <= 0:
        raise CheckError("no nighttime arrivals at all")
    return {
        "circadian-day-night-ratio": float(per_minute[mask].mean())
        / night_mean
    }


def measure_all(
    table, network, bank, n_days: int, rng: np.random.Generator
) -> dict[str, float]:
    """Measure every gated statistic on one campaign's artifacts."""
    measured: dict[str, float] = {}
    measured.update(measure_ranking(table))
    measured.update(measure_volume_models(table, bank, rng))
    measured.update(measure_duration_models(bank))
    measured.update(measure_arrivals(table, network, n_days))
    measured.update(measure_circadian(table))
    return measured


def evaluate(
    measured: dict[str, float],
    baseline,
    claims: "list[str] | tuple[str, ...] | None" = None,
) -> FidelityReport:
    """Judge measured statistics against a baseline's tolerance bands.

    Every gated claim must have been measured — a silently skipped claim
    would let a regression of the measurement code itself pass the gate —
    and every measured statistic must have a band, so new statistics cannot
    ship ungated.  A non-finite measurement always fails its band.

    ``claims`` (optional) restricts the gate to a named subset of the
    baseline's claims — the hook aggregate-only verification uses
    (:mod:`repro.campaign.fidelity`): a campaign that retained no sessions
    can still be judged on every claim its merged sketches determine,
    under the exact tolerance bands of the full gate.  The subset is
    checked just as strictly: unknown names are rejected, and every named
    claim must be measured.
    """
    if claims is None:
        gated = list(baseline.claims)
    else:
        foreign = sorted(set(claims) - set(baseline.claims))
        if foreign:
            raise CheckError(f"claims not in the baseline: {foreign}")
        wanted = set(claims)
        gated = [key for key in baseline.claims if key in wanted]
    unknown = sorted(set(measured) - set(gated))
    if unknown:
        raise CheckError(
            f"measured statistics without a baseline band: {unknown}"
        )
    missing = sorted(set(gated) - set(measured))
    if missing:
        raise CheckError(f"baseline claims never measured: {missing}")
    results = []
    for key in gated:
        claim = baseline.claims[key]
        value = float(measured[key])
        passed = bool(
            np.isfinite(value) and claim.lo <= value <= claim.hi
        )
        results.append(
            CheckResult(
                claim=key,
                statistic=key,
                value=value,
                lo=claim.lo,
                hi=claim.hi,
                passed=passed,
                provenance=claim.provenance,
            )
        )
    return FidelityReport(results=results)
