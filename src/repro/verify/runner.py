"""End-to-end driver of the statistical fidelity gate.

:func:`run_verification` assembles the verification pipeline — simulate the
baseline's small deterministic campaign, fit the session-level models, then
run the :func:`~repro.pipeline.standard.verify_stage` — and returns the
resulting :class:`~repro.verify.report.FidelityReport`.  Everything is
driven by the run's root seed through the pipeline's spawned seed streams,
so a given ``(seed, baseline)`` pair always yields the same report.
"""

from __future__ import annotations

from pathlib import Path
from typing import Callable

from ..pipeline.context import RunContext
from ..pipeline.stages import Pipeline, PipelineRun, StageEvent
from ..pipeline.standard import (
    fit_models_stage,
    network_stage,
    simulate_stage,
    verify_stage,
)
from .baseline import Baseline, default_baseline_path
from .report import FidelityReport


def verify_pipeline(baseline: Baseline) -> Pipeline:
    """The four-stage verification pipeline for one baseline.

    ``network -> simulate -> fit-models -> verify``: the campaign scale and
    the fitting threshold come from the baseline's campaign spec, so the
    statistics are measured on exactly the population the tolerance bands
    were calibrated for.  The simulated campaign is cached like any other
    pipeline campaign, so repeated gate runs skip re-simulation.
    """
    spec = baseline.campaign
    return Pipeline(
        [
            network_stage(spec.n_bs),
            simulate_stage(spec.n_days),
            fit_models_stage(spec.min_sessions),
            verify_stage(baseline, spec.n_days),
        ]
    )


def run_verification(
    ctx: RunContext,
    baseline: Baseline | None = None,
    baseline_path: str | Path | None = None,
    observer: Callable[[StageEvent], None] | None = None,
) -> tuple[FidelityReport, PipelineRun]:
    """Run the fidelity gate under one run context.

    ``baseline`` takes precedence; otherwise the file at ``baseline_path``
    (default: the checked-in golden baseline, located via
    :func:`~repro.verify.baseline.default_baseline_path`) is loaded.
    Returns the report plus the full pipeline run, so callers can reuse the
    campaign and bank artifacts (e.g. for diagnostics on a failed gate).
    """
    if baseline is None:
        path = (
            Path(baseline_path)
            if baseline_path is not None
            else default_baseline_path()
        )
        baseline = Baseline.load(path)
        source = str(path)
    else:
        source = "in-memory"
    run = verify_pipeline(baseline).run(ctx, observer=observer)
    report: FidelityReport = run.artifact("fidelity")
    report.meta["baseline"] = source
    return report, run
