"""Statistical fidelity gate: regression-test the paper's claims end-to-end.

This package turns the paper's headline quantitative results — the Fig 4
exponential service ranking, the Section 5.2 volume-mixture fidelity, the
Fig 10 duration–volume power laws, the Section 5.1 bi-modal arrival process
and the Fig 3 circadian structure — into an executable gate: a small
deterministic campaign is simulated through the standard pipeline, the
statistics are measured on its artifacts, and each is judged against the
tolerance bands of the checked-in golden baseline
(``baselines/paper_claims.json``).

Entry points: the ``repro-traffic verify`` CLI subcommand, the
``pytest -m fidelity`` test marker, and :func:`run_verification` for
programmatic use.
"""

from .baseline import (
    Baseline,
    BaselineError,
    CampaignSpec,
    ClaimBand,
    default_baseline_path,
)
from .checks import CheckError, evaluate, measure_all
from .report import CheckResult, FidelityReport, ReportError
from .runner import run_verification, verify_pipeline

__all__ = [
    "Baseline",
    "BaselineError",
    "CampaignSpec",
    "CheckError",
    "CheckResult",
    "ClaimBand",
    "FidelityReport",
    "ReportError",
    "default_baseline_path",
    "evaluate",
    "measure_all",
    "run_verification",
    "verify_pipeline",
]
