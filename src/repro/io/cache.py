"""Content-keyed artifact cache: skip recomputation of unchanged stages.

A pipeline stage's product is fully determined by its configuration and the
run's root seed, so both are folded into a canonical digest — the *content
key* — and the artifact is persisted under it.  A later run with the same
key loads the artifact instead of recomputing it; any change to the
configuration, the seed, or the artifact-format version produces a
different key and a clean miss (stale entries are simply never read).

Layout on disk: ``<root>/<kind>/<key><suffix>``, e.g.
``.repro-cache/campaign/1f0c9a….npz``.  Writes go through a temporary file
plus atomic rename, so a crashed run can never leave a truncated artifact
behind that a later run would trust.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import itertools
import json
import os
import threading
from pathlib import Path
from typing import TYPE_CHECKING, Any, Callable, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..dataset.records import SessionTable
    from ..obs.telemetry import Telemetry

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

#: Bump when a cached artifact's on-disk format changes incompatibly.
CACHE_FORMAT_VERSION = 1

#: Monotonic counter making concurrent same-process writes collision-free.
_TMP_COUNTER = itertools.count()


class CacheError(ValueError):
    """Raised on invalid cache keys or unreadable cached artifacts."""


def describe(value: Any) -> Any:
    """Canonical JSON-able description of a configuration value.

    Dataclasses become ``{"__type__": name, **fields}``, enums their value,
    numpy scalars plain Python numbers, mappings and sequences recurse.
    Used to build stable content keys from configuration objects without
    each of them having to implement a serialization protocol.
    """
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        described = {
            field.name: describe(getattr(value, field.name))
            for field in dataclasses.fields(value)
        }
        described["__type__"] = type(value).__name__
        return described
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, Mapping):
        return {str(k): describe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [describe(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise CacheError(
        f"cannot build a content key from a {type(value).__name__} value"
    )


def content_key(parts: Mapping[str, Any]) -> str:
    """Stable hexadecimal digest of a configuration mapping.

    The mapping is canonicalized with :func:`describe`, serialized with
    sorted keys and hashed with SHA-256; the first 20 hex characters are
    plenty against accidental collisions.
    """
    payload = describe(dict(parts, cache_format=CACHE_FORMAT_VERSION))
    text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:20]


def default_cache_root() -> Path:
    """Cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR))


class ArtifactCache:
    """Directory of cached artifacts addressed by (kind, content key).

    With a :class:`~repro.obs.telemetry.Telemetry` attached, every probe,
    load and store increments the run's cache metrics (``cache.hit``,
    ``cache.miss``, ``cache.error``, ``cache.stores``, ``cache.bytes_read``,
    ``cache.bytes_written``) — purely observational, artifact contents and
    keys are untouched.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        telemetry: "Telemetry | None" = None,
    ):
        self.root = Path(root) if root is not None else default_cache_root()
        self.telemetry = telemetry

    def _count(self, name: str, amount: int | float = 1) -> None:
        """Increment one cache metric when telemetry is attached."""
        if self.telemetry is not None:
            self.telemetry.metrics.counter(name).inc(amount)

    def path_for(self, kind: str, key: str, suffix: str) -> Path:
        """Path an artifact of ``kind`` with content ``key`` lives at."""
        if not kind or any(sep in kind for sep in "/\\"):
            raise CacheError(f"invalid artifact kind {kind!r}")
        if not key:
            raise CacheError("empty content key")
        return self.root / kind / f"{key}{suffix}"

    def has(self, kind: str, key: str, suffix: str) -> bool:
        """Whether an artifact is present for this content key.

        A negative probe counts as one ``cache.miss`` — this is the
        question every caller asks before deciding to recompute.
        """
        present = self.path_for(kind, key, suffix).exists()
        if not present:
            self._count("cache.miss")
        return present

    def store(
        self,
        kind: str,
        key: str,
        suffix: str,
        save: Callable[[Path], None],
    ) -> Path:
        """Persist an artifact atomically via the ``save(path)`` callback.

        ``save`` writes to a temporary path; the file is renamed into place
        only after the write completed, so concurrent or crashed runs never
        expose partial artifacts.  The temporary name is unique per process,
        thread *and* store call, so concurrent writers of the same key never
        step on each other's half-written file — the last rename wins and
        every intermediate state of the final path is a complete artifact.
        """
        final = self.path_for(kind, key, suffix)
        final.parent.mkdir(parents=True, exist_ok=True)
        tmp = final.with_name(
            f".tmp-{os.getpid()}-{threading.get_ident()}-"
            f"{next(_TMP_COUNTER)}-{final.name}"
        )
        try:
            save(tmp)
            os.replace(tmp, final)
        finally:
            tmp.unlink(missing_ok=True)
        self._count("cache.stores")
        try:
            self._count("cache.bytes_written", final.stat().st_size)
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        return final

    def fetch(
        self,
        kind: str,
        key: str,
        suffix: str,
        load: Callable[[Path], Any],
    ) -> Any:
        """Load a cached artifact via the ``load(path)`` callback."""
        path = self.path_for(kind, key, suffix)
        if not path.exists():
            self._count("cache.miss")
            raise CacheError(f"no cached {kind} artifact for key {key}")
        try:
            value = load(path)
        except Exception as exc:
            self._count("cache.error")
            raise CacheError(f"cannot load cached {kind} at {path}: {exc}") from exc
        self._count("cache.hit")
        try:
            self._count("cache.bytes_read", path.stat().st_size)
        except OSError:  # pragma: no cover - concurrent eviction
            pass
        return value


def save_table(path: str | Path, table: "SessionTable") -> None:
    """Persist a :class:`SessionTable` as a compressed ``.npz`` archive."""
    from ..dataset.records import SessionTable

    np.savez_compressed(
        str(path), **{col: getattr(table, col) for col in SessionTable.COLUMNS}
    )


def load_table(path: str | Path) -> "SessionTable":
    """Inverse of :func:`save_table`.

    Any way the archive can be broken — truncated zip, missing columns,
    arrays that fail :class:`SessionTable` validation — surfaces as
    :class:`CacheError`, so callers have a single corruption signal.
    """
    import zipfile

    from ..dataset.records import SessionTable

    try:
        with np.load(str(path)) as archive:
            return SessionTable(
                *(archive[col] for col in SessionTable.COLUMNS)
            )
    except (OSError, KeyError, ValueError, zipfile.BadZipFile, EOFError) as exc:
        raise CacheError(f"cannot read session table at {path}: {exc}") from exc
