"""Model-parameter persistence.

The paper releases each service model as the tuple
``[mu_s, sigma_s, {k_n, mu_n, sigma_n}_n, alpha_s, beta_s]``.  This module
wraps the JSON round-trip of a whole :class:`~repro.core.model_bank.ModelBank`
together with the arrival-model parameters, producing a single,
human-readable release artefact.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..core.arrivals import ArrivalModel
from ..core.model_bank import ModelBank, ModelBankError

#: Schema tag written into release files.
FORMAT_VERSION = 1


class ParamsError(ValueError):
    """Raised on malformed release files."""


def save_release(
    path: str | Path,
    bank: ModelBank,
    arrival_models: dict[str, ArrivalModel] | None = None,
) -> None:
    """Write a model release file.

    ``arrival_models`` maps an arbitrary label (e.g. a BS decile name) to a
    fitted arrival model; it is optional because the per-service models are
    meaningful on their own.
    """
    payload = {
        "format_version": FORMAT_VERSION,
        "services": json.loads(bank.to_json()),
        "arrivals": {
            label: {
                "peak_mu": model.peak_mu,
                "peak_sigma": model.peak_sigma,
                "night_scale": model.night_scale,
                "night_shape": model.night_shape,
            }
            for label, model in (arrival_models or {}).items()
        },
    }
    Path(path).write_text(json.dumps(payload, indent=2, sort_keys=True))


def load_release(
    path: str | Path,
) -> tuple[ModelBank, dict[str, ArrivalModel]]:
    """Read a model release file back into live objects."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ParamsError(f"cannot read release file: {exc}") from exc
    if payload.get("format_version") != FORMAT_VERSION:
        raise ParamsError(
            f"unsupported format version {payload.get('format_version')!r}"
        )
    try:
        bank = ModelBank.from_json(json.dumps(payload["services"]))
    except (KeyError, ModelBankError) as exc:
        raise ParamsError(f"malformed services section: {exc}") from exc

    arrivals: dict[str, ArrivalModel] = {}
    for label, entry in payload.get("arrivals", {}).items():
        try:
            arrivals[label] = ArrivalModel(
                peak_mu=float(entry["peak_mu"]),
                peak_sigma=float(entry["peak_sigma"]),
                night_scale=float(entry["night_scale"]),
                night_shape=float(entry.get("night_shape", 1.765)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ParamsError(f"malformed arrival entry {label!r}: {exc}") from exc
    return bank, arrivals
