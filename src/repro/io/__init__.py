"""Persistence and presentation helpers."""

from .params import load_release, save_release
from .tables import format_table, print_table
from .traces import read_trace, trace_to_string, write_trace

__all__ = [
    "format_table",
    "load_release",
    "print_table",
    "read_trace",
    "save_release",
    "trace_to_string",
    "write_trace",
]
