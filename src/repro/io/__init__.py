"""Persistence and presentation helpers."""

from .cache import ArtifactCache, content_key, load_table, save_table
from .params import load_release, save_release
from .spool import SEGMENT_SUFFIX, load_segment, save_segment
from .tables import format_table, print_table
from .traces import read_trace, trace_to_string, write_trace

__all__ = [
    "ArtifactCache",
    "SEGMENT_SUFFIX",
    "content_key",
    "format_table",
    "load_release",
    "load_segment",
    "load_table",
    "print_table",
    "read_trace",
    "save_release",
    "save_segment",
    "save_table",
    "trace_to_string",
    "write_trace",
]
