"""Session-trace export/import: CSV interchange with external tools.

Session-level models can "inform new traffic generators for modern network
simulators" (Section 1, citing the ns-3 NGMN work).  The practical bridge
is a trace file: this module round-trips a
:class:`~repro.dataset.records.SessionTable` through a plain CSV (optionally
gzip-compressed), one row per transport session, with a header carrying
the column schema.
"""

from __future__ import annotations

import csv
import gzip
import io
from pathlib import Path

import numpy as np

from ..dataset.records import SERVICE_INDEX, SERVICE_NAMES, SessionTable

#: Column order of the trace format.
TRACE_COLUMNS = (
    "service",
    "bs_id",
    "day",
    "start_minute",
    "duration_s",
    "volume_mb",
    "truncated",
)


class TraceError(ValueError):
    """Raised on malformed trace files."""


class _DeterministicGzipWriter(io.TextIOWrapper):
    """Text writer over gzip with a pinned header (mtime 0, no filename).

    The stock ``gzip.open`` embeds the wall-clock time and output filename
    in the stream header, so two exports of the same campaign differ at
    the byte level.  Pinning both makes same-seed traces comparable with a
    plain ``cmp``.
    """

    def __init__(self, path: Path):
        self._raw = open(path, "wb")
        stream = gzip.GzipFile(
            filename="", fileobj=self._raw, mode="wb", mtime=0
        )
        super().__init__(stream, encoding="utf-8", newline="")

    def close(self) -> None:
        """Flush and close the gzip stream and the underlying file."""
        try:
            super().close()
        finally:
            self._raw.close()


def _open_text(path: Path, mode: str):
    if path.suffix == ".gz":
        if mode == "w":
            return _DeterministicGzipWriter(path)
        return gzip.open(path, mode + "t", encoding="utf-8", newline="")
    return open(path, mode, encoding="utf-8", newline="")


#: Rows formatted and flushed per chunk during export.
WRITE_CHUNK_ROWS = 100_000

_SERVICE_NAME_ARRAY = np.asarray(SERVICE_NAMES, dtype=object)


def write_trace(
    table: SessionTable, path: str | Path, chunk_rows: int = WRITE_CHUNK_ROWS
) -> int:
    """Write a session table as CSV (gzip if the path ends in ``.gz``).

    Returns the number of rows written.  Services are stored by name, so
    traces stay readable and robust to catalog reordering.  Rows are
    rendered and flushed in chunks of ``chunk_rows``: each chunk's columns
    are formatted vectorized (multi-million-session campaigns export in
    seconds) but only one chunk of formatted strings is ever held in
    memory, so export memory stays bounded regardless of campaign size.
    """
    if chunk_rows < 1:
        raise TraceError(f"chunk_rows must be >= 1, got {chunk_rows}")
    path = Path(path)
    with _open_text(path, "w") as handle:
        handle.write(",".join(TRACE_COLUMNS) + "\r\n")
        for lo in range(0, len(table), chunk_rows):
            hi = min(lo + chunk_rows, len(table))
            block = [
                _SERVICE_NAME_ARRAY[table.service_idx[lo:hi]],
                table.bs_id[lo:hi].astype(str),
                table.day[lo:hi].astype(str),
                table.start_minute[lo:hi].astype(str),
                np.char.mod("%.3f", table.duration_s[lo:hi].astype(float)),
                np.char.mod("%.6f", table.volume_mb[lo:hi].astype(float)),
                table.truncated[lo:hi].astype(int).astype(str),
            ]
            lines = [",".join(row) for row in zip(*block)]
            if lines:
                handle.write("\r\n".join(lines) + "\r\n")
    return len(table)


def read_trace(path: str | Path) -> SessionTable:
    """Read a trace written by :func:`write_trace` back into a table."""
    path = Path(path)
    try:
        with _open_text(path, "r") as handle:
            reader = csv.reader(handle)
            try:
                header = next(reader)
            except StopIteration:
                raise TraceError("trace file is empty") from None
            if tuple(header) != TRACE_COLUMNS:
                raise TraceError(
                    f"unexpected trace header {header!r}; "
                    f"expected {list(TRACE_COLUMNS)}"
                )
            rows = list(reader)
    except OSError as exc:
        raise TraceError(f"cannot read trace: {exc}") from exc

    if not rows:
        return SessionTable.empty()

    try:
        service_idx = np.array(
            [SERVICE_INDEX[row[0]] for row in rows], dtype=np.int16
        )
    except KeyError as exc:
        raise TraceError(f"unknown service in trace: {exc}") from exc
    try:
        return SessionTable(
            service_idx=service_idx,
            bs_id=np.array([int(row[1]) for row in rows]),
            day=np.array([int(row[2]) for row in rows]),
            start_minute=np.array([int(row[3]) for row in rows]),
            duration_s=np.array([float(row[4]) for row in rows]),
            volume_mb=np.array([float(row[5]) for row in rows]),
            truncated=np.array([bool(int(row[6])) for row in rows]),
        )
    except (IndexError, ValueError) as exc:
        raise TraceError(f"malformed trace row: {exc}") from exc


def trace_to_string(table: SessionTable) -> str:
    """Render a (small) table as an in-memory CSV string."""
    buffer = io.StringIO()
    writer = csv.writer(buffer)
    writer.writerow(TRACE_COLUMNS)
    for record in table.rows():
        writer.writerow(
            [
                record.service,
                record.bs_id,
                record.day,
                record.start_minute,
                f"{record.duration_s:.3f}",
                f"{record.volume_mb:.6f}",
                int(record.truncated),
            ]
        )
    return buffer.getvalue()
