"""Raw columnar segment format for arena-backed campaign spooling.

A *segment* is one :class:`~repro.dataset.records.SessionTable` chunk laid
out exactly as the :class:`~repro.dataset.records.SessionArena` holds it:
a one-line JSON header describing the schema, followed by each column's
raw buffer bytes in schema order.  Writing is a straight sequence of
buffer dumps — no compression, no archive framing — which is what lets
:meth:`~repro.core.generator.TrafficGenerator.spool_campaign` stream
country-scale campaigns at memory bandwidth; reading can either copy the
columns out or memory-map them in place (``load_segment(memmap=True)``),
so chunk consumers never pay a decompression pass.

The header pins the schema (names, dtypes, row count) and the loader
cross-checks it against :data:`~repro.dataset.records.TABLE_SCHEMA` plus
the file's actual size, so any truncation or drift surfaces as a hard
error — which the artifact cache's ``fetch`` wraps into
:class:`~repro.io.cache.CacheError`, the single corruption signal the
spool-resume path regenerates on.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..dataset.records import TABLE_SCHEMA, SessionTable

#: Artifact suffix of raw segment spools (vs ``".npz"`` archives).
SEGMENT_SUFFIX = ".seg"

#: Magic identifying a segment header; bump the version on layout changes.
_SEGMENT_FORMAT = "repro-segment"
_SEGMENT_VERSION = 1


class SegmentError(ValueError):
    """Raised on malformed, truncated, or schema-drifted segment files."""


def _header_bytes(n: int) -> bytes:
    """The newline-terminated JSON header of an ``n``-row segment."""
    header = {
        "format": _SEGMENT_FORMAT,
        "version": _SEGMENT_VERSION,
        "n": n,
        "columns": [[spec.name, spec.dtype] for spec in TABLE_SCHEMA],
    }
    return (json.dumps(header, separators=(",", ":")) + "\n").encode("ascii")


def save_segment(path: str | Path, table: SessionTable) -> None:
    """Write ``table`` as one raw columnar segment.

    Columns are dumped in schema order as contiguous raw buffers — the
    arena's own layout — so writing is bounded by disk bandwidth alone.
    """
    n = len(table)
    with open(path, "wb") as fh:
        fh.write(_header_bytes(n))
        for spec in TABLE_SCHEMA:
            fh.write(np.ascontiguousarray(getattr(table, spec.name)).tobytes())


def load_segment(path: str | Path, *, memmap: bool = False) -> SessionTable:
    """Read a segment back as a (validated) :class:`SessionTable`.

    With ``memmap=True`` the columns are memory-mapped read-only straight
    from the file instead of copied into fresh arrays — the bounded-memory
    consumer path for country-scale spools.

    Raises :class:`SegmentError` on any structural problem: bad magic,
    schema drift against :data:`TABLE_SCHEMA`, or a file size that does
    not match the declared row count (truncation).
    """
    path = Path(path)
    with open(path, "rb") as fh:
        line = fh.readline()
        data_start = fh.tell()
    try:
        header = json.loads(line)
    except (ValueError, UnicodeDecodeError) as exc:
        raise SegmentError(f"unreadable segment header in {path}") from exc
    if (
        not isinstance(header, dict)
        or header.get("format") != _SEGMENT_FORMAT
        or header.get("version") != _SEGMENT_VERSION
    ):
        raise SegmentError(f"{path} is not a v{_SEGMENT_VERSION} segment")
    expected_columns = [[spec.name, spec.dtype] for spec in TABLE_SCHEMA]
    if header.get("columns") != expected_columns:
        raise SegmentError(
            f"segment schema of {path} does not match TABLE_SCHEMA"
        )
    n = header.get("n")
    if not isinstance(n, int) or n < 0:
        raise SegmentError(f"segment {path} declares invalid row count {n!r}")
    offsets = []
    offset = data_start
    for spec in TABLE_SCHEMA:
        offsets.append(offset)
        offset += n * spec.np_dtype.itemsize
    if path.stat().st_size != offset:
        raise SegmentError(
            f"segment {path} is truncated or padded: expected {offset} bytes,"
            f" found {path.stat().st_size}"
        )
    columns = []
    if memmap and n:
        for spec, col_offset in zip(TABLE_SCHEMA, offsets):
            columns.append(
                np.memmap(
                    path,
                    dtype=spec.np_dtype,
                    mode="r",
                    offset=col_offset,
                    shape=(n,),
                )
            )
    else:
        with open(path, "rb") as fh:
            fh.seek(data_start)
            for spec in TABLE_SCHEMA:
                raw = fh.read(n * spec.np_dtype.itemsize)
                columns.append(np.frombuffer(raw, dtype=spec.np_dtype))
    return SessionTable(*columns)
