"""Fixed-width text table rendering for benchmark and CLI output.

The benchmark harness regenerates the paper's tables and figure series as
plain text; this module keeps the formatting in one place so every bench
prints consistent, alignment-stable rows.
"""

from __future__ import annotations


class TableError(ValueError):
    """Raised on inconsistent table input."""


def format_table(
    headers: list[str],
    rows: list[list],
    float_format: str = "{:.4g}",
) -> str:
    """Render rows as a fixed-width table with a header separator.

    Floats are formatted with ``float_format``; everything else with
    ``str``.  Column widths adapt to the content.
    """
    if not headers:
        raise TableError("need at least one column")
    rendered: list[list[str]] = []
    for row in rows:
        if len(row) != len(headers):
            raise TableError(
                f"row has {len(row)} cells, expected {len(headers)}"
            )
        rendered.append(
            [
                float_format.format(cell) if isinstance(cell, float) else str(cell)
                for cell in row
            ]
        )

    widths = [
        max(len(headers[i]), *(len(r[i]) for r in rendered)) if rendered
        else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def print_table(headers: list[str], rows: list[list], title: str | None = None) -> None:
    """Print a table, optionally preceded by an underlined title."""
    if title:
        print(title)
        print("=" * len(title))
    print(format_table(headers, rows))
    print()
