"""Application use cases: the paper's two (Section 6) plus extensions."""
