"""Energy consumption in CU-DU vRAN orchestration (Section 6.2)."""

from .binpacking import IncrementalPacker, PackingResult, first_fit_decreasing
from .power import PS_CAPACITY_MBPS, PS_IDLE_W, PS_MAX_W, PowerModel
from .simulator import (
    OrchestrationTrace,
    VranOutcome,
    VranScenario,
    ape_per_ts,
    run_orchestration,
    run_vran_experiment,
)
from .sources import (
    ArrivalSkeleton,
    CategorySource,
    EmpiricalServiceSampler,
    MeasurementSource,
    ModelBankSource,
    generate_skeleton,
)
from .topology import RadioUnit, VranTopology

__all__ = [
    "ArrivalSkeleton",
    "CategorySource",
    "EmpiricalServiceSampler",
    "IncrementalPacker",
    "MeasurementSource",
    "ModelBankSource",
    "OrchestrationTrace",
    "PS_CAPACITY_MBPS",
    "PS_IDLE_W",
    "PS_MAX_W",
    "PackingResult",
    "PowerModel",
    "RadioUnit",
    "VranOutcome",
    "VranScenario",
    "VranTopology",
    "ape_per_ts",
    "first_fit_decreasing",
    "generate_skeleton",
    "run_orchestration",
    "run_vran_experiment",
]
