"""vRAN topology of the Section 6.2 experiment.

One Telco Cloud Site (CS) hosts the Centralized Units serving ``n_es`` Far
Edge Sites (ES); each ES hosts one Distributed Unit handling ``n_ru_per_es``
Radio Units (RU).  The paper's scale is 20 ES × 20 RU; smaller instances
preserve every mechanism and are used by tests.

Each RU is assigned a BS load decile (round-robin over the ten classes) and
carries the corresponding bi-modal arrival model of Section 5.1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...core.arrivals import ArrivalModel
from ...dataset.network import NIGHT_SCALE_RATIO, PEAK_SIGMA_RATIO, decile_peak_rate


@dataclass(frozen=True)
class RadioUnit:
    """One RU: its flat index, parent ES and load decile."""

    ru_id: int
    es_id: int
    decile: int

    def arrival_model(self) -> ArrivalModel:
        """The bi-modal arrival model of this RU's load class."""
        peak = decile_peak_rate(self.decile)
        return ArrivalModel(
            peak_mu=peak,
            peak_sigma=peak * PEAK_SIGMA_RATIO,
            night_scale=peak * NIGHT_SCALE_RATIO,
        )


@dataclass(frozen=True)
class VranTopology:
    """The CS / ES / RU hierarchy.

    Paper values: ``n_es = 20``, ``n_ru_per_es = 20``.
    """

    n_es: int = 20
    n_ru_per_es: int = 20

    def __post_init__(self) -> None:
        if self.n_es < 1 or self.n_ru_per_es < 1:
            raise ValueError("topology sizes must be >= 1")

    @property
    def n_ru(self) -> int:
        """Total number of radio units."""
        return self.n_es * self.n_ru_per_es

    def radio_units(self) -> list[RadioUnit]:
        """All RUs, with deciles assigned round-robin so every ES serves a
        mix of lightly and heavily loaded cells."""
        units = []
        for ru_id in range(self.n_ru):
            units.append(
                RadioUnit(ru_id=ru_id, es_id=ru_id // self.n_ru_per_es,
                          decile=ru_id % 10)
            )
        return units

    def es_of_ru(self, ru_id: int) -> int:
        """Parent ES of one RU."""
        if not 0 <= ru_id < self.n_ru:
            raise ValueError(f"ru_id out of range: {ru_id}")
        return ru_id // self.n_ru_per_es
