"""Bin-packing heuristics for session-to-PS placement (Section 6.2.1).

The orchestrator minimizes the number of active physical servers by packing
the throughput of served sessions into PSs of fixed capacity — the
classical bin-packing problem, solved with the first-fit(-decreasing)
heuristics of Johnson's thesis [18], which the paper cites.

Two entry points:

* :func:`first_fit_decreasing` — offline packing of a batch of items;
* :class:`IncrementalPacker` — the per-time-slot online variant used by
  the orchestration loop: new sessions are first-fit placed, departed
  sessions free capacity, and a consolidation pass drains nearly-empty
  bins so PSs can be switched off.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np


class PackingError(ValueError):
    """Raised on invalid packing input."""


@dataclass
class PackingResult:
    """Outcome of an offline packing run."""

    bin_loads: list[float]
    assignments: list[int]

    @property
    def n_bins(self) -> int:
        """Number of bins opened."""
        return len(self.bin_loads)


def first_fit_decreasing(items, capacity: float) -> PackingResult:
    """Pack ``items`` into bins of ``capacity`` by first-fit decreasing.

    Returns the bin loads and, for each input item (original order), the
    index of its bin.  Items larger than the capacity are rejected.
    """
    items = np.asarray(items, dtype=float)
    if capacity <= 0:
        raise PackingError("capacity must be positive")
    if items.size and items.max() > capacity * (1 + 1e-12):
        raise PackingError("an item exceeds the bin capacity")
    if np.any(items < 0):
        raise PackingError("items must be non-negative")

    order = np.argsort(-items, kind="stable")
    loads: list[float] = []
    assignments = [0] * items.size
    for idx in order:
        size = float(items[idx])
        for b, load in enumerate(loads):
            if load + size <= capacity + 1e-12:
                loads[b] = load + size
                assignments[idx] = b
                break
        else:
            loads.append(size)
            assignments[idx] = len(loads) - 1
    return PackingResult(bin_loads=loads, assignments=assignments)


@dataclass
class _Bin:
    """One active PS: its load, resident sessions and their groups."""

    load: float = 0.0
    sessions: dict[int, float] = field(default_factory=dict)
    groups: dict[int, int] = field(default_factory=dict)  # group -> count
    group_load: dict[int, float] = field(default_factory=dict)


class IncrementalPacker:
    """Online session packing with departures and consolidation.

    Sessions are identified by opaque integer ids.  Capacity checks use a
    small epsilon so that float accumulation never spuriously rejects a
    fitting session.

    When ``group_affinity`` is enabled, each session carries a group label
    (e.g. its Distributed Unit) and first-fit placement prefers PSs
    already hosting that group — modelling the fronthaul benefit of
    keeping one DU's processing on few servers.  Affinity is a soft
    preference: capacity permitting nothing, any PS is used.
    """

    def __init__(self, capacity: float, group_affinity: bool = False):
        if capacity <= 0:
            raise PackingError("capacity must be positive")
        self.capacity = float(capacity)
        self.group_affinity = bool(group_affinity)
        self._bins: dict[int, _Bin] = {}
        self._session_bin: dict[int, int] = {}
        self._session_group: dict[int, int] = {}
        self._ids = itertools.count()

    # ------------------------------------------------------------------
    @property
    def n_bins(self) -> int:
        """Number of active PSs."""
        return len(self._bins)

    @property
    def total_load(self) -> float:
        """Aggregate throughput across all PSs."""
        return sum(b.load for b in self._bins.values())

    def bin_loads(self) -> np.ndarray:
        """Loads of the active PSs."""
        return np.array([b.load for b in self._bins.values()])

    # ------------------------------------------------------------------
    def _candidate_bins(self, group: int | None):
        """Bins in placement-preference order for a session of ``group``."""
        if not self.group_affinity or group is None:
            return list(self._bins.items())
        # Prefer the bins where this group already concentrates the most
        # load (mere membership is too weak: one stray session would make
        # every bin look like a candidate).
        return sorted(
            self._bins.items(),
            key=lambda item: -item[1].group_load.get(group, 0.0),
        )

    def add(self, session_id: int, size: float, group: int | None = None) -> None:
        """Place one new session by (affinity-aware) first-fit."""
        if size < 0 or size > self.capacity * (1 + 1e-12):
            raise PackingError(f"session size {size} does not fit a PS")
        if session_id in self._session_bin:
            raise PackingError(f"session {session_id} already placed")
        for bin_id, psbin in self._candidate_bins(group):
            if psbin.load + size <= self.capacity + 1e-9:
                self._place(bin_id, session_id, size, group)
                return
        bin_id = next(self._ids)
        self._bins[bin_id] = _Bin()
        self._place(bin_id, session_id, size, group)

    def _place(
        self, bin_id: int, session_id: int, size: float, group: int | None
    ) -> None:
        psbin = self._bins[bin_id]
        psbin.sessions[session_id] = size
        psbin.load += size
        if group is not None:
            psbin.groups[group] = psbin.groups.get(group, 0) + 1
            psbin.group_load[group] = psbin.group_load.get(group, 0.0) + size
            self._session_group[session_id] = group
        self._session_bin[session_id] = bin_id

    def add_batch(
        self,
        session_ids: list[int],
        sizes: np.ndarray,
        groups: np.ndarray | None = None,
    ) -> None:
        """Place a batch of new sessions, largest first (FFD order)."""
        sizes = np.asarray(sizes, dtype=float)
        if len(session_ids) != sizes.size:
            raise PackingError("ids and sizes must align")
        if groups is not None and len(session_ids) != len(groups):
            raise PackingError("ids and groups must align")
        for pos in np.argsort(-sizes, kind="stable"):
            group = None if groups is None else int(groups[pos])
            self.add(session_ids[pos], float(sizes[pos]), group)

    def remove(self, session_id: int) -> None:
        """Remove a finished session, closing its PS if now empty."""
        try:
            bin_id = self._session_bin.pop(session_id)
        except KeyError:
            raise PackingError(f"unknown session {session_id}") from None
        psbin = self._bins[bin_id]
        size = psbin.sessions.pop(session_id)
        psbin.load -= size
        group = self._session_group.pop(session_id, None)
        if group is not None:
            psbin.groups[group] -= 1
            psbin.group_load[group] -= size
            if psbin.groups[group] == 0:
                del psbin.groups[group]
                del psbin.group_load[group]
        if not psbin.sessions:
            del self._bins[bin_id]

    # ------------------------------------------------------------------
    def group_concentration(self) -> float:
        """Fraction of each group's load hosted on its single best PS.

        Averaged over groups, weighted by group load; 1.0 means every
        group's processing sits on one server (perfect DU locality), and
        the value decays towards ``1 / n_bins`` as groups smear out.
        Returns 1.0 for an empty system.
        """
        peak: dict[int, float] = {}
        total: dict[int, float] = {}
        for psbin in self._bins.values():
            for group, load in psbin.group_load.items():
                total[group] = total.get(group, 0.0) + load
                peak[group] = max(peak.get(group, 0.0), load)
        grand_total = sum(total.values())
        if grand_total <= 0:
            return 1.0
        return float(sum(peak.values()) / grand_total)

    def mean_groups_per_bin(self) -> float:
        """Average number of distinct groups (DUs) hosted per active PS.

        The fronthaul-fragmentation metric of the affinity policy; returns
        0 for an empty system.
        """
        if not self._bins:
            return 0.0
        return float(
            np.mean([max(len(b.groups), 1) for b in self._bins.values()])
        )

    # ------------------------------------------------------------------
    def consolidate(self) -> int:
        """Drain the least-loaded PSs into the rest; returns PSs closed.

        Repeatedly tries to relocate every session of the least-loaded PS
        into the other PSs (first-fit); stops at the first PS that cannot
        be fully drained.  This is the per-TS energy-minimization step.
        """
        closed = 0
        while len(self._bins) > 1:
            victim_id = min(self._bins, key=lambda b: self._bins[b].load)
            victim = self._bins[victim_id]
            others = [
                (bin_id, psbin)
                for bin_id, psbin in self._bins.items()
                if bin_id != victim_id
            ]
            free = sum(self.capacity - psbin.load for _, psbin in others)
            if victim.load > free + 1e-9:
                break
            # Tentatively relocate, largest session first; with affinity
            # enabled, target bins already hosting the session's group are
            # tried first so consolidation does not undo DU locality.
            moves: list[tuple[int, float, int]] = []
            feasible = True
            loads = {bin_id: psbin.load for bin_id, psbin in others}
            for session_id, size in sorted(
                victim.sessions.items(), key=lambda kv: -kv[1]
            ):
                group = self._session_group.get(session_id)
                if self.group_affinity and group is not None:
                    ordered = sorted(
                        others,
                        key=lambda item: -item[1].group_load.get(group, 0.0),
                    )
                else:
                    ordered = others
                for bin_id, _ in ordered:
                    if loads[bin_id] + size <= self.capacity + 1e-9:
                        loads[bin_id] += size
                        moves.append((session_id, size, bin_id))
                        break
                else:
                    feasible = False
                    break
            if not feasible:
                break
            for session_id, size, bin_id in moves:
                target = self._bins[bin_id]
                target.sessions[session_id] = size
                target.load += size
                self._session_bin[session_id] = bin_id
                group = self._session_group.get(session_id)
                if group is not None:
                    target.groups[group] = target.groups.get(group, 0) + 1
                    target.group_load[group] = (
                        target.group_load.get(group, 0.0) + size
                    )
            del self._bins[victim_id]
            closed += 1
        return closed
