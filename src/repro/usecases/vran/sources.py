"""Session traffic sources for the vRAN experiment (Section 6.2.2).

All strategies share one *arrival skeleton* — the same realization of
per-RU, per-second session arrivals with their service labels ("we employ
the same realization of class-level session arrivals in all tests to avoid
biases").  Each source then decorates every arrival with a volume and a
duration:

* ``measurement`` — strategy (i): sample the measured ``F_s(x)`` and match
  the volume to the measured ``v_s(d)`` pairs to derive the duration;
* ``model`` — strategy (ii): the fitted session-level models (Section 5.4);
* ``bm a / bm b / bm c`` — strategy (iii): the 3-category literature
  models, raw (a), normalized to the total measured throughput (b), or
  normalized per category (c).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...analysis.histogram import LogHistogram
from ...core.arrivals import ArrivalModel
from ...core.model_bank import ModelBank
from ...core.service_mix import ServiceMix
from ...dataset.aggregation import (
    DurationVolumeCurve,
    pooled_duration_volume,
    pooled_volume_pdf,
)
from ...dataset.records import SERVICE_NAMES, SessionTable
from ...dataset.services import LiteratureCategory, get_service
from ..slicing.benchmarks import CATEGORY_MODELS
from .topology import VranTopology

#: Minimum sessions a service needs in the campaign to enter the experiment.
MIN_SOURCE_SESSIONS = 300


class SourceError(ValueError):
    """Raised on inconsistent traffic-source configuration."""


@dataclass(frozen=True)
class ArrivalSkeleton:
    """The shared arrival realization: one row per session."""

    t_start_s: np.ndarray
    ru_idx: np.ndarray
    service_idx: np.ndarray
    horizon_s: float

    def __len__(self) -> int:
        return int(self.t_start_s.size)


def generate_skeleton(
    topology: VranTopology,
    mix: ServiceMix,
    rng: np.random.Generator,
    horizon_s: float,
    start_minute_of_day: int = 600,
) -> ArrivalSkeleton:
    """Draw the shared arrival realization over all RUs.

    Per-RU per-minute counts follow each RU's bi-modal arrival model
    (Section 4.1); arrivals are spread uniformly within their minute.
    ``start_minute_of_day`` anchors the circadian phase (default 10:00).
    """
    if horizon_s <= 0:
        raise SourceError("horizon must be positive")
    from ...dataset.circadian import DAY_START_HOUR, NIGHT_START_HOUR

    n_minutes = int(np.ceil(horizon_s / 60.0))
    minute_of_day = (start_minute_of_day + np.arange(n_minutes)) % 1440
    hours = minute_of_day // 60
    peak_phase = (hours >= DAY_START_HOUR) & (hours < NIGHT_START_HOUR)

    t_parts, ru_parts = [], []
    for unit in topology.radio_units():
        model: ArrivalModel = unit.arrival_model()
        counts = model.sample_minute_counts(rng, peak_phase)
        n = int(counts.sum())
        if n == 0:
            continue
        minute = np.repeat(np.arange(n_minutes), counts)
        t = minute * 60.0 + rng.random(n) * 60.0
        keep = t < horizon_s
        t_parts.append(t[keep])
        ru_parts.append(np.full(int(keep.sum()), unit.ru_id))

    if not t_parts:
        raise SourceError("arrival models produced no sessions")
    t_start = np.concatenate(t_parts)
    ru_idx = np.concatenate(ru_parts)
    order = np.argsort(t_start, kind="stable")
    t_start, ru_idx = t_start[order], ru_idx[order]
    service_idx = mix.sample(rng, t_start.size)
    return ArrivalSkeleton(
        t_start_s=t_start,
        ru_idx=ru_idx,
        service_idx=service_idx,
        horizon_s=float(horizon_s),
    )


# ----------------------------------------------------------------------
# Sources
# ----------------------------------------------------------------------

class EmpiricalServiceSampler:
    """Measured per-service statistics: sample F_s, invert v_s(d).

    The duration of a session of volume ``x`` is read off the measured
    duration–volume pairs by interpolating ``log d`` against ``log v`` over
    the observed bins (the paper's "matching the traffic volume values to
    v_s(d)").
    """

    def __init__(self, pdf: LogHistogram, curve: DurationVolumeCurve):
        durations, volumes, _ = curve.observed()
        ok = volumes > 0
        if ok.sum() < 2:
            raise SourceError("duration-volume curve too sparse")
        log_v = np.log10(volumes[ok])
        log_d = np.log10(durations[ok])
        order = np.argsort(log_v)
        self._log_v = log_v[order]
        self._log_d = log_d[order]
        self._pdf = pdf.normalized()

    def sample(
        self, rng: np.random.Generator, size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw (volumes MB, durations s) for ``size`` sessions."""
        volumes = self._pdf.sample_mb(rng, size)
        log_d = np.interp(np.log10(volumes), self._log_v, self._log_d)
        durations = np.clip(10.0**log_d, 1.0, 86400.0)
        return volumes, durations

    def mean_volume_mb(self) -> float:
        """Mean per-session volume of the measured PDF."""
        return self._pdf.mean_mb()


class MeasurementSource:
    """Strategy (i): sessions drawn from the measured statistics."""

    def __init__(self, samplers: dict[int, EmpiricalServiceSampler]):
        if not samplers:
            raise SourceError("need at least one service sampler")
        self._samplers = samplers

    @classmethod
    def from_table(
        cls, table: SessionTable, services: list[str]
    ) -> "MeasurementSource":
        """Build per-service samplers from a measurement campaign."""
        samplers: dict[int, EmpiricalServiceSampler] = {}
        for idx, name in enumerate(SERVICE_NAMES):
            if name not in services:
                continue
            sub = table.for_service(name)
            if len(sub) < MIN_SOURCE_SESSIONS:
                continue
            samplers[idx] = EmpiricalServiceSampler(
                pooled_volume_pdf(sub), pooled_duration_volume(sub)
            )
        return cls(samplers)

    @property
    def service_indices(self) -> list[int]:
        """Catalog indices of the services this source can emit."""
        return sorted(self._samplers)

    def mean_volume_by_service(self) -> dict[int, float]:
        """Measured mean session volume per service (normalization ref)."""
        return {
            idx: sampler.mean_volume_mb()
            for idx, sampler in self._samplers.items()
        }

    def decorate(
        self, skeleton: ArrivalSkeleton, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign (volume, duration) to every skeleton arrival."""
        volumes = np.empty(len(skeleton))
        durations = np.empty(len(skeleton))
        for idx in np.unique(skeleton.service_idx):
            if idx not in self._samplers:
                raise SourceError(
                    f"skeleton emits {SERVICE_NAMES[idx]!r} with no sampler"
                )
            mask = skeleton.service_idx == idx
            volumes[mask], durations[mask] = self._samplers[idx].sample(
                rng, int(mask.sum())
            )
        return volumes, durations


class ModelBankSource:
    """Strategy (ii): sessions drawn from the fitted session-level models."""

    def __init__(self, bank: ModelBank):
        self._bank = bank

    def decorate(
        self, skeleton: ArrivalSkeleton, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign (volume, duration) to every skeleton arrival."""
        volumes = np.empty(len(skeleton))
        durations = np.empty(len(skeleton))
        for idx in np.unique(skeleton.service_idx):
            model = self._bank.get(SERVICE_NAMES[idx])
            mask = skeleton.service_idx == idx
            batch = model.sample_sessions(rng, int(mask.sum()))
            volumes[mask] = batch.volumes_mb
            durations[mask] = batch.durations_s
        return volumes, durations


class CategorySource:
    """Strategy (iii): the literature 3-category models (bm a / b / c).

    ``volume_scale`` maps each category to a multiplicative volume
    correction: all ones for bm a; a single global factor for bm b; the
    per-category measured/model mean-volume ratio for bm c.
    """

    def __init__(
        self, volume_scale: dict[LiteratureCategory, float] | None = None
    ):
        self._scale = {c: 1.0 for c in LiteratureCategory}
        for category, factor in (volume_scale or {}).items():
            if factor <= 0:
                raise SourceError("volume scale factors must be positive")
            self._scale[category] = float(factor)

    @staticmethod
    def _category_of(service_idx: int) -> LiteratureCategory:
        return get_service(SERVICE_NAMES[service_idx]).category

    def decorate(
        self, skeleton: ArrivalSkeleton, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray]:
        """Assign (volume, duration) to every skeleton arrival."""
        volumes = np.empty(len(skeleton))
        durations = np.empty(len(skeleton))
        categories = np.array(
            [self._category_of(i).value for i in skeleton.service_idx]
        )
        for category in LiteratureCategory:
            mask = categories == category.value
            n = int(mask.sum())
            if n == 0:
                continue
            vols, durs = CATEGORY_MODELS[category].sample_sessions(rng, n)
            volumes[mask] = vols * self._scale[category]
            durations[mask] = durs
        return volumes, durations

    # ------------------------------------------------------------------
    @classmethod
    def bm_a(cls) -> "CategorySource":
        """The literature models, used as published."""
        return cls()

    @classmethod
    def bm_b(
        cls,
        measurement: MeasurementSource,
        mix: ServiceMix,
    ) -> "CategorySource":
        """Globally normalized: total system throughput matches measurement.

        With a shared arrival skeleton, the steady-state system throughput
        is proportional to the mix-weighted mean session volume, so one
        global volume factor aligns the totals.
        """
        measured = measurement.mean_volume_by_service()
        probs = mix.probabilities()
        measured_mean = sum(probs[idx] * mv for idx, mv in measured.items())
        bm_mean = 0.0
        for idx, mv in measured.items():
            category = cls._category_of(idx)
            model = CATEGORY_MODELS[category]
            bm_mean += probs[idx] * _category_mean_volume(model)
        if bm_mean <= 0:
            raise SourceError("degenerate benchmark mean volume")
        factor = measured_mean / bm_mean
        return cls({c: factor for c in LiteratureCategory})

    @classmethod
    def bm_c(
        cls,
        measurement: MeasurementSource,
        mix: ServiceMix,
    ) -> "CategorySource":
        """Per-category normalization of the class throughput."""
        measured = measurement.mean_volume_by_service()
        probs = mix.probabilities()
        scale: dict[LiteratureCategory, float] = {}
        for category in LiteratureCategory:
            weight = 0.0
            measured_mean = 0.0
            for idx, mv in measured.items():
                if cls._category_of(idx) is category:
                    weight += probs[idx]
                    measured_mean += probs[idx] * mv
            if weight <= 0:
                scale[category] = 1.0
                continue
            measured_mean /= weight
            bm_mean = _category_mean_volume(CATEGORY_MODELS[category])
            scale[category] = measured_mean / bm_mean
        return cls(scale)


def _category_mean_volume(model) -> float:
    """Analytic mean session volume (MB) of a category model.

    Volume = throughput × duration / 8 with log-normal duration, so the
    mean is ``thr/8 * median * exp((sigma ln10)^2 / 2)``.
    """
    ln10 = np.log(10.0)
    return (
        model.nominal_throughput_mbps
        / 8.0
        * model.median_duration_s
        * float(np.exp((model.sigma_dex * ln10) ** 2 / 2.0))
    )
