"""The Section 6.2 vRAN energy experiment: Fig 13.

Every second (one time slot, TS), the orchestrator updates the placement of
served sessions on physical servers: departed sessions free capacity, new
arrivals are first-fit placed, and a consolidation pass drains nearly-empty
PSs so they can be switched off.  Energy follows the linear PS power model;
minimizing energy is minimizing active PSs.

The experiment runs the same arrival skeleton under every traffic source
(measurement / our models / bm a–c) and reports the per-TS absolute
percentage error of the active-PS count and of the power draw against the
measurement-driven run — the Fig 13b distributions — plus the raw power
time series of Fig 13c.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ...analysis.metrics import BoxplotStats
from ...core.model_bank import ModelBank
from ...core.service_mix import ServiceMix
from ...dataset.records import SERVICE_NAMES, SessionTable
from .binpacking import IncrementalPacker
from .power import PowerModel
from .sources import (
    ArrivalSkeleton,
    CategorySource,
    MeasurementSource,
    ModelBankSource,
    SourceError,
    generate_skeleton,
)
from .topology import VranTopology


@dataclass(frozen=True)
class VranScenario:
    """Parameters of the vRAN evaluation.

    Paper values: 20 ES × 20 RU, several emulated days.  The default
    horizon is shorter (the dynamics repeat with the circadian cycle);
    ``warmup_s`` TSs are excluded from error statistics so the initially
    empty system does not bias them.
    """

    topology: VranTopology = field(default_factory=VranTopology)
    horizon_s: float = 3600.0
    start_minute_of_day: int = 600
    warmup_s: float = 600.0
    power: PowerModel = field(default_factory=PowerModel)

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise ValueError("horizon must be positive")
        if not 0 <= self.warmup_s < self.horizon_s:
            raise ValueError("warmup must be shorter than the horizon")


@dataclass
class OrchestrationTrace:
    """Per-TS outcome of one orchestration run.

    ``mean_dus_per_ps`` counts distinct Distributed Units per active PS;
    ``du_concentration`` is the load-weighted fraction of each DU hosted
    on its single best PS (1.0 = perfect DU locality).
    """

    n_ps: np.ndarray
    power_w: np.ndarray
    total_load_mbps: np.ndarray
    mean_dus_per_ps: np.ndarray | None = None
    du_concentration: np.ndarray | None = None

    def __len__(self) -> int:
        return int(self.n_ps.size)


def run_orchestration(
    skeleton: ArrivalSkeleton,
    volumes_mb: np.ndarray,
    durations_s: np.ndarray,
    scenario: VranScenario,
    du_affinity: bool = False,
    utilization_cap: float = 1.0,
) -> OrchestrationTrace:
    """Run the per-TS bin-packing orchestration over decorated sessions.

    A session of volume ``x`` and duration ``d`` holds a constant
    throughput ``8 x / d`` Mbps for ``d`` seconds, clipped at the PS
    capacity (one session cannot span servers).

    With ``du_affinity`` the placement prefers PSs already hosting the
    session's Distributed Unit (its ES).  At energy-minimal operation every
    PS runs full and placement has no freedom, so the preference only pays
    off combined with ``utilization_cap < 1``: PSs are then filled only to
    that fraction of their capacity, and the head-room buys DU locality at
    a quantified energy premium (the trace's ``mean_dus_per_ps``).
    """
    if not 0.0 < utilization_cap <= 1.0:
        raise SourceError("utilization_cap must be in (0, 1]")
    volumes_mb = np.asarray(volumes_mb, dtype=float)
    durations_s = np.asarray(durations_s, dtype=float)
    if volumes_mb.shape != (len(skeleton),) or durations_s.shape != (
        len(skeleton),
    ):
        raise SourceError("decoration must align with the skeleton")

    placement_capacity = scenario.power.capacity_mbps * utilization_cap
    throughput = np.minimum(8.0 * volumes_mb / durations_s, placement_capacity)
    t_end = skeleton.t_start_s + durations_s

    n_ts = int(np.ceil(scenario.horizon_s))
    n_ps = np.zeros(n_ts, dtype=np.int64)
    power = np.zeros(n_ts)
    load = np.zeros(n_ts)
    dus_per_ps = np.zeros(n_ts)
    concentration = np.zeros(n_ts)

    # DU membership is always tracked (it is cheap and powers the mixing
    # metric); the affinity flag only controls placement *preference*.
    du_of_session = skeleton.ru_idx // scenario.topology.n_ru_per_es
    packer = IncrementalPacker(placement_capacity, group_affinity=du_affinity)
    departures: list[tuple[float, int]] = []
    cursor = 0
    n_sessions = len(skeleton)

    for ts in range(n_ts):
        now = float(ts + 1)
        # 1. Departures within this TS.
        while departures and departures[0][0] <= now:
            _, session_id = heapq.heappop(departures)
            packer.remove(session_id)
        # 2. New arrivals within this TS, placed largest-first.
        batch_ids: list[int] = []
        batch_sizes: list[float] = []
        while cursor < n_sessions and skeleton.t_start_s[cursor] < now:
            batch_ids.append(cursor)
            batch_sizes.append(float(throughput[cursor]))
            heapq.heappush(departures, (float(t_end[cursor]), cursor))
            cursor += 1
        if batch_ids:
            packer.add_batch(
                batch_ids, np.array(batch_sizes), du_of_session[batch_ids]
            )
        # 3. Consolidation: switch off drainable PSs.
        packer.consolidate()

        n_ps[ts] = packer.n_bins
        load[ts] = packer.total_load
        power[ts] = scenario.power.total_power_w(packer.bin_loads())
        dus_per_ps[ts] = packer.mean_groups_per_bin()
        concentration[ts] = packer.group_concentration()

    return OrchestrationTrace(
        n_ps=n_ps,
        power_w=power,
        total_load_mbps=load,
        mean_dus_per_ps=dus_per_ps,
        du_concentration=concentration,
    )


@dataclass
class VranOutcome:
    """Everything the Fig 13 benches report."""

    scenario: VranScenario
    traces: dict[str, OrchestrationTrace]
    ape_n_ps: dict[str, np.ndarray]
    ape_power: dict[str, np.ndarray]

    def summary(self) -> dict[str, dict[str, BoxplotStats]]:
        """Fig 13b: boxplot summaries of the APE per strategy and metric."""
        out: dict[str, dict[str, BoxplotStats]] = {}
        for name in self.ape_n_ps:
            out[name] = {
                "n_ps": BoxplotStats.from_samples(self.ape_n_ps[name]),
                "power": BoxplotStats.from_samples(self.ape_power[name]),
            }
        return out


def ape_per_ts(
    reference: OrchestrationTrace,
    trace: OrchestrationTrace,
    warmup_ts: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Per-TS APE of active PSs and power against the reference run."""
    if len(reference) != len(trace):
        raise SourceError("traces must cover the same horizon")
    sl = slice(warmup_ts, None)
    ref_ps = reference.n_ps[sl].astype(float)
    ref_pw = reference.power_w[sl]
    ok = (ref_ps > 0) & (ref_pw > 0)
    ape_ps = 100.0 * np.abs(trace.n_ps[sl][ok] - ref_ps[ok]) / ref_ps[ok]
    ape_pw = 100.0 * np.abs(trace.power_w[sl][ok] - ref_pw[ok]) / ref_pw[ok]
    return ape_ps, ape_pw


def run_vran_experiment(
    measurement_table: SessionTable,
    rng: np.random.Generator,
    scenario: VranScenario | None = None,
    strategies: tuple[str, ...] = ("model", "bm_a", "bm_b", "bm_c"),
) -> VranOutcome:
    """Run the full Section 6.2 comparison.

    ``measurement_table`` is a measurement campaign (from
    :func:`repro.dataset.simulator.simulate`); it provides the measured
    per-service statistics of strategy (i), the fitting data of strategy
    (ii), and the normalization references of bm b / bm c.
    """
    scenario = scenario or VranScenario()

    measurement = MeasurementSource.from_table(
        measurement_table, list(SERVICE_NAMES)
    )
    covered = [SERVICE_NAMES[i] for i in measurement.service_indices]
    mix = ServiceMix.from_measurements(measurement_table).restricted_to(covered)
    bank = ModelBank.fit_from_table(measurement_table, services=covered)
    # Restrict the mix to services that both sources can emit.
    usable = [name for name in covered if name in bank]
    mix = mix.restricted_to(usable)
    measurement = MeasurementSource.from_table(measurement_table, usable)

    skeleton = generate_skeleton(
        scenario.topology,
        mix,
        rng,
        scenario.horizon_s,
        scenario.start_minute_of_day,
    )

    sources = {"measurement": measurement}
    for name in strategies:
        if name == "model":
            sources[name] = ModelBankSource(bank)
        elif name == "bm_a":
            sources[name] = CategorySource.bm_a()
        elif name == "bm_b":
            sources[name] = CategorySource.bm_b(measurement, mix)
        elif name == "bm_c":
            sources[name] = CategorySource.bm_c(measurement, mix)
        else:
            raise SourceError(f"unknown strategy {name!r}")

    traces: dict[str, OrchestrationTrace] = {}
    for name, source in sources.items():
        volumes, durations = source.decorate(skeleton, rng)
        traces[name] = run_orchestration(skeleton, volumes, durations, scenario)

    warmup_ts = int(scenario.warmup_s)
    ape_n_ps: dict[str, np.ndarray] = {}
    ape_power: dict[str, np.ndarray] = {}
    for name in strategies:
        ape_n_ps[name], ape_power[name] = ape_per_ts(
            traces["measurement"], traces[name], warmup_ts
        )

    return VranOutcome(
        scenario=scenario,
        traces=traces,
        ape_n_ps=ape_n_ps,
        ape_power=ape_power,
    )
