"""Physical-server power model of the CU cloud site (Section 6.2.1).

All PSs are identical machines following the IBM server specification the
paper cites [36]: capacity bounded by a maximum aggregate throughput of
100 Mbps, idle consumption 60 W, and linear growth to 200 W at full load.
Under this model, minimizing energy is equivalent to minimizing the number
of active PSs (the load-proportional term is packing-independent).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Maximum aggregate throughput one PS can process (Mbps).
PS_CAPACITY_MBPS = 100.0
#: Power drawn by an idle (but on) PS, in watts.
PS_IDLE_W = 60.0
#: Power drawn by a PS at 100 % load, in watts.
PS_MAX_W = 200.0


class PowerModelError(ValueError):
    """Raised on invalid power-model input."""


@dataclass(frozen=True)
class PowerModel:
    """Linear load-proportional PS power model."""

    capacity_mbps: float = PS_CAPACITY_MBPS
    idle_w: float = PS_IDLE_W
    max_w: float = PS_MAX_W

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise PowerModelError("capacity must be positive")
        if not 0 <= self.idle_w <= self.max_w:
            raise PowerModelError("need 0 <= idle_w <= max_w")

    def ps_power_w(self, load_mbps) -> np.ndarray:
        """Power of one PS at the given load (watts)."""
        load_mbps = np.asarray(load_mbps, dtype=float)
        if np.any(load_mbps < -1e-9):
            raise PowerModelError("load cannot be negative")
        if np.any(load_mbps > self.capacity_mbps * (1 + 1e-9)):
            raise PowerModelError("load exceeds PS capacity")
        fraction = np.clip(load_mbps / self.capacity_mbps, 0.0, 1.0)
        return self.idle_w + (self.max_w - self.idle_w) * fraction

    def total_power_w(self, ps_loads_mbps: np.ndarray) -> float:
        """Aggregate power of a set of active PSs (watts)."""
        ps_loads_mbps = np.asarray(ps_loads_mbps, dtype=float)
        if ps_loads_mbps.size == 0:
            return 0.0
        return float(np.sum(self.ps_power_w(ps_loads_mbps)))

    def power_from_counts(self, n_ps: int, total_load_mbps: float) -> float:
        """Aggregate power from the active-PS count and the total load.

        Because the model is linear, the per-PS split does not matter:
        ``P = n * idle + (max - idle) * total_load / capacity``.
        """
        if n_ps < 0:
            raise PowerModelError("n_ps cannot be negative")
        if total_load_mbps < -1e-9:
            raise PowerModelError("load cannot be negative")
        if total_load_mbps > n_ps * self.capacity_mbps * (1 + 1e-9):
            raise PowerModelError("total load exceeds aggregate capacity")
        return n_ps * self.idle_w + (
            self.max_w - self.idle_w
        ) * total_load_mbps / self.capacity_mbps
