"""Extension use case: downlink QoE under processor sharing."""

from .experiment import (
    CapacityOutcome,
    CapacityScenario,
    run_capacity_experiment,
)
from .processor_sharing import SharingResult, simulate_processor_sharing

__all__ = [
    "CapacityOutcome",
    "CapacityScenario",
    "SharingResult",
    "run_capacity_experiment",
    "simulate_processor_sharing",
]
