"""Event-driven processor-sharing model of a BS downlink.

A third, extension use case beyond the paper's two: flow-level evaluation
of a cell's downlink under elastic load, in the spirit of the flow-level
literature the paper cites ([25], Lin et al., "Flow-level traffic model
for adaptive streaming services in mobile networks").

The cell is a single resource of capacity ``C`` Mbps shared equally among
the flows in progress (egalitarian processor sharing).  A flow arrives
with a volume and departs once the volume has been delivered; its sojourn
time therefore depends on how many other flows it shares the cell with.
The classic QoE metric is the *slowdown*: sojourn time divided by the
time the transfer would take on an empty cell.

What this adds to the paper's evaluation: the slicing and vRAN use cases
consume the models' volumes *and* durations; here only the **volumes and
arrival times** matter (durations emerge from the sharing dynamics), so
the experiment isolates the volume-model fidelity under congestion.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np


class CapacityError(ValueError):
    """Raised on invalid capacity-sharing input."""


@dataclass
class SharingResult:
    """Per-flow outcome of a processor-sharing run.

    ``sojourn_s[i]`` is flow ``i``'s time in system and ``slowdown[i]`` its
    sojourn divided by the empty-cell transfer time ``volume * 8 / C``.
    Flows still in progress at the horizon are marked unfinished and
    excluded from the arrays' statistics helpers.
    """

    sojourn_s: np.ndarray
    slowdown: np.ndarray
    finished: np.ndarray

    def mean_slowdown(self) -> float:
        """Mean slowdown of the finished flows."""
        if not np.any(self.finished):
            raise CapacityError("no flow finished within the horizon")
        return float(self.slowdown[self.finished].mean())

    def p95_sojourn_s(self) -> float:
        """95th percentile sojourn time of the finished flows."""
        if not np.any(self.finished):
            raise CapacityError("no flow finished within the horizon")
        return float(np.percentile(self.sojourn_s[self.finished], 95))

    def completion_rate(self) -> float:
        """Fraction of flows that finished within the horizon."""
        return float(self.finished.mean())


def simulate_processor_sharing(
    arrival_s: np.ndarray,
    volumes_mb: np.ndarray,
    capacity_mbps: float,
    horizon_s: float | None = None,
) -> SharingResult:
    """Run egalitarian processor sharing over one cell.

    Exact event-driven simulation: between consecutive events (arrival or
    earliest departure) every active flow receives ``C / n`` Mbps.  Work is
    tracked in *service units* (the residual volume each flow still needs),
    so each step only advances a single scalar per active flow.

    Parameters
    ----------
    arrival_s:
        Sorted arrival times in seconds.
    volumes_mb:
        Per-flow volume in MB.
    capacity_mbps:
        Cell capacity in Mbit/s.
    horizon_s:
        Optional cut-off; flows unfinished at the horizon are flagged.
    """
    arrival_s = np.asarray(arrival_s, dtype=float)
    volumes_mb = np.asarray(volumes_mb, dtype=float)
    if arrival_s.shape != volumes_mb.shape:
        raise CapacityError("arrivals and volumes must align")
    if arrival_s.size and np.any(np.diff(arrival_s) < 0):
        raise CapacityError("arrival times must be sorted")
    if np.any(volumes_mb <= 0):
        raise CapacityError("volumes must be positive")
    if capacity_mbps <= 0:
        raise CapacityError("capacity must be positive")

    n = arrival_s.size
    finish_time = np.full(n, np.inf)
    residual_mbit = volumes_mb * 8.0

    # Virtual-service-time trick for egalitarian PS: track cumulative
    # per-flow service "credit" so departures need no per-flow updates.
    # credit(t) advances at rate C / n_active; a flow departs when the
    # credit gained since its arrival equals its size in Mbit.
    active: list[tuple[float, int]] = []  # (departure credit, flow id)
    credit = 0.0
    now = 0.0

    def advance(to_time: float) -> None:
        nonlocal credit, now
        while active and now < to_time:
            next_credit, flow = active[0]
            needed = next_credit - credit
            rate = capacity_mbps / len(active)
            eta = now + needed / rate
            if eta <= to_time + 1e-12:
                heapq.heappop(active)
                credit = next_credit
                finish_time[flow] = eta
                now = eta
            else:
                credit += (to_time - now) * rate
                now = to_time
                return
        now = max(now, to_time)

    for i in range(n):
        advance(float(arrival_s[i]))
        heapq.heappush(active, (credit + float(residual_mbit[i]), i))
    end = float(horizon_s) if horizon_s is not None else np.inf
    advance(end)

    finished = np.isfinite(finish_time)
    sojourn = np.where(finished, finish_time - arrival_s, np.nan)
    ideal = residual_mbit / capacity_mbps
    slowdown = np.where(finished, sojourn / ideal, np.nan)
    return SharingResult(
        sojourn_s=sojourn, slowdown=slowdown, finished=finished
    )
