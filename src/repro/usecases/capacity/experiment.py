"""The downlink QoE experiment: model fidelity under congestion.

Runs the processor-sharing cell under flow arrivals whose volumes come
from (i) the measured statistics, (ii) the fitted session-level models and
(iii) the literature category models — the same three-way comparison as
the paper's use cases, on a metric (slowdown under sharing) that depends
*only* on arrival times and volumes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...core.model_bank import ModelBank
from ...core.service_mix import ServiceMix
from ...dataset.records import SERVICE_NAMES, SessionTable
from ..vran.sources import (
    CategorySource,
    MeasurementSource,
    generate_skeleton,
)
from ..vran.topology import RadioUnit, VranTopology
from .processor_sharing import SharingResult, simulate_processor_sharing


class CapacityExperimentError(ValueError):
    """Raised on inconsistent experiment configuration."""


@dataclass(frozen=True)
class CapacityScenario:
    """Parameters of the downlink QoE experiment.

    One cell of ``capacity_mbps`` is fed with the arrival process of a BS
    of the given load decile for ``horizon_s`` seconds.
    """

    capacity_mbps: float = 300.0
    decile: int = 7
    horizon_s: float = 1800.0

    def __post_init__(self) -> None:
        if self.capacity_mbps <= 0:
            raise CapacityExperimentError("capacity must be positive")
        if not 0 <= self.decile <= 9:
            raise CapacityExperimentError("decile must be in 0..9")
        if self.horizon_s <= 0:
            raise CapacityExperimentError("horizon must be positive")


@dataclass
class CapacityOutcome:
    """QoE statistics per traffic strategy."""

    results: dict[str, SharingResult]
    utilization: dict[str, float]

    def summary_rows(self) -> list[list]:
        """Table rows: strategy, mean slowdown, p95 sojourn, completion %,
        offered utilization %."""
        rows = []
        for name, result in self.results.items():
            rows.append(
                [
                    name,
                    result.mean_slowdown(),
                    result.p95_sojourn_s(),
                    100 * result.completion_rate(),
                    100 * self.utilization[name],
                ]
            )
        return rows


class _SingleCellTopology(VranTopology):
    """A one-RU topology whose single RU carries a chosen load decile."""

    def __init__(self, decile: int):
        super().__init__(n_es=1, n_ru_per_es=1)
        object.__setattr__(self, "_decile", decile)

    def radio_units(self) -> list[RadioUnit]:
        """The single RU, pinned to the configured decile."""
        return [RadioUnit(ru_id=0, es_id=0, decile=self._decile)]


class _BankVolumes:
    """Decoration adapter: volumes from the fitted session-level models."""

    def __init__(self, bank: ModelBank):
        self._bank = bank

    def decorate(self, skeleton, rng):
        """Assign model-sampled volumes (and durations) to the skeleton."""
        volumes = np.empty(len(skeleton))
        durations = np.empty(len(skeleton))
        for idx in np.unique(skeleton.service_idx):
            model = self._bank.get(SERVICE_NAMES[idx])
            mask = skeleton.service_idx == idx
            batch = model.sample_sessions(rng, int(mask.sum()))
            volumes[mask] = batch.volumes_mb
            durations[mask] = batch.durations_s
        return volumes, durations


def run_capacity_experiment(
    measurement_table: SessionTable,
    rng: np.random.Generator,
    scenario: CapacityScenario | None = None,
) -> CapacityOutcome:
    """Run the three-way QoE comparison on one cell.

    A single-RU topology of the requested decile provides the shared
    arrival skeleton; each strategy decorates the arrivals with volumes
    (durations are irrelevant here — sojourns emerge from the sharing).
    The sharing simulation runs past the arrival horizon so the backlog
    drains and nearly every flow completes.
    """
    scenario = scenario or CapacityScenario()

    measurement = MeasurementSource.from_table(
        measurement_table, list(SERVICE_NAMES)
    )
    covered = [SERVICE_NAMES[i] for i in measurement.service_indices]
    bank = ModelBank.fit_from_table(measurement_table, services=covered)
    usable = [name for name in covered if name in bank]
    mix = ServiceMix.from_measurements(measurement_table).restricted_to(usable)
    measurement = MeasurementSource.from_table(measurement_table, usable)

    skeleton = generate_skeleton(
        _SingleCellTopology(scenario.decile), mix, rng, scenario.horizon_s
    )

    sources = {
        "measurement": measurement,
        "model": _BankVolumes(bank),
        "bm_a": CategorySource.bm_a(),
        "bm_c": CategorySource.bm_c(measurement, mix),
    }

    results: dict[str, SharingResult] = {}
    utilization: dict[str, float] = {}
    for name, source in sources.items():
        volumes, _ = source.decorate(skeleton, rng)
        results[name] = simulate_processor_sharing(
            skeleton.t_start_s,
            volumes,
            scenario.capacity_mbps,
            horizon_s=scenario.horizon_s * 4,
        )
        utilization[name] = float(
            volumes.sum() * 8.0 / (scenario.capacity_mbps * scenario.horizon_s)
        )
    return CapacityOutcome(results=results, utilization=utilization)
