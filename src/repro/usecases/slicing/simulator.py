"""The Section 6.1 slicing experiment: Table 2 and Fig 12.

One operator signs SLAs with 28 Service Providers (the Table 1 services):
each SP's slice must see its full traffic demand served at least 95 % of
the (peak-hour) time at every antenna.  The experiment:

1. simulates the "real world": a measurement campaign over ``n_antennas``
   BSs and ``n_days`` days;
2. fits the session-level models on that campaign (arrival models per
   antenna, service mix, volume + duration models per service);
3. runs the three allocators — ours, bm a, bm b — which may only use their
   respective models (never the real demand);
4. scores each allocation against the real per-minute demand.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...core.arrivals import ArrivalModel, fit_arrival_model_from_days
from ...core.model_bank import ModelBank
from ...core.service_mix import ServiceMix
from ...dataset.aggregation import minute_arrival_counts
from ...dataset.network import Network, NetworkConfig
from ...dataset.records import SERVICE_INDEX, SessionTable
from ...dataset.services import TABLE1_SERVICES
from ...dataset.simulator import SimulationConfig, simulate
from .allocation import (
    SLA_PERCENTILE,
    allocate_with_categories,
    allocate_with_models,
)
from .benchmarks import BM_A_SHARES, BM_B_SHARES
from .demand import campaign_peak_mask, demand_matrix


@dataclass(frozen=True)
class SlicingScenario:
    """Parameters of the Section 6.1 evaluation.

    Paper values: 10 antennas, one week, the 28 Table 1 services, 95 % SLA.
    """

    n_antennas: int = 10
    n_days: int = 7
    n_model_days: int = 6
    percentile: float = SLA_PERCENTILE
    min_fit_sessions: int = 300

    def __post_init__(self) -> None:
        if self.n_antennas < 1 or self.n_days < 1 or self.n_model_days < 1:
            raise ValueError("scenario sizes must be >= 1")


@dataclass
class StrategyResult:
    """Outcome of one allocation strategy.

    ``satisfaction`` is the per-(antenna, service) fraction of peak-hour
    minutes with no dropped traffic; ``capacity_mb_min`` the allocation.
    """

    name: str
    capacity_mb_min: np.ndarray
    satisfaction: np.ndarray

    @property
    def mean_satisfaction(self) -> float:
        """Average over antennas and services — the Table 2 first column."""
        return float(self.satisfaction.mean())

    @property
    def std_satisfaction(self) -> float:
        """Std over antennas and services — the Table 2 second column."""
        return float(self.satisfaction.std(ddof=0))


@dataclass
class SlicingOutcome:
    """Everything the Table 2 / Fig 12 benches report."""

    scenario: SlicingScenario
    results: dict[str, StrategyResult]
    real_demand: np.ndarray
    bs_ids: list[int]
    service_names: list[str]
    peak_mask: np.ndarray = field(repr=False)

    def timeseries(
        self, strategy: str, service: str, antenna_pos: int = 0
    ) -> tuple[np.ndarray, float]:
        """Fig 12 data: (per-minute real demand, allocated capacity) for one
        service slice at one antenna."""
        demand = self.real_demand[antenna_pos, SERVICE_INDEX[service]]
        capacity = self.results[strategy].capacity_mb_min[
            antenna_pos, SERVICE_INDEX[service]
        ]
        return demand, float(capacity)


def fit_antenna_arrival_models(
    table: SessionTable, bs_ids: list[int], n_days: int
) -> dict[int, ArrivalModel]:
    """Fit one bi-modal arrival model per antenna from measured counts."""
    models: dict[int, ArrivalModel] = {}
    for bs_id in bs_ids:
        counts = minute_arrival_counts(table, [bs_id], n_days)
        models[bs_id] = fit_arrival_model_from_days(counts.reshape(n_days, 1440))
    return models


def evaluate_capacity(
    real_demand: np.ndarray, capacity: np.ndarray, peak_mask: np.ndarray
) -> np.ndarray:
    """Fraction of peak minutes where allocated capacity covers demand."""
    peak = real_demand[:, :, peak_mask]
    # A minute with zero demand is trivially satisfied; a tiny epsilon
    # absorbs float rounding at the exact-capacity boundary.
    return (peak <= capacity[:, :, None] + 1e-9).mean(axis=2)


def run_slicing_experiment(
    rng: np.random.Generator, scenario: SlicingScenario | None = None
) -> SlicingOutcome:
    """Run the full Section 6.1 evaluation and return all artefacts."""
    scenario = scenario or SlicingScenario()

    # 1. The real world: a measurement campaign over the covered area.
    network = Network(NetworkConfig(n_bs=max(scenario.n_antennas, 10)), rng)
    real_table = simulate(
        network, SimulationConfig(n_days=scenario.n_days), rng
    )
    bs_ids = list(range(scenario.n_antennas))
    real_demand = demand_matrix(real_table, bs_ids, scenario.n_days)
    peak_mask = campaign_peak_mask(scenario.n_days)

    # 2. Fit the session-level models from the measurements.
    arrival_models = fit_antenna_arrival_models(
        real_table, bs_ids, scenario.n_days
    )
    bank = ModelBank.fit_from_table(
        real_table,
        services=list(TABLE1_SERVICES),
        min_sessions=scenario.min_fit_sessions,
    )
    mix = ServiceMix.from_measurements(real_table).restricted_to(bank.services())

    # 3. The three allocators.
    capacities = {
        "model": allocate_with_models(
            arrival_models,
            mix,
            bank,
            rng,
            n_sim_days=scenario.n_model_days,
            percentile=scenario.percentile,
        ),
        "bm_a": allocate_with_categories(
            arrival_models,
            BM_A_SHARES,
            rng,
            n_sim_days=scenario.n_model_days,
            percentile=scenario.percentile,
        ),
        "bm_b": allocate_with_categories(
            arrival_models,
            BM_B_SHARES,
            rng,
            n_sim_days=scenario.n_model_days,
            percentile=scenario.percentile,
        ),
    }

    # 4. Score against the real demand, on the Table 1 services only.
    service_names = [
        name for name in TABLE1_SERVICES if name in bank
    ]
    service_cols = [SERVICE_INDEX[name] for name in service_names]
    results = {}
    for name, capacity in capacities.items():
        satisfaction = evaluate_capacity(real_demand, capacity, peak_mask)
        results[name] = StrategyResult(
            name=name,
            capacity_mb_min=capacity,
            satisfaction=satisfaction[:, service_cols],
        )

    return SlicingOutcome(
        scenario=scenario,
        results=results,
        real_demand=real_demand,
        bs_ids=bs_ids,
        service_names=service_names,
        peak_mask=peak_mask,
    )
