"""Slice capacity allocation strategies (Section 6.1.1).

Three allocators are compared:

* :func:`allocate_with_models` — only feasible with the paper's
  session-level per-service models: synthetic traffic is generated from the
  fitted arrival + volume + duration models, and each slice receives the
  95th percentile of its simulated per-minute demand at each antenna;
* :func:`allocate_with_categories` — the literature benchmarks (bm a,
  bm b): the same percentile rule applied at the granularity of the three
  IW/CS/MS categories, whose capacity is then split **uniformly** across
  the category's services, "since no information w.r.t. the intra-category
  session shares is available".
"""

from __future__ import annotations

import numpy as np

from ...core.arrivals import ArrivalModel
from ...core.model_bank import ModelBank
from ...core.service_mix import ServiceMix
from ...dataset.records import SERVICE_INDEX, SERVICE_NAMES
from ...dataset.services import LiteratureCategory
from .benchmarks import sample_category_sessions, services_in_category
from .demand import campaign_peak_mask, spread_sessions

#: SLA percentile of Section 6.1 (demand fully served 95 % of the time).
SLA_PERCENTILE = 95.0


class AllocationError(ValueError):
    """Raised on inconsistent allocation input."""


def percentile_capacity(
    demand: np.ndarray, peak_mask: np.ndarray, percentile: float = SLA_PERCENTILE
) -> np.ndarray:
    """Per-(antenna, slice) capacity at a percentile of peak-hour demand.

    ``demand`` is a (n_bs, n_slices, minutes) matrix; the returned capacity
    is in the same unit (MB per minute).
    """
    if demand.ndim != 3:
        raise AllocationError("demand must be (n_bs, n_slices, minutes)")
    if peak_mask.shape != (demand.shape[2],):
        raise AllocationError("peak mask must align with the minute axis")
    if not 0 < percentile <= 100:
        raise AllocationError("percentile must be in (0, 100]")
    return np.percentile(demand[:, :, peak_mask], percentile, axis=2)


def allocate_with_models(
    arrival_models: dict[int, ArrivalModel],
    mix: ServiceMix,
    bank: ModelBank,
    rng: np.random.Generator,
    n_sim_days: int = 3,
    percentile: float = SLA_PERCENTILE,
) -> np.ndarray:
    """Model-driven allocation: 95th pct of model-generated slice demand.

    Returns a ``(n_antennas, n_services)`` capacity matrix in MB/minute,
    with antennas ordered as ``sorted(arrival_models)``.
    """
    from ...core.generator import TrafficGenerator

    generator = TrafficGenerator(arrival_models, mix, bank)
    table = generator.generate_campaign(n_sim_days, rng)

    bs_ids = sorted(arrival_models)
    from .demand import demand_matrix

    demand = demand_matrix(table, bs_ids, n_sim_days)
    return percentile_capacity(demand, campaign_peak_mask(n_sim_days), percentile)


def allocate_with_categories(
    arrival_models: dict[int, ArrivalModel],
    category_shares: dict[LiteratureCategory, float],
    rng: np.random.Generator,
    n_sim_days: int = 3,
    percentile: float = SLA_PERCENTILE,
) -> np.ndarray:
    """Benchmark allocation from the 3-category literature models.

    Per antenna, sessions are generated with the fitted arrival process but
    typed and sized by the category models; each category slice gets the
    95th percentile of its simulated demand, split uniformly across the
    services mapped to the category.
    """
    bs_ids = sorted(arrival_models)
    categories = list(LiteratureCategory)
    cat_pos = {c: i for i, c in enumerate(categories)}
    n_groups = len(bs_ids) * len(categories)

    all_group, all_day, all_minute, all_vol, all_dur = [], [], [], [], []
    for bs_pos, bs_id in enumerate(bs_ids):
        model = arrival_models[bs_id]
        for day in range(n_sim_days):
            counts = model.sample_day(rng)
            n = int(counts.sum())
            if n == 0:
                continue
            cats, volumes, durations = sample_category_sessions(
                category_shares, rng, n
            )
            group = np.array(
                [bs_pos * len(categories) + cat_pos[c] for c in cats],
                dtype=np.int64,
            )
            all_group.append(group)
            all_day.append(np.full(n, day))
            all_minute.append(np.repeat(np.arange(1440), counts))
            all_vol.append(volumes)
            all_dur.append(durations)

    if not all_group:
        raise AllocationError("arrival models produced no sessions")
    flat = spread_sessions(
        np.concatenate(all_group),
        n_groups,
        np.concatenate(all_day),
        np.concatenate(all_minute),
        np.concatenate(all_vol),
        np.concatenate(all_dur),
        n_sim_days,
    )
    demand = flat.reshape(len(bs_ids), len(categories), n_sim_days * 1440)
    category_capacity = percentile_capacity(
        demand, campaign_peak_mask(n_sim_days), percentile
    )

    capacity = np.zeros((len(bs_ids), len(SERVICE_NAMES)))
    for category in categories:
        members = services_in_category(category)
        if not members:
            continue
        share = category_capacity[:, cat_pos[category]] / len(members)
        for name in members:
            capacity[:, SERVICE_INDEX[name]] = share
    return capacity
