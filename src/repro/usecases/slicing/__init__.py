"""Capacity allocation for network slicing (Section 6.1)."""

from .allocation import (
    SLA_PERCENTILE,
    allocate_with_categories,
    allocate_with_models,
    percentile_capacity,
)
from .benchmarks import BM_A_SHARES, BM_B_SHARES, CATEGORY_MODELS
from .demand import campaign_peak_mask, demand_matrix, spread_sessions
from .simulator import (
    SlicingOutcome,
    SlicingScenario,
    StrategyResult,
    evaluate_capacity,
    fit_antenna_arrival_models,
    run_slicing_experiment,
)

__all__ = [
    "BM_A_SHARES",
    "BM_B_SHARES",
    "CATEGORY_MODELS",
    "SLA_PERCENTILE",
    "SlicingOutcome",
    "SlicingScenario",
    "StrategyResult",
    "allocate_with_categories",
    "allocate_with_models",
    "campaign_peak_mask",
    "demand_matrix",
    "evaluate_capacity",
    "fit_antenna_arrival_models",
    "percentile_capacity",
    "run_slicing_experiment",
    "spread_sessions",
]
