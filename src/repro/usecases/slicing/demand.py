"""Per-slice, per-antenna traffic demand time series.

The slicing use case (Section 6.1) reasons about the traffic demand each
Service Provider's slice places on each antenna at every minute.  A session
of volume ``x`` spread over ``n`` minutes contributes ``x / n`` MB to each
covered minute of its serving antenna and service — the finest accounting
the per-minute probe aggregation supports.
"""

from __future__ import annotations

import numpy as np

from ...dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ...dataset.records import SERVICE_NAMES, SessionTable


class DemandError(ValueError):
    """Raised on inconsistent demand-matrix input."""


def spread_sessions(
    group_idx: np.ndarray,
    n_groups: int,
    day: np.ndarray,
    start_minute: np.ndarray,
    volumes_mb: np.ndarray,
    durations_s: np.ndarray,
    n_days: int,
) -> np.ndarray:
    """Spread session volumes uniformly over their covered minutes.

    Returns a ``(n_groups, n_days * 1440)`` matrix of MB per minute; the
    grouping (antenna, service, slice, category, ...) is the caller's
    choice.  Sessions are clipped at the end of their day.
    """
    group_idx = np.asarray(group_idx, dtype=np.int64)
    day = np.asarray(day, dtype=np.int64)
    start_minute = np.asarray(start_minute, dtype=np.int64)
    volumes_mb = np.asarray(volumes_mb, dtype=float)
    durations_s = np.asarray(durations_s, dtype=float)
    n = group_idx.size
    if not (
        day.shape == start_minute.shape == volumes_mb.shape == durations_s.shape
        == (n,)
    ):
        raise DemandError("all session columns must align")
    if n_groups < 1 or n_days < 1:
        raise DemandError("n_groups and n_days must be >= 1")
    if n and (group_idx.min() < 0 or group_idx.max() >= n_groups):
        raise DemandError("group index out of range")

    total_minutes = n_days * MINUTES_PER_DAY
    demand = np.zeros(n_groups * total_minutes)
    if n == 0:
        return demand.reshape(n_groups, total_minutes)

    n_minutes = np.ceil(durations_s / 60.0).astype(np.int64)
    n_minutes = np.minimum(np.maximum(n_minutes, 1), MINUTES_PER_DAY - start_minute)
    rate = volumes_mb / n_minutes
    base_slot = (
        group_idx * total_minutes + day * MINUTES_PER_DAY + start_minute
    )

    # Iterate over the k-th covered minute, shrinking to the sessions that
    # actually last that long (descending sort gives a contiguous prefix).
    order = np.argsort(-n_minutes, kind="stable")
    n_sorted = n_minutes[order]
    slot_sorted = base_slot[order]
    rate_sorted = rate[order]
    for k in range(int(n_sorted[0])):
        active = int(np.searchsorted(-n_sorted, -(k + 1), side="right"))
        if active == 0:
            break
        np.add.at(demand, slot_sorted[:active] + k, rate_sorted[:active])

    return demand.reshape(n_groups, total_minutes)


def demand_matrix(
    table: SessionTable, bs_ids: list[int], n_days: int
) -> np.ndarray:
    """Per-minute traffic demand in MB, shaped (n_bs, n_services, minutes).

    ``minutes`` runs over the whole campaign (``n_days * 1440``).
    """
    if not bs_ids:
        raise DemandError("need at least one antenna")
    n_bs = len(bs_ids)
    n_services = len(SERVICE_NAMES)
    sub = table.for_bs_ids(bs_ids)

    bs_pos = {bs: i for i, bs in enumerate(bs_ids)}
    bs_index = np.array([bs_pos[b] for b in sub.bs_id], dtype=np.int64)
    group = bs_index * n_services + sub.service_idx.astype(np.int64)
    flat = spread_sessions(
        group,
        n_bs * n_services,
        sub.day,
        sub.start_minute,
        sub.volume_mb,
        sub.duration_s,
        n_days,
    )
    return flat.reshape(n_bs, n_services, n_days * MINUTES_PER_DAY)


def campaign_peak_mask(n_days: int) -> np.ndarray:
    """Boolean mask of the peak-hour minutes over a whole campaign.

    The SLA of Section 6.1 covers peak hours only (all day except the
    night from 10 pm to 8 am).
    """
    if n_days < 1:
        raise DemandError("n_days must be >= 1")
    return np.tile(peak_minute_mask(), n_days)
