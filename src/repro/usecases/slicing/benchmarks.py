"""Literature 3-category traffic models — the Section 6 benchmarks.

The paper compares its per-service models against what the prior art
offers: mobile traffic models that distinguish only three service
categories — Interactive Web (IW), Casual Streaming (CS) and Movie
Streaming (MS) — with per-category session behaviour ([42] Tsompanidis et
al. 2014, [31] Navarro-Ortiz et al. 2020).  Two share breakdowns are used
in Section 6.1.1:

* **bm a**: category session shares obtained by aggregating Table 1 over
  the category mapping (IW 49.30 %, CS 48.46 %, MS 2.24 %);
* **bm b**: category session shares taken from the literature
  (IW 50 %, CS 42.11 %, MS 7.89 %).

The per-category session parameters below follow the NGMN-style constant-
bitrate assumptions of those models: each session holds a fixed nominal
throughput for an exponential-ish duration.  These are exactly the kind of
coarse assumptions whose mismatch with measured session-level behaviour the
use cases quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...dataset.services import LiteratureCategory, services_in_category


class BenchmarkError(ValueError):
    """Raised on malformed benchmark configuration."""


@dataclass(frozen=True)
class CategoryTrafficModel:
    """Literature session model of one service category.

    Sessions hold ``nominal_throughput_mbps`` for a log-normally distributed
    duration of median ``median_duration_s`` (spread ``sigma_dex`` decades);
    the session volume follows as throughput × duration.
    """

    category: LiteratureCategory
    nominal_throughput_mbps: float
    median_duration_s: float
    sigma_dex: float = 0.30

    def sample_sessions(
        self, rng: np.random.Generator, size: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Draw (volumes MB, durations s) for ``size`` category sessions."""
        durations = self.median_duration_s * 10.0 ** rng.normal(
            0.0, self.sigma_dex, size=size
        )
        durations = np.clip(durations, 1.0, 86400.0)
        volumes = self.nominal_throughput_mbps * durations / 8.0
        return volumes, durations


#: The literature category models ([42] Table II / [31] Table XVII style):
#: constant nominal bitrates per category.
CATEGORY_MODELS: dict[LiteratureCategory, CategoryTrafficModel] = {
    LiteratureCategory.INTERACTIVE_WEB: CategoryTrafficModel(
        LiteratureCategory.INTERACTIVE_WEB,
        nominal_throughput_mbps=1.0,
        median_duration_s=30.0,
    ),
    LiteratureCategory.CASUAL_STREAMING: CategoryTrafficModel(
        LiteratureCategory.CASUAL_STREAMING,
        nominal_throughput_mbps=2.0,
        median_duration_s=120.0,
    ),
    LiteratureCategory.MOVIE_STREAMING: CategoryTrafficModel(
        LiteratureCategory.MOVIE_STREAMING,
        nominal_throughput_mbps=4.0,
        median_duration_s=900.0,
    ),
}

#: bm a: category session shares from aggregating Table 1 (Section 6.1.1).
BM_A_SHARES: dict[LiteratureCategory, float] = {
    LiteratureCategory.INTERACTIVE_WEB: 0.4930,
    LiteratureCategory.CASUAL_STREAMING: 0.4846,
    LiteratureCategory.MOVIE_STREAMING: 0.0224,
}

#: bm b: category session shares from the literature (Section 6.1.1).
BM_B_SHARES: dict[LiteratureCategory, float] = {
    LiteratureCategory.INTERACTIVE_WEB: 0.5000,
    LiteratureCategory.CASUAL_STREAMING: 0.4211,
    LiteratureCategory.MOVIE_STREAMING: 0.0789,
}


def normalized_shares(
    shares: dict[LiteratureCategory, float]
) -> dict[LiteratureCategory, float]:
    """Validate and renormalize a category share vector."""
    total = sum(shares.values())
    if total <= 0:
        raise BenchmarkError("category shares must have positive total")
    if any(v < 0 for v in shares.values()):
        raise BenchmarkError("category shares must be non-negative")
    return {c: shares.get(c, 0.0) / total for c in LiteratureCategory}


def category_of_services() -> dict[LiteratureCategory, list[str]]:
    """Service names per category (the mapping used to split capacity)."""
    return {c: services_in_category(c) for c in LiteratureCategory}


def sample_category_sessions(
    shares: dict[LiteratureCategory, float],
    rng: np.random.Generator,
    size: int,
) -> tuple[list[LiteratureCategory], np.ndarray, np.ndarray]:
    """Draw ``size`` sessions from the 3-category literature model.

    Returns (category per session, volumes MB, durations s).
    """
    shares = normalized_shares(shares)
    categories = list(LiteratureCategory)
    probs = np.array([shares[c] for c in categories])
    idx = rng.choice(len(categories), size=size, p=probs)
    volumes = np.empty(size)
    durations = np.empty(size)
    for i, category in enumerate(categories):
        mask = idx == i
        n = int(mask.sum())
        if n:
            volumes[mask], durations[mask] = CATEGORY_MODELS[
                category
            ].sample_sessions(rng, n)
    return [categories[i] for i in idx], volumes, durations
