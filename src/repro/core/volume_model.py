"""Log-normal mixture model of the per-session traffic volume (Section 5.2).

The model ``F~_s(x)`` of Eq (5) is assembled in three steps, mirrored by
:func:`fit_volume_model`:

1. fit the broad trend with a single log-normal ``f_s`` (Eq 3) and take the
   positive residual of the measurement against it;
2. locate the characteristic residual peaks
   (:mod:`repro.core.residuals`);
3. model each retained peak as a scaled log-normal ``f_{s,n}`` (Eq 4) and
   compose ``F~_s = (f_s + sum_n f_{s,n}) / (1 + sum_n k_{s,n})`` (Eq 5).

Compared to generic mixture fitting (e.g. EM), this decomposition yields
compact models whose components have a clear semantic: one main trend plus
a handful of characteristic peaks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

_LN10 = math.log(10.0)

from ..analysis.emd import emd
from ..analysis.histogram import LOG_CENTERS as LOG_CENTERS_
from ..analysis.histogram import LogHistogram
from .distributions import LogNormal10, LogNormalMixture
from .fitting.gaussian_fit import fit_main_lognormal
from .residuals import (
    DERIVATIVE_THRESHOLD,
    MAX_PEAKS,
    MIN_PEAK_WEIGHT,
    ResidualPeak,
    find_residual_peaks,
)


class VolumeModelError(ValueError):
    """Raised when a volume model is malformed."""


@dataclass(frozen=True)
class VolumeModel:
    """The fitted mixture ``F~_s(x)`` of Eq (5).

    Attributes
    ----------
    main:
        The broad-trend log-normal ``f_s`` (weight 1 before normalization).
    peaks:
        The residual peaks, each carrying its weight ``k_{s,n}``.
    """

    main: LogNormal10
    peaks: tuple[ResidualPeak, ...] = ()

    @property
    def total_peak_weight(self) -> float:
        """``sum_n k_{s,n}`` — the normalization surplus of Eq (5)."""
        return sum(p.weight for p in self.peaks)

    def pdf_log10(self, u) -> np.ndarray:
        """Model density over ``u = log10(x)`` — Eq (5)."""
        u = np.asarray(u, dtype=float)
        density = self.main.pdf_log10(u).copy()
        for peak in self.peaks:
            density += peak.pdf_log10(u)
        return density / (1.0 + self.total_peak_weight)

    def as_mixture(self) -> LogNormalMixture:
        """The model as a normalized sampling-ready mixture."""
        components = [self.main] + [p.component() for p in self.peaks]
        weights = [1.0] + [p.weight for p in self.peaks]
        return LogNormalMixture.from_unnormalized(components, weights)

    def as_histogram(self) -> LogHistogram:
        """The model discretized on the global grid."""
        return LogHistogram.from_log_density(self.pdf_log10).normalized()

    def sample_volumes_mb(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw per-session volumes in MB from the model."""
        return self.as_mixture().sample(rng, size=size)

    def error_against(self, measured: LogHistogram) -> float:
        """EMD between the model and a measured PDF (the Section 5.4
        quality metric, reported in the order of 1e-5 in the paper)."""
        return emd(self.as_histogram(), measured)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-serializable parameter tuple [mu, sigma, {k, mu, sigma}_n]."""
        return {
            "mu": self.main.mu,
            "sigma": self.main.sigma,
            "peaks": [
                {
                    "k": p.weight,
                    "mu": p.mu,
                    "sigma": p.sigma,
                    "u_lo": p.u_lo,
                    "u_hi": p.u_hi,
                }
                for p in self.peaks
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "VolumeModel":
        """Inverse of :meth:`to_dict`."""
        try:
            main = LogNormal10(float(payload["mu"]), float(payload["sigma"]))
            peaks = tuple(
                ResidualPeak(
                    weight=float(p["k"]),
                    mu=float(p["mu"]),
                    sigma=float(p["sigma"]),
                    u_lo=float(p.get("u_lo", p["mu"])),
                    u_hi=float(p.get("u_hi", p["mu"])),
                )
                for p in payload.get("peaks", [])
            )
        except (KeyError, TypeError) as exc:
            raise VolumeModelError(f"malformed volume model payload: {exc}") from exc
        return cls(main=main, peaks=peaks)


@dataclass(frozen=True)
class DecompositionTrace:
    """Intermediate artefacts of the three fitting steps (the Fig 9 panes)."""

    measured: LogHistogram
    main: LogNormal10
    residual: np.ndarray
    peaks: tuple[ResidualPeak, ...]
    model: VolumeModel


#: Calibration modes of the final fitting step.
CALIBRATION_MODES = ("none", "mean", "quantile")


def fit_volume_model(
    measured: LogHistogram,
    max_peaks: int = MAX_PEAKS,
    derivative_threshold: float = DERIVATIVE_THRESHOLD,
    min_peak_weight: float = MIN_PEAK_WEIGHT,
    n_refinements: int = 1,
    calibration: str = "mean",
    calibration_quantile: float = 0.95,
) -> VolumeModel:
    """Fit the Eq (5) mixture to a measured volume PDF."""
    return decompose_volume_pdf(
        measured,
        max_peaks,
        derivative_threshold,
        min_peak_weight,
        n_refinements,
        calibration,
        calibration_quantile,
    ).model


def _calibrate_main_sigma(
    model: VolumeModel,
    measured: LogHistogram,
    mode: str,
    quantile: float,
) -> VolumeModel:
    """Recalibrate the main component's sigma against the measured tail.

    A symmetric log-normal fitted by least squares to a left-skewed
    measured PDF systematically mis-sizes the right tail, which carries
    most of the traffic load.  This optional final step (an implementation
    extension over the paper's three modeling steps; the ablation benchmark
    compares the modes) keeps the fitted ``mu`` and the peaks, and adjusts
    only ``sigma``:

    * ``"mean"``: closed-form match of the model's analytic mean session
      volume to the measured mean — exact load fidelity;
    * ``"quantile"``: bisection on sigma until the model's ``quantile``
      matches the measured one;
    * ``"none"``: keep the least-squares sigma.
    """
    if mode == "none":
        return model
    if mode == "mean":
        measured_mean = measured.mean_mb()
        k_total = model.total_peak_weight
        peak_mass = sum(
            p.weight * math.exp(p.mu * _LN10 + (p.sigma * _LN10) ** 2 / 2.0)
            for p in model.peaks
        )
        main_target = measured_mean * (1.0 + k_total) - peak_mass
        if main_target <= 0:
            # The peaks alone already carry more mean volume than measured;
            # no main component can compensate — keep the raw fit.
            return model
        # The main mean exp(mu ln10 + (sigma ln10)^2/2) is minimized at
        # sigma -> 0, i.e. at the median 10**mu; when the target sits below
        # that floor no sigma solves it — shift mu instead (keeping the
        # fitted sigma), which always has a solution.
        if main_target <= 10.0**model.main.mu:
            mu = (
                math.log(main_target) - (model.main.sigma * _LN10) ** 2 / 2.0
            ) / _LN10
            return VolumeModel(
                LogNormal10(mu, model.main.sigma), model.peaks
            )
        sigma = math.sqrt(
            2.0 * (math.log(main_target) - model.main.mu * _LN10)
        ) / _LN10
        return VolumeModel(LogNormal10(model.main.mu, sigma), model.peaks)
    if mode == "quantile":
        if not 0.5 < quantile < 1.0:
            raise VolumeModelError("calibration quantile must be in (0.5, 1)")
        target = math.log10(measured.quantile_mb(quantile))
        lo, hi = model.main.sigma * 0.4, model.main.sigma * 3.0
        for _ in range(40):
            mid = 0.5 * (lo + hi)
            trial = VolumeModel(LogNormal10(model.main.mu, mid), model.peaks)
            if math.log10(trial.as_histogram().quantile_mb(quantile)) < target:
                lo = mid
            else:
                hi = mid
        return VolumeModel(
            LogNormal10(model.main.mu, 0.5 * (lo + hi)), model.peaks
        )
    raise VolumeModelError(
        f"unknown calibration mode {mode!r}; pick one of {CALIBRATION_MODES}"
    )


def decompose_volume_pdf(
    measured: LogHistogram,
    max_peaks: int = MAX_PEAKS,
    derivative_threshold: float = DERIVATIVE_THRESHOLD,
    min_peak_weight: float = MIN_PEAK_WEIGHT,
    n_refinements: int = 1,
    calibration: str = "mean",
    calibration_quantile: float = 0.95,
) -> DecompositionTrace:
    """Run the three modeling steps, keeping every intermediate artefact.

    This is the function behind the Fig 9 benchmark: it exposes the main
    component, the residual curve and the retained peaks, not only the
    final model.

    ``n_refinements`` adds an implementation refinement on top of the
    paper's three steps: after the peaks are extracted, the main component
    is refitted against the peak-subtracted PDF (Eq (5) solved for ``f_s``
    given the ``f_{s,n}``) and the peaks re-extracted against the refined
    main.  Without it, heavy characteristic peaks broaden the main fit and
    inflate the modelled tail; the component semantics are unchanged.  The
    ablation benchmark sweeps this parameter.
    """
    measured = measured.normalized()

    # Step 1: broad trend + positive residual.
    main = fit_main_lognormal(measured)
    main_hist = LogHistogram.from_log_density(main.pdf_log10)
    residual = measured.residual_against(main_hist)

    # Step 2: characteristic peaks of the residual.
    peaks = find_residual_peaks(
        residual,
        max_peaks=max_peaks,
        derivative_threshold=derivative_threshold,
        min_weight=min_peak_weight,
    )

    for _ in range(max(n_refinements, 0)):
        if not peaks:
            break
        # Solve Eq (5) for the main component given the current peaks:
        # f_s ≈ measured * (1 + sum k_n) - sum f_{s,n}, then refit.
        k_total = sum(p.weight for p in peaks)
        peak_density = np.zeros_like(measured.density)
        for peak in peaks:
            peak_density += peak.pdf_log10(LOG_CENTERS_)
        target = np.clip(
            measured.density * (1.0 + k_total) - peak_density, 0.0, None
        )
        if target.sum() <= 0:
            break
        main = fit_main_lognormal(
            LogHistogram(target, n_samples=measured.n_samples).normalized()
        )
        main_hist = LogHistogram.from_log_density(main.pdf_log10)
        residual = np.clip(
            measured.density * (1.0 + k_total) - main_hist.density, 0.0, None
        )
        peaks = find_residual_peaks(
            residual,
            max_peaks=max_peaks,
            derivative_threshold=derivative_threshold,
            min_weight=min_peak_weight,
        )

    # Step 3: compose the mixture (Eq 5) and calibrate the tail.
    model = _calibrate_main_sigma(
        VolumeModel(main=main, peaks=tuple(peaks)),
        measured,
        calibration,
        calibration_quantile,
    )
    main = model.main
    return DecompositionTrace(
        measured=measured,
        main=main,
        residual=residual,
        peaks=tuple(peaks),
        model=model,
    )
