"""In-house numerical fitting substrates (LM, Savitzky-Golay, Gaussian).

The bootstrap helpers consume the duration model (which itself builds on
the LM solver here), so they are exposed lazily to keep the import graph
acyclic.
"""

from .gaussian_fit import fit_main_lognormal, moment_gaussian
from .levenberg_marquardt import FitError, LMResult, fit_curve, levenberg_marquardt
from .savitzky_golay import savgol_coefficients, savgol_filter

_LAZY = {
    "BootstrapError": ("bootstrap", "BootstrapError"),
    "ConfidenceInterval": ("bootstrap", "ConfidenceInterval"),
    "PowerLawBootstrap": ("bootstrap", "PowerLawBootstrap"),
    "bootstrap_mean_volume": ("bootstrap", "bootstrap_mean_volume"),
    "bootstrap_power_law": ("bootstrap", "bootstrap_power_law"),
}


def __getattr__(name: str):
    """Lazily resolve the duration-model-dependent members (PEP 562)."""
    if name in _LAZY:
        import importlib

        module_name, attr = _LAZY[name]
        module = importlib.import_module(f".{module_name}", __name__)
        return getattr(module, attr)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "BootstrapError",
    "ConfidenceInterval",
    "FitError",
    "LMResult",
    "PowerLawBootstrap",
    "bootstrap_mean_volume",
    "bootstrap_power_law",
    "fit_curve",
    "fit_main_lognormal",
    "levenberg_marquardt",
    "moment_gaussian",
    "savgol_coefficients",
    "savgol_filter",
]
