"""Gaussian fitting helpers for densities over ``u = log10(x)``.

The main component of the volume model (Section 5.2, step 1) is a log-normal
— a Gaussian over the logarithmic traffic axis.  Fitting it to a measured
log-PDF is done in two stages: a closed-form moment match for the initial
guess, refined by Levenberg–Marquardt on the density curve itself so that
heavy residual peaks do not drag the broad-trend component off-center.
"""

from __future__ import annotations

import numpy as np

from ...analysis.histogram import BIN_WIDTH, LOG_CENTERS, LogHistogram
from ..distributions import Gaussian, LogNormal10
from .levenberg_marquardt import FitError, fit_curve


def moment_gaussian(hist: LogHistogram) -> Gaussian:
    """Closed-form Gaussian fit by matching mean and variance in log-space."""
    if hist.is_empty:
        raise FitError("cannot fit a Gaussian to an empty histogram")
    mu = hist.mean_log10()
    sigma = max(hist.std_log10(), BIN_WIDTH)
    return Gaussian(mu, sigma)


def _gaussian_density(u: np.ndarray, mu: float, sigma: float) -> np.ndarray:
    sigma = abs(sigma)
    if sigma < 1e-6:
        sigma = 1e-6
    z = (u - mu) / sigma
    return np.exp(-0.5 * z * z) / (sigma * np.sqrt(2 * np.pi))


def fit_main_lognormal(hist: LogHistogram) -> LogNormal10:
    """Fit the broad-trend log-normal ``f_s(x)`` of Eq (3) to a volume PDF.

    The moment estimate seeds a Levenberg–Marquardt refinement of
    ``(mu, sigma)`` against the measured log-density.  If the refinement
    fails to improve (e.g. the PDF is a single spike), the moment fit is
    returned unchanged.
    """
    initial = moment_gaussian(hist)
    pdf = hist.normalized().density
    try:
        result = fit_curve(
            _gaussian_density,
            LOG_CENTERS,
            pdf,
            p0=[initial.mu, initial.sigma],
        )
        mu, sigma = result.params
        sigma = abs(float(sigma))
        if not np.isfinite(mu) or sigma < BIN_WIDTH / 4:
            raise FitError("degenerate refined parameters")
        return LogNormal10(float(mu), float(sigma))
    except FitError:
        return LogNormal10(initial.mu, initial.sigma)
