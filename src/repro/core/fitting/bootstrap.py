"""Bootstrap confidence intervals for fitted session-level parameters.

The paper releases point estimates.  For a library, users calibrating
network dimensioning on the fitted tuples also want to know how tight
those estimates are given a finite measurement campaign; this module
resamples sessions with replacement and refits, yielding percentile
confidence intervals for the power-law parameters and the mean session
volume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ...dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from ...dataset.records import SessionTable
from ..duration_model import DurationModelError, fit_power_law


class BootstrapError(ValueError):
    """Raised on unusable bootstrap input."""


@dataclass(frozen=True)
class ConfidenceInterval:
    """A two-sided percentile confidence interval around a point estimate."""

    estimate: float
    low: float
    high: float
    confidence: float

    def __post_init__(self) -> None:
        if not self.low <= self.high:
            raise BootstrapError("interval bounds out of order")

    @property
    def width(self) -> float:
        """Size of the interval."""
        return self.high - self.low

    def contains(self, value: float) -> bool:
        """Whether a value falls inside the interval."""
        return self.low <= value <= self.high


@dataclass(frozen=True)
class PowerLawBootstrap:
    """Bootstrap result for one service's duration–volume law."""

    alpha: ConfidenceInterval
    beta: ConfidenceInterval
    n_resamples: int


def _resample(table: SessionTable, rng: np.random.Generator) -> SessionTable:
    idx = rng.integers(0, len(table), size=len(table))
    mask_based = SessionTable(
        service_idx=table.service_idx[idx],
        bs_id=table.bs_id[idx],
        day=table.day[idx],
        start_minute=table.start_minute[idx],
        duration_s=table.duration_s[idx],
        volume_mb=table.volume_mb[idx],
        truncated=table.truncated[idx],
    )
    return mask_based


def bootstrap_power_law(
    table: SessionTable,
    rng: np.random.Generator,
    n_resamples: int = 100,
    confidence: float = 0.95,
) -> PowerLawBootstrap:
    """Percentile bootstrap of ``alpha`` and ``beta`` for one service.

    ``table`` should hold the sessions of a single service.  Resamples
    whose duration–volume curve is too sparse to regress are skipped; at
    least half of them must survive for the interval to be meaningful.
    """
    if len(table) < 10:
        raise BootstrapError("need at least 10 sessions to bootstrap")
    if not 0.5 < confidence < 1.0:
        raise BootstrapError("confidence must be in (0.5, 1)")
    if n_resamples < 10:
        raise BootstrapError("need at least 10 resamples")

    point = fit_power_law(pooled_duration_volume(table))
    alphas, betas = [], []
    for _ in range(n_resamples):
        resampled = _resample(table, rng)
        try:
            fit = fit_power_law(pooled_duration_volume(resampled))
        except DurationModelError:
            continue
        alphas.append(fit.alpha)
        betas.append(fit.beta)
    if len(alphas) < n_resamples / 2:
        raise BootstrapError("too many degenerate resamples")

    tail = 100.0 * (1.0 - confidence) / 2.0

    def interval(samples: list[float], estimate: float) -> ConfidenceInterval:
        low, high = np.percentile(samples, [tail, 100.0 - tail])
        return ConfidenceInterval(
            estimate=estimate,
            low=float(low),
            high=float(high),
            confidence=confidence,
        )

    return PowerLawBootstrap(
        alpha=interval(alphas, point.alpha),
        beta=interval(betas, point.beta),
        n_resamples=len(alphas),
    )


def bootstrap_mean_volume(
    table: SessionTable,
    rng: np.random.Generator,
    n_resamples: int = 200,
    confidence: float = 0.95,
) -> ConfidenceInterval:
    """Percentile bootstrap of the mean session volume (MB)."""
    if len(table) < 10:
        raise BootstrapError("need at least 10 sessions to bootstrap")
    volumes = table.volume_mb.astype(float)
    means = [
        float(volumes[rng.integers(0, volumes.size, volumes.size)].mean())
        for _ in range(n_resamples)
    ]
    tail = 100.0 * (1.0 - confidence) / 2.0
    low, high = np.percentile(means, [tail, 100.0 - tail])
    return ConfidenceInterval(
        estimate=float(pooled_volume_pdf(table).mean_mb()),
        low=float(low),
        high=float(high),
        confidence=confidence,
    )
