"""Savitzky–Golay smoothing and differentiation, implemented from scratch.

Section 5.2 of the paper smooths the first derivative of the residual
probability with a first-order Savitzky–Golay filter before thresholding it
to locate the characteristic probability peaks of each service.  We implement
the filter directly (least-squares polynomial fit over a sliding window,
realized as a convolution) rather than relying on :mod:`scipy.signal`; the
unit tests cross-check this implementation against scipy's.
"""

from __future__ import annotations

import math

import numpy as np


class FilterError(ValueError):
    """Raised when filter parameters are inconsistent."""


def savgol_coefficients(
    window_length: int, poly_order: int, deriv: int = 0, delta: float = 1.0
) -> np.ndarray:
    """Return the convolution kernel of a Savitzky–Golay filter.

    The kernel, applied as ``np.convolve(y, kernel[::-1], mode="same")``
    (or via :func:`savgol_filter`), evaluates at each point the ``deriv``-th
    derivative of the least-squares polynomial of degree ``poly_order``
    fitted to the surrounding ``window_length`` samples spaced by ``delta``.

    Parameters
    ----------
    window_length:
        Odd number of samples in the sliding window.
    poly_order:
        Degree of the fitted polynomial; must be < ``window_length``.
    deriv:
        Order of the derivative to estimate (0 = smoothing).
    delta:
        Sample spacing used to scale derivative estimates.
    """
    if window_length % 2 != 1 or window_length < 1:
        raise FilterError(f"window_length must be odd and >= 1, got {window_length}")
    if poly_order >= window_length:
        raise FilterError("poly_order must be smaller than window_length")
    if deriv > poly_order:
        raise FilterError("deriv must not exceed poly_order")
    if delta <= 0:
        raise FilterError("delta must be positive")

    half = window_length // 2
    # Vandermonde matrix of offsets around the window center.
    offsets = np.arange(-half, half + 1, dtype=float)
    vander = np.vander(offsets, poly_order + 1, increasing=True)
    # Least-squares projector: coefficients of the fitted polynomial are
    # pinv(V) @ y; the deriv-th derivative at the center is deriv! * c_deriv.
    projector = np.linalg.pinv(vander)
    kernel = projector[deriv] * math.factorial(deriv) / delta**deriv
    return kernel


def savgol_filter(
    y: np.ndarray,
    window_length: int,
    poly_order: int,
    deriv: int = 0,
    delta: float = 1.0,
) -> np.ndarray:
    """Apply a Savitzky–Golay filter to ``y``.

    Interior points use the convolution kernel from
    :func:`savgol_coefficients`; near the edges the polynomial is refitted to
    the available one-sided window (the ``interp``-free exact treatment),
    matching scipy's ``mode="interp"`` behaviour.
    """
    y = np.asarray(y, dtype=float)
    if y.ndim != 1:
        raise FilterError("savgol_filter expects a 1-D array")
    if y.size < window_length:
        raise FilterError(
            f"input of size {y.size} shorter than window {window_length}"
        )

    kernel = savgol_coefficients(window_length, poly_order, deriv, delta)
    # Correlation of y with the kernel == applying the least-squares stencil.
    out = np.convolve(y, kernel[::-1], mode="same")

    # Edge correction: fit one polynomial to each end window and evaluate its
    # derivative at the edge points (this is what scipy's mode="interp" does).
    half = window_length // 2
    offsets = np.arange(window_length, dtype=float)
    vander = np.vander(offsets, poly_order + 1, increasing=True)
    pinv = np.linalg.pinv(vander)

    head_coeffs = pinv @ y[:window_length]
    tail_coeffs = pinv @ y[-window_length:]
    deriv_factor = math.factorial(deriv) / delta**deriv

    for i in range(half):
        out[i] = _poly_derivative(head_coeffs, float(i), deriv) * deriv_factor
        j = y.size - 1 - i
        local = float(window_length - 1 - i)
        out[j] = _poly_derivative(tail_coeffs, local, deriv) * deriv_factor
    return out


def _poly_derivative(coeffs: np.ndarray, x: float, deriv: int) -> float:
    """Evaluate the ``deriv``-th derivative of a polynomial at ``x``.

    ``coeffs`` are in increasing-power order; the returned value is already
    divided by ``deriv!`` (the caller multiplies it back in), so that the
    ``deriv = 0`` case is a plain polynomial evaluation.
    """
    value = 0.0
    for power in range(deriv, coeffs.size):
        # Falling factorial power * (power-1) * ... * (power-deriv+1),
        # divided by deriv! to match the caller's scaling convention.
        fall = 1.0
        for k in range(deriv):
            fall *= power - k
        value += coeffs[power] * fall * x ** (power - deriv)
    return value / math.factorial(deriv)
