"""A from-scratch Levenberg–Marquardt non-linear least-squares solver.

Section 5.3 of the paper fits the power-law duration–volume models
``v_s(d) = alpha_s * d**beta_s`` with the Levenberg–Marquardt method.  This
module provides a small, dependency-free LM implementation with a numeric
Jacobian and adaptive damping; the unit tests cross-check it against
:func:`scipy.optimize.curve_fit` (which uses MINPACK's LM).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np


class FitError(RuntimeError):
    """Raised when a least-squares fit cannot be carried out."""


@dataclass(frozen=True)
class LMResult:
    """Outcome of a Levenberg–Marquardt run.

    Attributes
    ----------
    params:
        Best parameter vector found.
    cost:
        Final value of ``0.5 * sum(residuals**2)``.
    n_iterations:
        Number of accepted LM steps.
    converged:
        Whether a convergence criterion (step size or gradient) was met
        before the iteration limit.
    """

    params: np.ndarray
    cost: float
    n_iterations: int
    converged: bool


def _numeric_jacobian(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    params: np.ndarray,
    residuals: np.ndarray,
) -> np.ndarray:
    """Forward-difference Jacobian of the residual vector."""
    n = params.size
    jac = np.empty((residuals.size, n))
    with np.errstate(over="ignore", invalid="ignore"):
        for j in range(n):
            step = 1e-7 * max(abs(params[j]), 1e-3)
            bumped = params.copy()
            bumped[j] += step
            jac[:, j] = (residual_fn(bumped) - residuals) / step
    return jac


def levenberg_marquardt(
    residual_fn: Callable[[np.ndarray], np.ndarray],
    x0: np.ndarray,
    max_iterations: int = 200,
    tol_step: float = 1e-10,
    tol_grad: float = 1e-10,
    initial_damping: float = 1e-3,
) -> LMResult:
    """Minimize ``0.5 * ||residual_fn(p)||^2`` over parameters ``p``.

    Parameters
    ----------
    residual_fn:
        Maps a parameter vector to the residual vector (data minus model).
    x0:
        Initial parameter guess.
    max_iterations:
        Cap on accepted iterations.
    tol_step / tol_grad:
        Convergence thresholds on the relative step size and on the infinity
        norm of the gradient.
    initial_damping:
        Starting value of the LM damping factor ``lambda``.
    """
    params = np.asarray(x0, dtype=float).copy()
    if params.ndim != 1:
        raise FitError("initial guess must be a 1-D parameter vector")

    with np.errstate(over="ignore", invalid="ignore"):
        residuals = np.asarray(residual_fn(params), dtype=float)
    if not np.all(np.isfinite(residuals)):
        raise FitError("residuals are not finite at the initial guess")
    cost = 0.5 * float(residuals @ residuals)
    damping = initial_damping
    growth = 2.0  # Nielsen's nu

    iteration = 0
    converged = False
    stale = 0
    while iteration < max_iterations:
        jac = _numeric_jacobian(residual_fn, params, residuals)
        gradient = jac.T @ residuals
        if np.max(np.abs(gradient)) < tol_grad:
            converged = True
            break
        hessian = jac.T @ jac
        diag = np.clip(np.diag(hessian), 1e-12, None)

        lhs = hessian + damping * np.diag(diag)
        try:
            step = np.linalg.solve(lhs, -gradient)
        except np.linalg.LinAlgError:
            damping *= growth
            growth *= 2.0
            iteration += 1
            continue

        # Trust-region cap in Jacobian-scaled space (the MINPACK scaling):
        # parameters with steep residual sensitivity move in proportionally
        # smaller steps, so a near-singular Jacobian cannot catapult the
        # search into a flat-gradient region it could never leave.
        scale = np.sqrt(diag)
        max_step = 1.0 + float(np.linalg.norm(scale * params))
        step_norm = float(np.linalg.norm(scale * step))
        if step_norm > max_step:
            step = step * (max_step / step_norm)

        rel_step = float(np.linalg.norm(step)) / max(
            float(np.linalg.norm(params)), tol_step
        )
        if rel_step < tol_step:
            converged = True
            break

        candidate = params + step
        # Exploratory steps may momentarily overflow the model (e.g. huge
        # power-law exponents); such candidates are simply rejected below.
        with np.errstate(over="ignore", invalid="ignore"):
            new_residuals = np.asarray(residual_fn(candidate), dtype=float)
        finite = np.all(np.isfinite(new_residuals))
        new_cost = (
            0.5 * float(new_residuals @ new_residuals) if finite else np.inf
        )
        # Gain ratio: actual cost reduction over the reduction predicted by
        # the local quadratic model (Madsen–Nielsen).  Steps that pay off
        # far less than predicted are rejected, which keeps near-singular
        # Jacobians from catapulting the search into flat-gradient regions.
        predicted = 0.5 * float(step @ (damping * diag * step - gradient))
        rho = (cost - new_cost) / predicted if predicted > 0 else -1.0
        if finite and rho > 1e-4:
            params = candidate
            residuals = new_residuals
            cost_drop = cost - new_cost
            cost = new_cost
            damping *= max(1.0 / 3.0, 1.0 - (2.0 * rho - 1.0) ** 3)
            damping = max(damping, 1e-14)
            growth = 2.0
            stale = 0
            if cost_drop < tol_step * max(cost, 1.0):
                converged = True
        else:
            damping *= growth
            growth *= 2.0
            stale += 1
            if stale > 25:  # damping exhausted without progress
                break
        iteration += 1
        if converged:
            break

    return LMResult(params=params, cost=cost, n_iterations=iteration, converged=converged)


def fit_curve(
    model_fn: Callable[..., np.ndarray],
    x: np.ndarray,
    y: np.ndarray,
    p0: list[float],
    weights: np.ndarray | None = None,
    **lm_options,
) -> LMResult:
    """Convenience wrapper: fit ``y ~= model_fn(x, *params)`` with LM.

    ``weights`` (if given) scale the residuals, allowing e.g. duration bins
    backed by more sessions to count more in the fit.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape:
        raise FitError("x and y must have the same shape")
    if x.size < len(p0):
        raise FitError(
            f"need at least {len(p0)} points to fit {len(p0)} parameters"
        )
    if weights is not None:
        weights = np.sqrt(np.asarray(weights, dtype=float))
        if weights.shape != x.shape:
            raise FitError("weights must align with x")

    def residual_fn(params: np.ndarray) -> np.ndarray:
        res = y - model_fn(x, *params)
        if weights is not None:
            res = res * weights
        return res

    # Deterministic multi-start: LM is a local method, and curve shapes
    # like power laws have flat-gradient basins that can trap a single run
    # started far from the optimum.  The extra starts are scaled copies of
    # the caller's guess; the best final cost wins.
    p0 = np.asarray(p0, dtype=float)
    starts = [p0, p0 * 0.1, p0 * 10.0, p0 * np.where(p0 == 0, 1.0, 0.5)]
    best: LMResult | None = None
    for start in starts:
        try:
            result = levenberg_marquardt(residual_fn, start, **lm_options)
        except FitError:
            continue
        if best is None or result.cost < best.cost:
            best = result
        if best.cost < 1e-20:
            break
    if best is None:
        raise FitError("no start point produced finite residuals")
    return best
