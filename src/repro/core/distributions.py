"""Elementary probability distributions used by the session-level models.

Three families appear in the paper:

* a **Gaussian** for the daytime mode of the per-minute session arrival rate
  (Section 5.1);
* a **Pareto** for the nighttime mode of the arrival rate (Section 5.1);
* a **base-10 log-normal** — a Gaussian over ``u = log10(x)``, Eq (3) — for
  the per-session traffic volume and its residual peaks (Section 5.2).

All distributions expose ``pdf`` / ``cdf`` / ``ppf`` / ``sample`` and take an
explicit :class:`numpy.random.Generator`; nothing in this package touches
global random state.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy.special import erf, erfinv

_SQRT2 = float(np.sqrt(2.0))


class DistributionError(ValueError):
    """Raised when a distribution is built with invalid parameters."""


@dataclass(frozen=True)
class Gaussian:
    """Normal distribution ``N(mu, sigma^2)``."""

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0 or not np.isfinite(self.sigma):
            raise DistributionError(f"sigma must be positive, got {self.sigma}")
        if not np.isfinite(self.mu):
            raise DistributionError(f"mu must be finite, got {self.mu}")

    def pdf(self, x) -> np.ndarray:
        """Probability density at ``x``."""
        x = np.asarray(x, dtype=float)
        z = (x - self.mu) / self.sigma
        return np.exp(-0.5 * z * z) / (self.sigma * np.sqrt(2 * np.pi))

    def cdf(self, x) -> np.ndarray:
        """Cumulative probability at ``x``."""
        x = np.asarray(x, dtype=float)
        return 0.5 * (1.0 + erf((x - self.mu) / (self.sigma * _SQRT2)))

    def ppf(self, q) -> np.ndarray:
        """Quantile function (inverse CDF)."""
        q = np.asarray(q, dtype=float)
        if np.any((q <= 0) | (q >= 1)):
            raise DistributionError("quantiles must lie strictly in (0, 1)")
        return self.mu + self.sigma * _SQRT2 * erfinv(2.0 * q - 1.0)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` variates."""
        return rng.normal(self.mu, self.sigma, size=size)


@dataclass(frozen=True)
class Pareto:
    """Pareto (type I) distribution with density ``b s^b / x^(b+1)``, x >= s.

    ``shape`` is the tail exponent ``b`` and ``scale`` the minimum value
    ``s`` — the parameterization used in Section 5.1 of the paper, where the
    shape is fixed to ``b = 1.765`` and only the scale varies across BS load
    deciles.
    """

    shape: float
    scale: float

    def __post_init__(self) -> None:
        if self.shape <= 0 or not np.isfinite(self.shape):
            raise DistributionError(f"shape must be positive, got {self.shape}")
        if self.scale <= 0 or not np.isfinite(self.scale):
            raise DistributionError(f"scale must be positive, got {self.scale}")

    def pdf(self, x) -> np.ndarray:
        """Probability density at ``x`` (0 below the scale)."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        ok = x >= self.scale
        out[ok] = self.shape * self.scale**self.shape / x[ok] ** (self.shape + 1)
        return out

    def cdf(self, x) -> np.ndarray:
        """Cumulative probability at ``x``."""
        x = np.asarray(x, dtype=float)
        out = np.zeros_like(x)
        ok = x >= self.scale
        out[ok] = 1.0 - (self.scale / x[ok]) ** self.shape
        return out

    def ppf(self, q) -> np.ndarray:
        """Quantile function (inverse CDF)."""
        q = np.asarray(q, dtype=float)
        if np.any((q < 0) | (q >= 1)):
            raise DistributionError("quantiles must lie in [0, 1)")
        return self.scale / (1.0 - q) ** (1.0 / self.shape)

    def mean(self) -> float:
        """Expected value (infinite when ``shape <= 1``)."""
        if self.shape <= 1:
            return float("inf")
        return self.shape * self.scale / (self.shape - 1)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` variates via inverse-CDF sampling."""
        return self.ppf(rng.random(size))


@dataclass(frozen=True)
class LogNormal10:
    """Base-10 log-normal: ``log10(X) ~ N(mu, sigma^2)`` — Eq (3).

    Following the paper, the density is expressed over ``u = log10(x)``;
    :meth:`pdf_log10` is the Gaussian of Eq (3) and is what gets compared to
    the measured PDFs, while :meth:`pdf_x` includes the change-of-variable
    Jacobian for callers that need a density over linear ``x``.
    """

    mu: float
    sigma: float

    def __post_init__(self) -> None:
        if self.sigma <= 0 or not np.isfinite(self.sigma):
            raise DistributionError(f"sigma must be positive, got {self.sigma}")
        if not np.isfinite(self.mu):
            raise DistributionError(f"mu must be finite, got {self.mu}")

    def _gaussian(self) -> Gaussian:
        return Gaussian(self.mu, self.sigma)

    def pdf_log10(self, u) -> np.ndarray:
        """Density over ``u = log10(x)`` — exactly Eq (3) of the paper."""
        return self._gaussian().pdf(u)

    def pdf_x(self, x) -> np.ndarray:
        """Density over linear ``x`` (includes the ``1/(x ln 10)`` Jacobian)."""
        x = np.asarray(x, dtype=float)
        if np.any(x <= 0):
            raise DistributionError("x must be strictly positive")
        return self._gaussian().pdf(np.log10(x)) / (x * np.log(10.0))

    def cdf_x(self, x) -> np.ndarray:
        """Cumulative probability ``P(X <= x)``."""
        x = np.asarray(x, dtype=float)
        if np.any(x <= 0):
            raise DistributionError("x must be strictly positive")
        return self._gaussian().cdf(np.log10(x))

    def ppf_x(self, q) -> np.ndarray:
        """Quantile of ``X`` at cumulative probability ``q``."""
        return 10.0 ** self._gaussian().ppf(q)

    def median_mb(self) -> float:
        """Median of ``X`` (``10**mu``)."""
        return float(10.0**self.mu)

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` variates of ``X``."""
        return 10.0 ** rng.normal(self.mu, self.sigma, size=size)


@dataclass(frozen=True)
class LogNormalMixture:
    """Weighted mixture of :class:`LogNormal10` components.

    This is the form of the final volume model, Eq (5): a main component of
    weight 1 plus up to three residual peaks of weights ``k_n``, normalized
    by ``1 + sum(k_n)``.  The class stores already-normalized weights.
    """

    components: tuple[LogNormal10, ...]
    weights: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.components) == 0:
            raise DistributionError("mixture needs at least one component")
        if len(self.components) != len(self.weights):
            raise DistributionError("components and weights must align")
        w = np.asarray(self.weights, dtype=float)
        if np.any(w < 0) or not np.all(np.isfinite(w)):
            raise DistributionError("weights must be non-negative and finite")
        if abs(w.sum() - 1.0) > 1e-9:
            raise DistributionError(f"weights must sum to 1, got {w.sum()}")

    @classmethod
    def from_unnormalized(
        cls, components: list[LogNormal10], raw_weights: list[float]
    ) -> "LogNormalMixture":
        """Build a mixture from raw weights, normalizing them to sum to 1."""
        w = np.asarray(raw_weights, dtype=float)
        if np.any(w < 0):
            raise DistributionError("weights must be non-negative")
        total = w.sum()
        if total <= 0:
            raise DistributionError("at least one weight must be positive")
        return cls(tuple(components), tuple(w / total))

    def pdf_log10(self, u) -> np.ndarray:
        """Mixture density over ``u = log10(x)``."""
        u = np.asarray(u, dtype=float)
        out = np.zeros_like(u)
        for comp, weight in zip(self.components, self.weights):
            out += weight * comp.pdf_log10(u)
        return out

    def sample(self, rng: np.random.Generator, size: int = 1) -> np.ndarray:
        """Draw ``size`` variates by component selection + log-normal draw."""
        idx = rng.choice(len(self.components), size=size, p=self.weights)
        u = np.empty(size)
        for i, comp in enumerate(self.components):
            mask = idx == i
            n = int(mask.sum())
            if n:
                u[mask] = rng.normal(comp.mu, comp.sigma, size=n)
        return 10.0**u
