"""Power-law model of the duration–volume relationship (Section 5.3).

The mean traffic volume of sessions of duration ``d`` follows
``v_s(d) = alpha_s * d**beta_s`` for every service, with exponents spanning
0.1–1.8 (Fig 10): ``beta > 1`` (video streaming) means throughput grows
with session duration, ``beta < 1`` (interactive services) means longer
sessions are progressively thinner.  Fits use the in-house
Levenberg–Marquardt solver, as in the paper; residuals are taken on
``log10 v`` so the decades-wide dynamic range of volumes does not let a few
long sessions dominate the fit.

For the Section 5.3 ablation ("upon experimenting with polynomial,
exponential, and power laws we find that the latter yield the best quality
of fitting"), :func:`fit_family` also fits the two rejected families.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..analysis.metrics import r_squared
from ..dataset.aggregation import DurationVolumeCurve
from .fitting.levenberg_marquardt import FitError, fit_curve


class DurationModelError(ValueError):
    """Raised when a duration model cannot be fitted or used."""


@dataclass(frozen=True)
class PowerLawModel:
    """Fitted ``v(d) = alpha * d**beta`` with its goodness of fit.

    ``alpha`` is in MB (the mean volume of a 1-second session) and ``beta``
    dimensionless; ``r2`` is the coefficient of determination of the fit in
    log-space (the quantity printed on top of each bar in Fig 10).
    """

    alpha: float
    beta: float
    r2: float

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise DurationModelError("alpha must be positive")
        if not np.isfinite(self.beta):
            raise DurationModelError("beta must be finite")

    def predict_volume_mb(self, durations_s) -> np.ndarray:
        """Mean volume (MB) of sessions with the given durations."""
        durations_s = np.asarray(durations_s, dtype=float)
        if np.any(durations_s <= 0):
            raise DurationModelError("durations must be positive")
        return self.alpha * durations_s**self.beta

    def duration_for_volume_s(self, volumes_mb) -> np.ndarray:
        """Inverse map ``v^{-1}``: duration of a session of given volume.

        This is how Section 5.4 derives a session duration from a volume
        sampled out of ``F~_s(x)``.
        """
        volumes_mb = np.asarray(volumes_mb, dtype=float)
        if np.any(volumes_mb <= 0):
            raise DurationModelError("volumes must be positive")
        return (volumes_mb / self.alpha) ** (1.0 / self.beta)

    def throughput_mbps(self, durations_s) -> np.ndarray:
        """Mean throughput of sessions of the given durations (Mbit/s):
        ``8 * alpha * d**(beta-1)`` — constant iff ``beta == 1``."""
        durations_s = np.asarray(durations_s, dtype=float)
        return 8.0 * self.predict_volume_mb(durations_s) / durations_s

    @property
    def is_super_linear(self) -> bool:
        """True when throughput increases with session duration."""
        return self.beta > 1.0

    def to_dict(self) -> dict:
        """JSON-serializable parameters ``[alpha, beta]`` (+ fit quality)."""
        return {"alpha": self.alpha, "beta": self.beta, "r2": self.r2}

    @classmethod
    def from_dict(cls, payload: dict) -> "PowerLawModel":
        """Inverse of :meth:`to_dict`."""
        try:
            return cls(
                float(payload["alpha"]),
                float(payload["beta"]),
                float(payload.get("r2", float("nan"))),
            )
        except (KeyError, TypeError) as exc:
            raise DurationModelError(f"malformed power-law payload: {exc}") from exc


def _observed_log_points(
    curve: DurationVolumeCurve,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    durations, volumes, counts = curve.observed()
    ok = volumes > 0
    if ok.sum() < 3:
        raise DurationModelError("need at least 3 observed duration bins")
    return (
        np.log10(durations[ok]),
        np.log10(volumes[ok]),
        counts[ok],
    )


def fit_power_law(curve: DurationVolumeCurve) -> PowerLawModel:
    """Fit ``{alpha, beta}`` to a duration–volume curve with LM.

    A weighted linear regression in log-log space seeds the LM refinement;
    weights are the per-bin session counts, so sparsely observed duration
    bins (often noisy, per Section 5.4) contribute less.
    """
    log_d, log_v, counts = _observed_log_points(curve)

    # Seed: weighted least squares on log10 v = log10 alpha + beta log10 d.
    weights = counts / counts.sum()
    d_mean = float(np.sum(weights * log_d))
    v_mean = float(np.sum(weights * log_v))
    var_d = float(np.sum(weights * (log_d - d_mean) ** 2))
    if var_d <= 0:
        raise DurationModelError("duration bins are degenerate")
    beta0 = float(np.sum(weights * (log_d - d_mean) * (log_v - v_mean)) / var_d)
    log_alpha0 = v_mean - beta0 * d_mean

    def model(x: np.ndarray, log_alpha: float, beta: float) -> np.ndarray:
        return log_alpha + beta * x

    try:
        result = fit_curve(
            model, log_d, log_v, p0=[log_alpha0, beta0], weights=counts
        )
        log_alpha, beta = result.params
    except FitError:
        log_alpha, beta = log_alpha0, beta0

    predicted = model(log_d, log_alpha, beta)
    return PowerLawModel(
        alpha=float(10.0**log_alpha),
        beta=float(beta),
        r2=r_squared(log_v, predicted),
    )


class FitFamily(enum.Enum):
    """Model families compared in the Section 5.3 ablation."""

    POWER = "power"
    EXPONENTIAL = "exponential"
    POLYNOMIAL = "polynomial"


@dataclass(frozen=True)
class FamilyFit:
    """Result of fitting one family: its parameters and log-space R^2."""

    family: FitFamily
    params: tuple[float, ...]
    r2: float


def fit_family(curve: DurationVolumeCurve, family: FitFamily) -> FamilyFit:
    """Fit one of the candidate families to a duration–volume curve.

    All families are fitted and scored on ``log10 v`` against ``log10 d``
    so their R^2 values are directly comparable:

    * POWER: ``log v = log alpha + beta log d`` (2 parameters);
    * EXPONENTIAL: ``v = a * exp(b d)`` i.e.
      ``log v = log a + b d / ln 10`` (2 parameters);
    * POLYNOMIAL: quadratic in ``d`` on ``log v`` (3 parameters).
    """
    log_d, log_v, counts = _observed_log_points(curve)
    d = 10.0**log_d

    if family is FitFamily.POWER:
        model = fit_power_law(curve)
        return FamilyFit(family, (model.alpha, model.beta), model.r2)

    if family is FitFamily.EXPONENTIAL:

        def exp_model(x: np.ndarray, log_a: float, b: float) -> np.ndarray:
            return log_a + b * x / np.log(10.0)

        p0 = [float(log_v.mean()), 1e-4]
        result = fit_curve(exp_model, d, log_v, p0=p0, weights=counts)
        predicted = exp_model(d, *result.params)
        return FamilyFit(
            family, tuple(float(p) for p in result.params), r_squared(log_v, predicted)
        )

    if family is FitFamily.POLYNOMIAL:
        # Weighted quadratic least squares of log v on d (closed form).
        weights = counts / counts.sum()
        design = np.vander(d, 3, increasing=True)
        weighted = design * weights[:, None]
        coeffs, *_ = np.linalg.lstsq(
            weighted.T @ design, weighted.T @ log_v, rcond=None
        )
        predicted = design @ coeffs
        return FamilyFit(
            family, tuple(float(c) for c in coeffs), r_squared(log_v, predicted)
        )

    raise DurationModelError(f"unknown family {family!r}")
