"""The paper's contribution: session-level traffic models (Section 5)."""

from .arrivals import (
    ArrivalModel,
    arrival_count_pmf,
    arrival_fit_error,
    fit_arrival_model,
    fit_arrival_model_from_days,
    fit_decile_arrival_models,
)
from .distributions import Gaussian, LogNormal10, LogNormalMixture, Pareto
from .drift import DriftReport, ServiceDrift, compare_banks
from .duration_model import FitFamily, PowerLawModel, fit_family, fit_power_law
from .generator import (
    BatchSampler,
    CampaignChunk,
    CampaignManifest,
    GenerationResult,
    TrafficGenerator,
    generate_campaign_reference,
)
from .model_bank import ModelBank
from .packet_bridge import PacketSchedule, packetize_service_session, packetize_session
from .residuals import ResidualPeak, find_residual_peaks
from .service_mix import ServiceMix
from .service_model import SessionLevelModel, fit_service_model
from .volume_model import VolumeModel, decompose_volume_pdf, fit_volume_model

__all__ = [
    "ArrivalModel",
    "BatchSampler",
    "CampaignChunk",
    "CampaignManifest",
    "FitFamily",
    "DriftReport",
    "GenerationResult",
    "Gaussian",
    "LogNormal10",
    "LogNormalMixture",
    "ModelBank",
    "PacketSchedule",
    "Pareto",
    "PowerLawModel",
    "ResidualPeak",
    "ServiceDrift",
    "ServiceMix",
    "SessionLevelModel",
    "TrafficGenerator",
    "VolumeModel",
    "arrival_count_pmf",
    "arrival_fit_error",
    "compare_banks",
    "decompose_volume_pdf",
    "find_residual_peaks",
    "fit_arrival_model",
    "fit_arrival_model_from_days",
    "fit_decile_arrival_models",
    "fit_family",
    "fit_power_law",
    "fit_service_model",
    "fit_volume_model",
    "generate_campaign_reference",
    "packetize_service_session",
    "packetize_session",
]
