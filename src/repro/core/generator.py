"""Model-driven session traffic generator.

This is the "consumer side" of the library: given fitted arrival models,
a service mix and a :class:`~repro.core.model_bank.ModelBank`, it produces
synthetic :class:`~repro.dataset.records.SessionTable` campaigns with the
same schema the measurement substrate produces — so any analysis, use case
or network simulator can run interchangeably on measured or generated
traffic.  This interchangeability is exactly what the paper's use cases
(Section 6) exploit.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.records import SessionTable
from .arrivals import ArrivalModel
from .model_bank import ModelBank
from .service_mix import ServiceMix


class GeneratorError(ValueError):
    """Raised on inconsistent generator configuration."""


@dataclass(frozen=True)
class GeneratedDay:
    """Sessions generated for one BS over one day."""

    table: SessionTable
    minute_counts: np.ndarray


class TrafficGenerator:
    """Generates session-level traffic for a set of BSs.

    Parameters
    ----------
    arrival_models:
        One fitted :class:`ArrivalModel` per generated BS, keyed by the
        BS identifier the output table will carry.
    mix:
        Categorical service mix of new sessions (Section 5.1 breakdown).
    bank:
        Fitted per-service models providing volumes and durations.
    """

    def __init__(
        self,
        arrival_models: dict[int, ArrivalModel],
        mix: ServiceMix,
        bank: ModelBank,
    ):
        if not arrival_models:
            raise GeneratorError("need at least one BS arrival model")
        self._check_mix_covered(mix, bank)
        self.arrival_models = dict(arrival_models)
        self.mix = mix
        self.bank = bank

    @staticmethod
    def _check_mix_covered(mix: ServiceMix, bank: ModelBank) -> None:
        from ..dataset.records import SERVICE_NAMES

        probs = mix.probabilities()
        uncovered = [
            SERVICE_NAMES[i]
            for i, p in enumerate(probs)
            if p > 0 and SERVICE_NAMES[i] not in bank
        ]
        if uncovered:
            raise GeneratorError(
                f"mix emits services without fitted models: {uncovered}"
            )

    # ------------------------------------------------------------------
    def generate_bs_day(
        self, bs_id: int, day: int, rng: np.random.Generator
    ) -> GeneratedDay:
        """Generate one day of sessions at one BS."""
        try:
            arrivals = self.arrival_models[bs_id]
        except KeyError:
            raise GeneratorError(f"no arrival model for BS {bs_id}") from None
        minute_counts = arrivals.sample_day(rng)
        n = int(minute_counts.sum())
        if n == 0:
            return GeneratedDay(SessionTable.empty(), minute_counts)

        start_minute = np.repeat(np.arange(1440), minute_counts)
        service_idx, volumes, durations = self.bank.sample_mixed_sessions(
            self.mix, rng, n
        )
        table = SessionTable(
            service_idx=service_idx,
            bs_id=np.full(n, bs_id),
            day=np.full(n, day),
            start_minute=start_minute,
            duration_s=durations,
            volume_mb=volumes,
            truncated=np.zeros(n, dtype=bool),
        )
        return GeneratedDay(table, minute_counts)

    def generate_campaign(
        self, n_days: int, rng: np.random.Generator
    ) -> SessionTable:
        """Generate ``n_days`` of sessions over every configured BS."""
        if n_days < 1:
            raise GeneratorError("n_days must be >= 1")
        pieces = [
            self.generate_bs_day(bs_id, day, rng).table
            for day in range(n_days)
            for bs_id in self.arrival_models
        ]
        return SessionTable.concatenate(pieces)
