"""Model-driven session traffic generator — the fused arena engine.

This is the "consumer side" of the library: given fitted arrival models,
a service mix and a :class:`~repro.core.model_bank.ModelBank`, it produces
synthetic :class:`~repro.dataset.records.SessionTable` campaigns with the
same schema the measurement substrate produces — so any analysis, use case
or network simulator can run interchangeably on measured or generated
traffic.  This interchangeability is exactly what the paper's use cases
(Section 6) exploit.

The engine mirrors the simulator's run architecture:

* **Per-(day, BS) seed streams** — every work unit draws from its own
  ``np.random.SeedSequence`` stream derived from the root seed and the
  unit's identity alone (:func:`unit_seed`), so the campaign is
  bit-identical for any unit order, chunking, or worker count.  Unit
  streams run on the SFC64 bit generator (:func:`unit_rng`), whose raw
  float32 fill is ~1.8x faster than PCG64 — the uniform draw is the
  engine's second-largest cost.  The historical single-shared-RNG loop
  (kept as :func:`generate_campaign_reference`) silently depended on dict
  iteration order and could never match a parallel run.
* **Fused one-pass sampling** — each session consumes exactly ONE float32
  uniform.  Its top 14 bits select a bucket of the flattened (service,
  mixture-component) cell CDF: buckets lying fully inside one cell
  resolve service and component with a single table gather, and the low
  10 bits pick a quantized-normal z-bin whose volume and duration are
  precomputed per cell (:class:`FusedTables`).  The small remainder —
  buckets straddling a cell boundary, plus the two extreme z-bins, where
  tail fidelity matters — takes an exact float64 inverse-CDF path.
  Arrivals, bodies and day-boundary truncation all happen in one tiled
  pass writing straight into caller-provided
  :class:`~repro.dataset.records.SessionArena` slices: no per-chunk
  temporaries, allocations amortized to zero.
* **Arena-backed chunked output** —
  :meth:`TrafficGenerator.iter_campaign_chunks` partitions the campaign
  into chunks of a configurable expected session count and reuses one
  arena across all of them, and :meth:`TrafficGenerator.spool_campaign`
  streams those chunks through the artifact cache (optionally as raw
  memmap-loadable segments), so peak memory stays bounded at 45-day ×
  thousands-of-BS scale.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ..dataset.records import SERVICE_NAMES, SessionArena, SessionTable
from ..pipeline.context import coerce_root_seed, stream_seed
from ..pipeline.executors import ParallelExecutor, SerialExecutor, make_executor
from .arrivals import ArrivalModel
from .model_bank import ModelBank
from .service_mix import ServiceMix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..io.cache import ArtifactCache
    from ..obs.telemetry import Telemetry

#: Stream label of per-(day, BS) generation RNGs (see :func:`unit_seed`).
UNIT_STREAM = "generate"

#: Seconds in one generated day; sessions whose sampled duration crosses
#: this boundary are flagged ``truncated`` (the paper's transient-session
#: semantics, Section 4.3).
SECONDS_PER_DAY = 86400.0

#: Default expected-sessions budget of one output chunk.
DEFAULT_CHUNK_SESSIONS = 1_000_000

#: (day, BS) units synthesized together in one executor work item; bounds
#: both the pickling payload per task and the transient batch arrays.
BLOCK_UNITS = 16

#: Cache artifact family of spooled campaign chunks.
GENERATED_KIND = "generated"

#: Minute-of-day index reused by every unit's ``np.repeat`` expansion.
_MINUTE_INDEX = np.arange(MINUTES_PER_DAY, dtype=np.int16)

#: ln(10) — volumes/durations are modeled in log10 space but evaluated via
#: the (faster) natural ``exp``.
_LN10 = float(np.log(10.0))

#: Buckets of the inverse-CDF lookup table accelerating cell resolution.
#: 2**16 buckets keep the table L2-resident while leaving at most a couple
#: of CDF boundaries per bucket for realistic cell counts.
_LUT_BUCKETS = 1 << 16

#: Fused-kernel uniform split: the 24 random bits of one float32 uniform
#: are ``(bucket << _ZB_BITS) | z-bin``.  2**14 cell-CDF buckets keep the
#: per-bucket tables L2-resident while leaving only a tiny mixed-bucket
#: fraction; 2**10 z-bins quantize the standard normal finely enough that
#: only the two extreme bins need the exact tail path.
_NB_BITS = 14
_ZB_BITS = 10
_NB = 1 << _NB_BITS
_ZB = 1 << _ZB_BITS

#: float32 scale mapping a uniform to its 24-bit integer (exact: numpy's
#: float32 uniforms are ``k * 2**-24``, so scaling by ``2**24`` only
#: shifts the exponent).
_KSCALE = np.float32(1 << (_NB_BITS + _ZB_BITS))

#: Sessions processed per fused-kernel tile — sized so one tile's scratch
#: stays cache-resident (the full-array form is memory-bandwidth bound
#: and measurably slower).
_TILE = 1 << 17

#: Clip range of the exact path's conditional quantile: the floor is the
#: float32 uniform granularity scaled into a narrow cell, the ceiling the
#: largest double below 1.0 — both keep :func:`_ndtri` finite.
_V_FLOOR = 2.0 ** -33
_V_CEIL = 1.0 - 2.0 ** -53


class GeneratorError(ValueError):
    """Raised on inconsistent generator configuration."""


@dataclass(frozen=True)
class GeneratedDay:
    """Sessions generated for one BS over one day."""

    table: SessionTable
    minute_counts: np.ndarray


def unit_seed(
    root_seed: int, day: int, bs_id: int
) -> np.random.SeedSequence:
    """Seed sequence of one (day, BS) generation work unit.

    Derived from the root seed and the unit's identity alone — the same
    spawn-key scheme :class:`~repro.pipeline.context.RunContext` uses — so
    the unit's sessions are reproducible no matter where, in what order, or
    in which chunk the unit runs.
    """
    key = (int(root_seed), int(day), int(bs_id))
    seq = _SEED_CACHE.get(key)
    if seq is None:
        if len(_SEED_CACHE) >= 1 << 16:
            # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; value is a pure function of the key
            _SEED_CACHE.clear()
        seq = stream_seed(root_seed, UNIT_STREAM, day, bs_id)
        # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; value is a pure function of the key
        _SEED_CACHE[key] = seq
    return seq


#: Per-process memo of unit seed sequences — ``SeedSequence`` construction
#: costs tens of microseconds, which at one per (day, BS) unit is visible
#: next to the fused kernel; sequences are immutable and reusable.
_SEED_CACHE: dict[tuple[int, int, int], np.random.SeedSequence] = {}


def unit_rng(root_seed: int, day: int, bs_id: int) -> np.random.Generator:
    """The RNG of one (day, BS) generation work unit.

    Part of the engine's reproducibility contract: a unit regenerated
    standalone through this helper matches its slice of any campaign bit
    for bit.  Runs SFC64 over :func:`unit_seed` — not the ``default_rng``
    PCG64 — because the fused kernel consumes one float32 uniform per
    session and SFC64 fills float32 arrays ~1.8x faster; streams of
    different units stay independent through the seed sequence exactly as
    before.
    """
    return np.random.Generator(
        np.random.SFC64(unit_seed(root_seed, day, bs_id))
    )


#: Per-process memo of initial SFC64 states, keyed like :data:`_SEED_CACHE`.
#: A state is a pure function of the key; the setter of
#: ``BitGenerator.state`` copies values in, so cached dicts never mutate.
_SFC_STATE_CACHE: dict[tuple[int, int, int], dict] = {}


def clear_unit_memos() -> None:
    """Drop the per-process unit seed/state memos.

    The memos are content-keyed pure functions of ``(root_seed, day,
    bs_id)`` and only pay off when the same unit is generated *again* in
    this process — repeated benchmark passes, regenerated spool chunks.
    A one-pass campaign never revisits a unit, so every entry is dead
    weight (~1 KB/unit, up to the 2^16 cap): long-lived campaign workers
    call this between shards to keep resident memory bounded by the
    shard, not by the number of units ever generated.  Clearing is
    always safe — it costs recomputation, never determinism.
    """
    # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; clearing only costs recomputation
    _SEED_CACHE.clear()
    # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; clearing only costs recomputation
    _SFC_STATE_CACHE.clear()


def _unit_generator(
    root_seed: int, day: int, bs_id: int
) -> np.random.Generator:
    """Process-shared ``Generator`` rewound to one unit's initial state.

    Draw-for-draw identical to a fresh :func:`unit_rng` generator — SFC64
    output is fully determined by its state — but skips the per-unit
    ``Generator``/``SFC64`` construction, which is measurable at one unit
    per (day, BS).  The returned generator is shared: it is only valid
    until the next ``_unit_generator`` call in this process, so callers
    must finish the unit's draws before starting the next unit (the
    canonical per-unit draw order already guarantees this).
    """
    shared = _WORKER_STATE.get("unit_gen")
    if shared is None:
        bitgen = np.random.SFC64(0)
        shared = (np.random.Generator(bitgen), bitgen)
        # repro-lint: disable-next-line=P204 -- per-process generator reuse; state is rewound before every use
        _WORKER_STATE["unit_gen"] = shared
    gen, bitgen = shared
    key = (int(root_seed), int(day), int(bs_id))
    state = _SFC_STATE_CACHE.get(key)
    if state is None:
        if len(_SFC_STATE_CACHE) >= 1 << 16:
            # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; value is a pure function of the key
            _SFC_STATE_CACHE.clear()
        state = np.random.SFC64(unit_seed(root_seed, day, bs_id)).state
        # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; value is a pure function of the key
        _SFC_STATE_CACHE[key] = state
    bitgen.state = state
    return gen


def _ndtri(p: np.ndarray) -> np.ndarray:
    """Inverse standard-normal CDF (Acklam's rational approximation).

    Vectorized float64, relative error below 1.15e-9 over (0, 1) — ample
    for distribution-level contracts, and keeps the core free of a scipy
    dependency.  Inputs must lie strictly inside (0, 1).
    """
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    p = np.asarray(p, dtype=np.float64)
    out = np.empty_like(p)
    plow = 0.02425
    low = p < plow
    high = p > 1.0 - plow
    mid = ~(low | high)
    if mid.any():
        q = p[mid] - 0.5
        r = q * q
        num = ((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]
        den = ((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0
        out[mid] = q * num / den
    if low.any():
        q = np.sqrt(-2.0 * np.log(p[low]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        out[low] = num / den
    if high.any():
        q = np.sqrt(-2.0 * np.log(1.0 - p[high]))
        num = ((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]
        den = (((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0
        out[high] = -num / den
    return out


@dataclass(frozen=True)
class BatchSampler:
    """Flattened numpy tables of a (mix, bank) pair for single-pass sampling.

    The service mix and every per-service log-normal mixture component are
    unrolled into one global *cell* table: cell ``i`` is one (service,
    component) pair, carrying the component's volume parameters and the
    service's duration power law.  Its joint probability — the service's
    mix share times the component's mixture weight — becomes one interval
    of a single global CDF, so each session resolves service AND mixture
    component with one ``searchsorted`` over one uniform, followed by flat
    per-cell gathers.  This replaces the per-unique-service Python loop of
    :meth:`~repro.core.model_bank.ModelBank.sample_mixed_sessions` (and its
    nested per-component masking) with a handful of full-batch array ops.

    Cell boundaries that end a service are set to that service's exact
    cumulative mix probability, so the resolved service indices are
    bit-identical to :meth:`~repro.core.service_mix.ServiceMix.sample`
    draws from the same uniforms.  Zero-width cells — unmodelled or
    zero-probability services, zero-weight mixture components — are
    dropped outright: ``searchsorted(side='right')`` can never land on
    them, and a strictly increasing CDF keeps the lookup table's
    correction loop (see :meth:`cells_from_uniforms`) short.

    Attributes
    ----------
    mix_cdf:
        Cumulative service-mix probabilities in catalog order (float64).
    cell_cdf:
        Strictly increasing cumulative probability of the selectable
        (service, component) cells (float64, last entry exactly 1.0).
    cell_service:
        Catalog service index of each cell (int16).
    cell_mu / cell_sigma:
        Per-cell log10-volume parameters of Eq (5) (float32).
    cell_log10_alpha / cell_inv_beta:
        Per-cell duration power-law coefficients ``log10(alpha_s)`` and
        ``1/beta_s`` of the Section 5.3 inverse map (float32), pre-shaped
        so durations resolve as one log-space ``exp``.
    lut / lut_span:
        Per-bucket starting cell index over :data:`_LUT_BUCKETS` equal
        uniform intervals, and the maximum number of cell boundaries any
        bucket contains — together they turn the per-session binary search
        into one gather plus ``lut_span`` vectorized compare-and-bump
        passes, with results identical to ``searchsorted``.
    """

    mix_cdf: np.ndarray
    cell_cdf: np.ndarray
    cell_service: np.ndarray
    cell_mu: np.ndarray
    cell_sigma: np.ndarray
    cell_log10_alpha: np.ndarray
    cell_inv_beta: np.ndarray
    lut: np.ndarray
    lut_span: int

    @classmethod
    def from_models(cls, mix: ServiceMix, bank: ModelBank) -> "BatchSampler":
        """Flatten a service mix and model bank into the cell tables."""
        probs = mix.probabilities()
        if probs.sum() <= 0:
            raise GeneratorError("mix assigns zero total probability")
        # Normalize by the cumulative sum's own last entry — the exact
        # recipe of ``Generator.choice`` — so the final boundary is 1.0 to
        # the bit and service draws match ``ServiceMix.sample``.
        mix_cdf = probs.cumsum()
        mix_cdf /= mix_cdf[-1]

        cdf_parts: list[float] = []
        service_parts: list[int] = []
        mu_parts: list[float] = []
        sigma_parts: list[float] = []
        la_parts: list[float] = []
        ib_parts: list[float] = []
        lo = 0.0
        for idx, name in enumerate(SERVICE_NAMES):
            hi = float(mix_cdf[idx])
            if name in bank:
                model = bank.get(name)
                mixture = model.volume.as_mixture()
                weights = np.asarray(mixture.weights, dtype=float)
                comp_cdf = weights.cumsum()
                comp_cdf /= comp_cdf[-1]
                la = float(np.log10(model.duration.alpha))
                ib = 1.0 / model.duration.beta
                width = hi - lo
                last = len(mixture.components) - 1
                for j, component in enumerate(mixture.components):
                    # The service's closing cell lands exactly on its mix
                    # CDF value: service resolution stays bit-identical to
                    # a searchsorted over ``mix_cdf`` alone.
                    boundary = hi if j == last else lo + comp_cdf[j] * width
                    cdf_parts.append(boundary)
                    service_parts.append(idx)
                    mu_parts.append(component.mu)
                    sigma_parts.append(component.sigma)
                    la_parts.append(la)
                    ib_parts.append(ib)
            lo = hi
        cell_cdf = np.asarray(cdf_parts, dtype=np.float64)
        # Drop zero-width cells (duplicate boundaries): side='right' skips
        # past them, so the owner of each interval — the FIRST cell of any
        # duplicate run — is the one that stays selectable.
        keep = cell_cdf > np.concatenate(([0.0], cell_cdf[:-1]))
        cell_cdf = cell_cdf[keep]
        if len(cell_cdf) == 0 or cell_cdf[-1] != 1.0:
            raise GeneratorError(
                "mix probability mass is not carried by modelled services"
            )
        pick = np.flatnonzero(keep)

        edges = np.arange(_LUT_BUCKETS, dtype=np.float64) / _LUT_BUCKETS
        lut_lo = cell_cdf.searchsorted(edges, side="right")
        lut_hi = cell_cdf.searchsorted(edges + 1.0 / _LUT_BUCKETS, side="left")
        # One trailing duplicate bucket: ``u * BUCKETS`` can round up to
        # exactly BUCKETS for u just below 1.0, and the correction loop
        # only moves forward, so that bucket must start low and bump.
        lut = np.concatenate((lut_lo, lut_lo[-1:])).astype(np.intp)
        return cls(
            mix_cdf=mix_cdf,
            cell_cdf=cell_cdf,
            cell_service=np.asarray(service_parts, dtype=np.int16)[pick],
            cell_mu=np.asarray(mu_parts, dtype=np.float32)[pick],
            cell_sigma=np.asarray(sigma_parts, dtype=np.float32)[pick],
            cell_log10_alpha=np.asarray(la_parts, dtype=np.float32)[pick],
            cell_inv_beta=np.asarray(ib_parts, dtype=np.float32)[pick],
            lut=lut,
            lut_span=int((lut_hi - lut_lo).max()),
        )

    def cells_from_uniforms(self, u: np.ndarray) -> np.ndarray:
        """Resolve uniforms to (service, component) cell indices.

        Inverse-CDF sampling over the global cell CDF — identical results
        to ``cell_cdf.searchsorted(u, side='right')`` — picks both the
        service and its mixture component in one pass.  The per-session
        binary search is replaced by a bucket lookup plus ``lut_span``
        (typically one) vectorized compare-and-bump passes: each pass
        advances exactly the sessions whose uniform still sits at or above
        their candidate cell's boundary, which is the linear tail of the
        search the bucket already localized.  A uniform strictly below 1.0
        always lands on a valid cell because the CDF ends at exactly 1.0.
        """
        idx = self.lut.take((u * _LUT_BUCKETS).astype(np.intp))
        cdf = self.cell_cdf
        bump = cdf.take(idx) <= u
        idx += bump
        # Only a session that just advanced can need advancing again, and
        # only past boundaries sharing its bucket — a vanishing fraction —
        # so later passes run on the shrinking active subset.
        if self.lut_span > 1:
            active = np.flatnonzero(bump)
            for _ in range(self.lut_span - 1):
                if active.size == 0:
                    break
                bump = cdf.take(idx.take(active)) <= u.take(active)
                idx[active] += bump
                active = active[bump]
        return idx

    def services_of_cells(self, cells: np.ndarray) -> np.ndarray:
        """Catalog service index (int16) of each resolved cell."""
        return self.cell_service.take(cells)

    def services_from_uniforms(self, u_service: np.ndarray) -> np.ndarray:
        """Resolve service uniforms to catalog indices by inverse CDF.

        ``Generator.choice`` with probabilities is inverse-CDF sampling
        over ``rng.random``; resolving through the cell table reproduces
        those draws exactly (the cells refine the service CDF without
        moving its boundaries) while skipping the per-call probability
        validation.
        """
        return self.services_of_cells(self.cells_from_uniforms(u_service))

    def sample_services(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw ``size`` service indices, matching ``ServiceMix.sample``."""
        return self.services_from_uniforms(rng.random(size))

    def sample_bodies(
        self, cells: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Volumes (MB) and durations (s) from resolved cells and normals.

        ``z`` is each session's standard-normal log10-volume draw (float32
        precision — the draws feed distributions, not reproducibility
        contracts with the legacy path).  Volumes and durations both
        resolve as single float32 log-space ``exp`` evaluations — the
        duration power law ``(v / alpha) ** (1 / beta)`` collapses to
        ``exp(ln10 * (log10 v - log10 alpha) / beta)`` — matching the
        per-session distribution of sampling each service's model
        separately.  Durations are clipped to one second, as in
        :meth:`~repro.core.service_model.SessionLevelModel.sample_sessions`.
        """
        ln10 = np.float32(_LN10)
        log10_volume = self.cell_sigma.take(cells)
        log10_volume *= z.astype(np.float32, copy=False)
        log10_volume += self.cell_mu.take(cells)
        durations = log10_volume - self.cell_log10_alpha.take(cells)
        durations *= self.cell_inv_beta.take(cells)
        durations *= ln10
        np.exp(durations, out=durations)
        np.maximum(durations, np.float32(1.0), out=durations)
        volumes = log10_volume
        volumes *= ln10
        np.exp(volumes, out=volumes)
        return volumes, durations


# ----------------------------------------------------------------------
# Fused one-uniform kernel
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FusedTables:
    """Per-process derived tables of the fused one-uniform kernel.

    Built once per :class:`BatchSampler` content (see
    :func:`fused_tables`), never pickled — each worker process derives its
    own copy from the sampler it receives.

    Attributes
    ----------
    base / svcb:
        Per-bucket payload-row offset (``cell * 2**10``, int32) and
        service index (int16) of the :data:`_NB` uniform buckets; mixed
        buckets — those straddling a cell boundary — point at the NaN
        sentinel payload row and are resolved on the exact path.
    pay:
        Raveled ``(cell + 1, z-bin)`` complex64 payload table — volume in
        the real half, duration in the imaginary half — evaluated at the
        z-bin's midpoint quantile (durations with the one-second floor
        baked in).  Packing both under one index means one random memory
        access per session instead of two, which is the kernel's dominant
        cost.  The extra row and the two extreme z-bin columns have NaN
        volumes so the kernel detects every exact-path session with a
        single ``isnan`` pass.
    cdf64 / lo64 / w64:
        The cell CDF (last entry forced to exactly 1.0) and each cell's
        lower edge and width, float64 — the exact path's inputs.
    mu64 / sg64 / la64 / ib64 / svc16:
        Per-cell model parameters in float64 (cast from the sampler's
        float32 cells, so both paths share identical parameters) plus the
        int16 service index.
    """

    base: np.ndarray
    svcb: np.ndarray
    pay: np.ndarray
    cdf64: np.ndarray
    lo64: np.ndarray
    w64: np.ndarray
    mu64: np.ndarray
    sg64: np.ndarray
    la64: np.ndarray
    ib64: np.ndarray
    svc16: np.ndarray


def _build_fused_tables(sampler: BatchSampler) -> FusedTables:
    """Derive the fused-kernel tables from one sampler's cell tables."""
    cdf64 = sampler.cell_cdf.astype(np.float64, copy=True)
    cdf64[-1] = 1.0
    n_cells = cdf64.shape[0]
    lo64 = np.concatenate(([0.0], cdf64[:-1]))
    w64 = cdf64 - lo64
    mu64 = sampler.cell_mu.astype(np.float64)
    sg64 = sampler.cell_sigma.astype(np.float64)
    la64 = sampler.cell_log10_alpha.astype(np.float64)
    ib64 = sampler.cell_inv_beta.astype(np.float64)

    edges = np.arange(_NB + 1, dtype=np.float64) / _NB
    cell_at = np.minimum(
        cdf64.searchsorted(edges[:-1], side="right"), n_cells - 1
    )
    # A bucket is *pure* when its whole uniform interval maps to one cell
    # under the exact float64 searchsorted — so the fast path and the
    # exact path can never disagree on a pure bucket.
    pure = (lo64[cell_at] <= edges[:-1]) & (cdf64[cell_at] >= edges[1:])
    base = (np.where(pure, cell_at, n_cells) << _ZB_BITS).astype(np.int32)
    svcb = np.where(pure, sampler.cell_service[cell_at], -1).astype(np.int16)

    # Payload tables: volume/duration at each z-bin's midpoint quantile.
    # The low 10 uniform bits are independent of the bucket under the
    # target distribution, so they act as the session's (quantized)
    # standard-normal draw.
    qz = (np.arange(_ZB, dtype=np.float64) + 0.5) / _ZB
    zmid = _ndtri(qz)
    log10_v = mu64[:, None] + sg64[:, None] * zmid[None, :]
    volt = np.empty((n_cells + 1, _ZB), dtype=np.float32)
    volt[:-1] = np.exp(_LN10 * log10_v)
    durt64 = np.exp(_LN10 * (log10_v - la64[:, None]) * ib64[:, None])
    np.maximum(durt64, 1.0, out=durt64)
    durt = np.empty((n_cells + 1, _ZB), dtype=np.float32)
    durt[:-1] = durt64
    durt[-1] = 1.0
    # NaN poison: the sentinel row (mixed buckets) and the two extreme
    # z-bin columns are exactly the sessions the exact path must resolve,
    # so the kernel's fix-mask collapses to one isnan pass over volumes.
    volt[-1] = np.nan
    volt[:, 0] = np.nan
    volt[:, _ZB - 1] = np.nan
    pay = np.empty((n_cells + 1) * _ZB, dtype=np.complex64)
    pay.real = volt.ravel()
    pay.imag = durt.ravel()
    return FusedTables(
        base=base, svcb=svcb, pay=pay,
        cdf64=cdf64, lo64=lo64, w64=w64,
        mu64=mu64, sg64=sg64, la64=la64, ib64=ib64,
        svc16=sampler.cell_service,
    )


#: Per-process cache of derived kernel tables, keyed by sampler content —
#: workers receive freshly unpickled samplers per map call, so
#: identity-based caching would rebuild the tables for every block.
_FUSED_CACHE: dict[bytes, FusedTables] = {}


def fused_tables(sampler: BatchSampler) -> FusedTables:
    """The (per-process cached) fused kernel tables of one sampler."""
    digest = hashlib.sha1()
    for array in (
        sampler.cell_cdf, sampler.cell_service, sampler.cell_mu,
        sampler.cell_sigma, sampler.cell_log10_alpha, sampler.cell_inv_beta,
    ):
        digest.update(array.tobytes())
    key = digest.digest()
    tables = _FUSED_CACHE.get(key)
    if tables is None:
        if len(_FUSED_CACHE) >= 8:
            # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; value is a pure function of the key
            _FUSED_CACHE.clear()
        tables = _build_fused_tables(sampler)
        # repro-lint: disable-next-line=P204 -- content-keyed per-process memo; value is a pure function of the key
        _FUSED_CACHE[key] = tables
    return tables


#: Per-process reusable state: the kernel's tile scratch, this process's
#: block arena (parallel workers), and the per-block uniform buffer.
#: Never pickled; each process grows its own lazily and reuses it forever.
_WORKER_STATE: dict[str, object] = {}


def _scratch() -> dict[str, np.ndarray]:
    """Tile-sized kernel scratch buffers of this process."""
    scratch = _WORKER_STATE.get("scratch")
    if scratch is None:
        scratch = {
            "tt": np.empty(_TILE, dtype=np.float32),
            "kk": np.empty(_TILE, dtype=np.int32),
            "ii": np.empty(_TILE, dtype=np.int32),
            "jj": np.empty(_TILE, dtype=np.int32),
            "bb": np.empty(_TILE, dtype=np.int32),
            "cc": np.empty(_TILE, dtype=np.complex64),
            "ff": np.empty(_TILE, dtype=np.float32),
            "m1": np.empty(_TILE, dtype=bool),
        }
        # repro-lint: disable-next-line=P204 -- per-process scratch reuse; contents are overwritten before every read
        _WORKER_STATE["scratch"] = scratch
    return scratch


def _worker_arena() -> SessionArena:
    """This process's reusable block arena (parallel fan-out path)."""
    arena = _WORKER_STATE.get("arena")
    if arena is None:
        arena = SessionArena(capacity=1 << 16)
        # repro-lint: disable-next-line=P204 -- per-process arena reuse; every block resets it before writing
        _WORKER_STATE["arena"] = arena
    return arena


def _uniform_buffer(filled: int, extra: int) -> np.ndarray:
    """Grow-preserving per-process uniform buffer for ``filled + extra``."""
    buf = _WORKER_STATE.get("ubuf")
    needed = filled + extra
    if buf is None:
        buf = np.empty(max(needed, 1 << 17), dtype=np.float32)
        # repro-lint: disable-next-line=P204 -- per-process buffer reuse; filled per block before the kernel reads it
        _WORKER_STATE["ubuf"] = buf
    elif buf.shape[0] < needed:
        grown = np.empty(max(needed, buf.shape[0] * 2), dtype=np.float32)
        grown[:filled] = buf[:filled]
        # repro-lint: disable-next-line=P204 -- per-process buffer reuse; filled per block before the kernel reads it
        _WORKER_STATE["ubuf"] = buf = grown
    return buf


def _exact_fix(
    tables: FusedTables,
    u_tile: np.ndarray,
    fix: np.ndarray,
    sv_tile: np.ndarray,
    vol_tile: np.ndarray,
    dur_tile: np.ndarray,
) -> None:
    """Exact float64 inverse-CDF resolution of the kernel's residual rows.

    Covers sessions in mixed buckets (cell ambiguous on the fast path) and
    the two extreme z-bins of pure buckets (where the quantized normal
    would flatten the distribution tails).  The conditional quantile
    within the resolved cell feeds :func:`_ndtri` directly, so the tails
    keep full float64 resolution.
    """
    uu = u_tile[fix].astype(np.float64)
    cells = tables.cdf64.searchsorted(uu, side="right")
    sv_tile[fix] = tables.svc16[cells]
    v = (uu - tables.lo64[cells]) / tables.w64[cells]
    np.clip(v, _V_FLOOR, _V_CEIL, out=v)
    log10_v = tables.mu64[cells] + tables.sg64[cells] * _ndtri(v)
    vol_tile[fix] = np.exp(_LN10 * log10_v)
    dur = np.exp(_LN10 * (log10_v - tables.la64[cells]) * tables.ib64[cells])
    np.maximum(dur, 1.0, out=dur)
    dur_tile[fix] = dur


def _fused_body_kernel(
    tables: FusedTables,
    u: np.ndarray,
    minute: np.ndarray,
    sv: np.ndarray,
    dur: np.ndarray,
    vol: np.ndarray,
    trunc: np.ndarray,
) -> None:
    """One fused pass: uniforms → service, duration, volume, truncation.

    Consumes each session's single float32 uniform and writes the four
    sampled output columns in place (``sv``/``dur``/``vol``/``trunc`` are
    caller-provided slices, typically arena columns).  Runs tile by tile
    over preallocated scratch so every intermediate stays cache-resident;
    the residual exact-path rows (mixed buckets, extreme z-bins — a
    fraction of a percent) are fixed inside each tile before the
    truncation predicate runs.

    The truncation predicate ``dur > 86400 - 60 * minute`` is evaluated
    in float32 — exact, because ``86400 - 60 * minute`` is an integer
    below 2**17 and therefore exactly representable — matching the
    reference float64 predicate ``minute * 60.0 + dur > 86400.0`` bit for
    bit.
    """
    scratch = _scratch()
    n = u.shape[0]
    zb_mask = _ZB - 1
    for lo in range(0, n, _TILE):
        hi = min(lo + _TILE, n)
        m = hi - lo
        tt = scratch["tt"][:m]
        kk = scratch["kk"][:m]
        ii = scratch["ii"][:m]
        jj = scratch["jj"][:m]
        bb = scratch["bb"][:m]
        cf = scratch["cc"][:m].view(np.float32)
        ff = scratch["ff"][:m]
        m1 = scratch["m1"][:m]
        sv_t = sv[lo:hi]
        vol_t = vol[lo:hi]
        dur_t = dur[lo:hi]

        np.multiply(u[lo:hi], _KSCALE, out=tt)
        kk[...] = tt  # exact truncating cast: tt is an integer < 2**24
        np.right_shift(kk, _ZB_BITS, out=ii)
        np.take(tables.svcb, ii, out=sv_t)
        np.take(tables.base, ii, out=bb)
        np.bitwise_and(kk, zb_mask, out=jj)
        np.add(bb, jj, out=bb)
        np.take(tables.pay, bb, out=scratch["cc"][:m])
        np.copyto(vol_t, cf[0::2])
        np.copyto(dur_t, cf[1::2])

        # The NaN-poisoned volume entries mark every exact-path session:
        # mixed buckets (sentinel payload row) and extreme z-bins.
        np.isnan(vol_t, out=m1)
        fix = np.flatnonzero(m1)
        if fix.size:
            _exact_fix(tables, u[lo:hi], fix, sv_t, vol_t, dur_t)

        ff[...] = minute[lo:hi]
        np.multiply(ff, np.float32(-60.0), out=ff)
        np.add(ff, np.float32(SECONDS_PER_DAY), out=ff)
        np.greater(dur_t, ff, out=trunc[lo:hi])


def _generate_block(
    item: tuple[
        BatchSampler,
        list[tuple[int, int, ArrivalModel]],
        int,
        SessionArena | None,
    ],
) -> tuple[np.ndarray, ...] | tuple[int, int] | None:
    """Executor work function: synthesize one block of (day, BS) units.

    Each unit draws from its own seed stream in the canonical order —
    arrival counts first, then one float32 uniform per session — and the
    fused kernel then resolves the whole block in one pass.

    With a shared ``arena`` (serial path), the block appends to it in
    place and returns its ``(lo, hi)`` row range — zero copies.  Without
    one (parallel path), the block fills this worker process's reusable
    arena and returns owning column copies: the pool pickles results and
    may batch several blocks per transfer, so views into the reused arena
    would alias each other.  Returns ``None`` for an all-empty block.
    """
    sampler, units, root_seed, arena = item
    shared = arena is not None
    if not shared:
        arena = _worker_arena()
        arena.reset()
    block_lo = len(arena)
    filled = 0
    for day, bs_id, arrival in units:
        rng = _unit_generator(root_seed, day, bs_id)
        counts = arrival.sample_day(rng)
        n = int(counts.sum())
        if n == 0:
            continue
        rows = arena.reserve(n)
        ubuf = _uniform_buffer(filled, n)
        rng.random(out=ubuf[filled : filled + n], dtype=np.float32)
        arena.column("bs_id")[rows] = bs_id
        arena.column("day")[rows] = day
        arena.column("start_minute")[rows] = np.repeat(_MINUTE_INDEX, counts)
        filled += n
    block_hi = len(arena)
    if block_hi == block_lo:
        return None
    _fused_body_kernel(
        fused_tables(sampler),
        _WORKER_STATE["ubuf"][:filled],
        arena.column("start_minute")[block_lo:block_hi],
        arena.column("service_idx")[block_lo:block_hi],
        arena.column("duration_s")[block_lo:block_hi],
        arena.column("volume_mb")[block_lo:block_hi],
        arena.column("truncated")[block_lo:block_hi],
    )
    if shared:
        return (block_lo, block_hi)
    return tuple(
        np.array(arena.column(name)[block_lo:block_hi])
        for name in SessionTable.COLUMNS
    )


@dataclass(frozen=True)
class CampaignChunk:
    """One memory-bounded piece of a generated campaign.

    Chunks arrive in canonical unit order; concatenating their tables
    yields exactly the unchunked campaign.  When the campaign runs over a
    caller-provided arena, ``table`` is a zero-copy view into it, valid
    until the next chunk is generated.
    """

    index: int
    n_chunks: int
    units: tuple[tuple[int, int], ...]
    table: SessionTable


@dataclass(frozen=True)
class CampaignManifest:
    """Index of a campaign spooled chunk-by-chunk into an artifact cache.

    Attributes
    ----------
    kind:
        Cache artifact family the chunks live under.
    chunk_keys:
        Content keys of the chunks, in canonical campaign order.
    n_sessions / total_volume_mb:
        Campaign-level totals accumulated while spooling.
    suffix:
        On-disk chunk format: ``".npz"`` (compressed archive) or the raw
        segment format of :mod:`repro.io.spool` (memmap spool).
    """

    kind: str
    chunk_keys: tuple[str, ...]
    n_sessions: int
    total_volume_mb: float
    suffix: str = ".npz"

    def _loader(self, memmap: bool = False):
        """Chunk loader callback matching this manifest's on-disk format."""
        from ..io.cache import load_table
        from ..io.spool import SEGMENT_SUFFIX, load_segment

        if self.suffix == SEGMENT_SUFFIX:
            return lambda path: load_segment(path, memmap=memmap)
        return load_table

    def iter_tables(
        self, cache: "ArtifactCache", *, memmap: bool = False
    ) -> Iterator[SessionTable]:
        """Yield each spooled chunk table in canonical campaign order.

        ``memmap=True`` (segment spools only) maps chunk columns straight
        from the cache files instead of reading them into fresh arrays.
        """
        loader = self._loader(memmap=memmap)
        for key in self.chunk_keys:
            yield cache.fetch(self.kind, key, self.suffix, loader)

    def load(self, cache: "ArtifactCache") -> SessionTable:
        """Materialize the full campaign (memory-unbounded: prefer
        :meth:`iter_tables` for large spools)."""
        return SessionTable.concatenate(list(self.iter_tables(cache)))


@dataclass(frozen=True)
class GenerationResult:
    """Summary of one campaign generation run (chunked or materialized).

    Attributes
    ----------
    n_sessions / total_volume_mb / n_chunks:
        Campaign totals, available even when the table was never
        materialized.
    chunk_keys:
        Content keys of the spooled chunks (empty when the run did not go
        through an artifact cache).
    table:
        The materialized campaign, or ``None`` for summary-only runs.
    """

    n_sessions: int
    total_volume_mb: float
    n_chunks: int
    chunk_keys: tuple[str, ...] = ()
    table: SessionTable | None = None


class TrafficGenerator:
    """Generates session-level traffic for a set of BSs.

    Parameters
    ----------
    arrival_models:
        One fitted :class:`ArrivalModel` per generated BS, keyed by the
        BS identifier the output table will carry.
    mix:
        Categorical service mix of new sessions (Section 5.1 breakdown).
    bank:
        Fitted per-service models providing volumes and durations.
    """

    def __init__(
        self,
        arrival_models: dict[int, ArrivalModel],
        mix: ServiceMix,
        bank: ModelBank,
    ):
        if not arrival_models:
            raise GeneratorError("need at least one BS arrival model")
        self._check_mix_covered(mix, bank)
        self.arrival_models = dict(arrival_models)
        self.mix = mix
        self.bank = bank
        self._sampler: BatchSampler | None = None
        self._expected_sessions: dict[int, float] = {}

    @staticmethod
    def _check_mix_covered(mix: ServiceMix, bank: ModelBank) -> None:
        probs = mix.probabilities()
        uncovered = [
            SERVICE_NAMES[i]
            for i, p in enumerate(probs)
            if p > 0 and SERVICE_NAMES[i] not in bank
        ]
        if uncovered:
            raise GeneratorError(
                f"mix emits services without fitted models: {uncovered}"
            )

    def sampler(self) -> BatchSampler:
        """The flattened sampling tables of this generator's models."""
        if self._sampler is None:
            self._sampler = BatchSampler.from_models(self.mix, self.bank)
        return self._sampler

    # ------------------------------------------------------------------
    # Per-unit generation
    # ------------------------------------------------------------------
    def generate_bs_day(
        self, bs_id: int, day: int, rng: np.random.Generator
    ) -> GeneratedDay:
        """Generate one day of sessions at one BS.

        Drawing from ``unit_rng(seed, day, bs_id)`` reproduces exactly the
        unit's slice of a campaign generated under root seed ``seed`` —
        the unit consumes its arrival counts first, then one float32
        uniform per session, in that order.
        """
        try:
            arrivals = self.arrival_models[bs_id]
        except KeyError:
            raise GeneratorError(f"no arrival model for BS {bs_id}") from None
        minute_counts = arrivals.sample_day(rng)
        n = int(minute_counts.sum())
        if n == 0:
            return GeneratedDay(SessionTable.empty(), minute_counts)
        u = rng.random(n, dtype=np.float32)
        start_minute = np.repeat(_MINUTE_INDEX, minute_counts)
        service_idx = np.empty(n, dtype=np.int16)
        duration_s = np.empty(n, dtype=np.float32)
        volume_mb = np.empty(n, dtype=np.float32)
        truncated = np.empty(n, dtype=bool)
        _fused_body_kernel(
            fused_tables(self.sampler()),
            u, start_minute, service_idx, duration_s, volume_mb, truncated,
        )
        table = SessionTable(
            service_idx,
            np.full(n, bs_id, dtype=np.int32),
            np.full(n, day, dtype=np.int16),
            start_minute,
            duration_s,
            volume_mb,
            truncated,
        )
        return GeneratedDay(table, minute_counts)

    # ------------------------------------------------------------------
    # Campaign planning
    # ------------------------------------------------------------------
    def campaign_units(self, n_days: int) -> list[tuple[int, int]]:
        """Canonical (day, bs_id) work-unit order of a campaign.

        BS identifiers are sorted, so the campaign does not depend on the
        insertion order of the ``arrival_models`` mapping.
        """
        if n_days < 1:
            raise GeneratorError("n_days must be >= 1")
        bs_order = sorted(self.arrival_models)
        return [(day, bs_id) for day in range(n_days) for bs_id in bs_order]

    def expected_unit_sessions(self, bs_id: int) -> float:
        """Expected sessions of one BS-day under its arrival model.

        The chunk planner uses this to bound each chunk's expected session
        count before anything is sampled.  Pareto night modes with infinite
        mean (shape <= 1) fall back to a finite multiple of their scale.
        Memoized per BS — planning runs once per chunked call, and the
        models are immutable.
        """
        cached = self._expected_sessions.get(bs_id)
        if cached is not None:
            return cached
        try:
            model = self.arrival_models[bs_id]
        except KeyError:
            raise GeneratorError(f"no arrival model for BS {bs_id}") from None
        n_peak = int(peak_minute_mask().sum())
        night_mean = model.night.mean()
        if not np.isfinite(night_mean):
            night_mean = model.night_scale * 4.0
        expected = (
            n_peak * model.peak_mu + (MINUTES_PER_DAY - n_peak) * night_mean
        )
        self._expected_sessions[bs_id] = expected
        return expected

    def plan_chunks(
        self, n_days: int, chunk_sessions: int | None = None
    ) -> list[list[tuple[int, int]]]:
        """Partition the canonical unit list into bounded chunks.

        Each chunk's *expected* session count stays at or below
        ``chunk_sessions`` (default :data:`DEFAULT_CHUNK_SESSIONS`) except
        when a single unit alone exceeds the budget.  The plan depends only
        on the models and the budget — never on sampled data — so chunking
        cannot perturb the generated campaign.
        """
        budget = (
            DEFAULT_CHUNK_SESSIONS if chunk_sessions is None
            else int(chunk_sessions)
        )
        if budget < 1:
            raise GeneratorError("chunk_sessions must be >= 1")
        chunks: list[list[tuple[int, int]]] = []
        current: list[tuple[int, int]] = []
        accumulated = 0.0
        expected_by_bs = {
            bs_id: self.expected_unit_sessions(bs_id)
            for bs_id in self.arrival_models
        }
        for day, bs_id in self.campaign_units(n_days):
            expected = expected_by_bs[bs_id]
            if current and accumulated + expected > budget:
                chunks.append(current)
                current, accumulated = [], 0.0
            current.append((day, bs_id))
            accumulated += expected
        chunks.append(current)
        return chunks

    def _arena_for(
        self, plans: Sequence[Sequence[tuple[int, int]]]
    ) -> SessionArena:
        """Fresh arena sized for the largest planned chunk (+8% headroom).

        Sampled counts fluctuate around the expectation, so a modest
        headroom absorbs nearly every chunk; the rare overshoot costs one
        geometric growth, not a failure.
        """
        expected = {
            bs_id: self.expected_unit_sessions(bs_id)
            for bs_id in self.arrival_models
        }
        largest = max(
            sum(expected[bs_id] for _, bs_id in units) for units in plans
        )
        return SessionArena(capacity=int(largest * 1.08) + 1024)

    def _generate_chunk(
        self,
        sampler: BatchSampler,
        units: Sequence[tuple[int, int]],
        root_seed: int,
        executor: SerialExecutor | ParallelExecutor,
        arena: SessionArena,
    ) -> tuple[int, int]:
        """Synthesize one chunk into ``arena``; returns its row range.

        Serial executors append block by block straight into the shared
        arena (zero copies); parallel executors receive copy-out blocks
        from the workers' reusable arenas and the parent splices them into
        the chunk arena in input order — byte-identical either way.
        """
        shared = isinstance(executor, SerialExecutor)
        items = []
        for lo in range(0, len(units), BLOCK_UNITS):
            block = [
                (day, bs_id, self.arrival_models[bs_id])
                for day, bs_id in units[lo : lo + BLOCK_UNITS]
            ]
            items.append((sampler, block, root_seed, arena if shared else None))
        chunk_lo = len(arena)
        results = executor.map(_generate_block, items)
        if not shared:
            for columns in results:
                if columns is None:
                    continue
                rows = arena.reserve(columns[0].shape[0])
                for name, column in zip(SessionTable.COLUMNS, columns):
                    arena.column(name)[rows] = column
        return chunk_lo, len(arena)

    # ------------------------------------------------------------------
    # Campaign generation
    # ------------------------------------------------------------------
    def iter_campaign_chunks(
        self,
        n_days: int,
        seed: int | np.integer | np.random.Generator,
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        chunk_sessions: int | None = None,
        telemetry: "Telemetry | None" = None,
        arena: SessionArena | None = None,
    ) -> Iterator[CampaignChunk]:
        """Generate the campaign chunk by chunk, in canonical order.

        Only one chunk's sessions are materialized at a time, so a caller
        that consumes and drops each :class:`CampaignChunk` keeps peak
        memory bounded by ``chunk_sessions`` regardless of campaign scale.
        ``executor`` fans each chunk's unit blocks across workers; the
        output is byte-identical for any worker count or chunk size.

        ``arena`` (optional) is reused across every chunk: each yielded
        chunk's table is then a **zero-copy view** into it, valid only
        until the next chunk is drawn — the bounded-memory streaming
        contract.  Without one, the engine still reuses an internal arena
        but yields owning snapshot tables (safe to keep).

        ``telemetry`` (optional) records one ``chunk`` span per generated
        chunk plus the engine's throughput counters
        (``generator.sessions``, ``generator.chunks``,
        ``generator.units``) and arena gauges (``generator.arena_mb``,
        ``generator.arena_fill``) — strictly out-of-band, the sessions
        are unaffected.
        """
        root_seed = coerce_root_seed(seed)
        plans = self.plan_chunks(n_days, chunk_sessions)
        runner = executor if executor is not None else SerialExecutor()
        sampler = self.sampler()
        obs = telemetry
        zero_copy = arena is not None
        work_arena = arena if zero_copy else self._arena_for(plans)
        for index, units in enumerate(plans):
            work_arena.reset()
            if obs:
                with obs.span(
                    f"chunk-{index}", kind="chunk",
                    attrs={"index": index, "units": len(units)},
                ) as span:
                    lo, hi = self._generate_chunk(
                        sampler, units, root_seed, runner, work_arena
                    )
                    span.attrs["sessions"] = hi - lo
                self._record_chunk_metrics(
                    obs, work_arena, hi - lo, len(units)
                )
            else:
                lo, hi = self._generate_chunk(
                    sampler, units, root_seed, runner, work_arena
                )
            table = (
                work_arena.view(lo, hi)
                if zero_copy
                else work_arena.snapshot(lo, hi)
            )
            yield CampaignChunk(
                index=index,
                n_chunks=len(plans),
                units=tuple(units),
                table=table,
            )

    @staticmethod
    def _record_chunk_metrics(
        obs: "Telemetry", arena: SessionArena, sessions: int, units: int
    ) -> None:
        """Commit one chunk's throughput counters and arena gauges."""
        obs.metrics.counter("generator.sessions").inc(sessions)
        obs.metrics.counter("generator.chunks").inc()
        obs.metrics.counter("generator.units").inc(units)
        obs.metrics.gauge("generator.arena_mb").set(
            round(arena.nbytes / (1 << 20), 3)
        )
        obs.metrics.gauge("generator.arena_fill").set(
            round(arena.fill_ratio, 4)
        )

    def generate_campaign(
        self,
        n_days: int,
        rng: int | np.integer | np.random.Generator,
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        jobs: int | None = None,
        chunk_sessions: int | None = None,
    ) -> SessionTable:
        """Generate ``n_days`` of sessions over every configured BS.

        ``rng`` may be an integer root seed or a ``Generator`` (from which
        one root seed is drawn); every (day, BS) unit then runs on its own
        spawned seed stream, so ``jobs=1`` and ``jobs=N`` runs — and any
        ``chunk_sessions`` setting — produce byte-identical tables.  Pass
        either an ``executor`` or a ``jobs`` count (an owned executor is
        created and reaped for the call).

        The whole campaign is materialized here regardless of
        ``chunk_sessions``: all unit blocks fill one expectation-sized
        arena whose buffers the returned table aliases and keeps alive —
        chunk splitting would only add a redundant copy.  For bounded peak
        memory, consume :meth:`iter_campaign_chunks` or
        :meth:`spool_campaign` instead.
        """
        if executor is not None and jobs is not None:
            raise GeneratorError("pass either executor= or jobs=, not both")
        if chunk_sessions is not None:
            # Validate eagerly so chunked and direct calls reject the same
            # inputs; the value does not affect the (byte-identical) output.
            self.plan_chunks(n_days, chunk_sessions)
        owned = make_executor(jobs) if executor is None and jobs else None
        runner = (
            executor
            if executor is not None
            else owned if owned is not None else SerialExecutor()
        )
        units = self.campaign_units(n_days)
        arena = self._arena_for([units])
        try:
            lo, hi = self._generate_chunk(
                self.sampler(), units, coerce_root_seed(rng), runner, arena
            )
            return arena.view(lo, hi)
        finally:
            if owned is not None:
                owned.close()

    def generate_units(
        self,
        units: Sequence[tuple[int, int]],
        seed: int | np.integer | np.random.Generator,
        *,
        arena: SessionArena,
        executor: SerialExecutor | ParallelExecutor | None = None,
    ) -> SessionTable:
        """Generate an explicit (day, BS) unit list into a caller's arena.

        Every unit runs on its own spawned seed stream
        (:func:`unit_seed`), so the rows are byte-identical to the same
        units' slice of any full-campaign run under the same root seed —
        the entry point the sharded campaign driver uses to synthesize
        one shard at a time.  Rows are appended to ``arena`` (the caller
        decides when to :meth:`~repro.dataset.records.SessionArena.reset`
        it) and the returned table is a zero-copy view of the appended
        range, valid until the arena is next reset.
        """
        runner = executor if executor is not None else SerialExecutor()
        lo, hi = self._generate_chunk(
            self.sampler(), list(units), coerce_root_seed(seed), runner, arena
        )
        return arena.view(lo, hi)

    # ------------------------------------------------------------------
    # Cache spooling
    # ------------------------------------------------------------------
    def _content_parts(self) -> dict:
        """Configuration facts determining the campaign's content."""
        return {
            "artifact": "generated-campaign",
            "mix": self.mix.probabilities(),
            "bank": json.loads(self.bank.to_json()),
            "arrivals": {
                str(bs_id): self.arrival_models[bs_id]
                for bs_id in sorted(self.arrival_models)
            },
        }

    def spool_campaign(
        self,
        n_days: int,
        seed: int | np.integer | np.random.Generator,
        cache: "ArtifactCache",
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        chunk_sessions: int | None = None,
        telemetry: "Telemetry | None" = None,
        arena: SessionArena | None = None,
        memmap_spool: bool = False,
    ) -> CampaignManifest:
        """Generate chunk-by-chunk through the artifact cache.

        Each chunk is content-keyed by the generator's models, the root
        seed and the chunk's unit identities, and persisted before the
        next chunk is generated — peak memory stays bounded by one chunk,
        and every chunk reuses one arena (``arena`` lets callers share
        theirs).  Chunks already present under their key are loaded
        instead of regenerated, so an interrupted spool resumes where it
        stopped; an unreadable (e.g. truncated) chunk artifact is
        regenerated in place.  Returns the :class:`CampaignManifest`
        indexing the spool.

        ``memmap_spool=True`` streams each chunk as a raw arena segment
        (:mod:`repro.io.spool`) instead of a compressed ``.npz``: writes
        are straight column-buffer dumps and readers may memmap them —
        the right trade at country scale, where compression time
        dominates.  Chunk keys are identical either way; only the
        artifact suffix differs.

        ``telemetry`` (optional) records one ``chunk`` span per spooled
        chunk — attributed ``cache: "hit"`` for replayed chunks and
        ``cache: "miss"`` for freshly generated ones — plus the engine's
        throughput counters and arena gauges; the spooled bytes are
        byte-identical either way.
        """
        from ..io.cache import CacheError, content_key, load_table, save_table
        from ..io.spool import SEGMENT_SUFFIX, load_segment, save_segment

        if memmap_spool:
            suffix, save_fn, load_fn = SEGMENT_SUFFIX, save_segment, load_segment
        else:
            suffix, save_fn, load_fn = ".npz", save_table, load_table

        root_seed = coerce_root_seed(seed)
        plans = self.plan_chunks(n_days, chunk_sessions)
        runner = executor if executor is not None else SerialExecutor()
        sampler = self.sampler()
        obs = telemetry
        work_arena = arena if arena is not None else self._arena_for(plans)
        config = self._content_parts()
        keys: list[str] = []
        n_sessions = 0
        total_volume = 0.0
        for index, units in enumerate(plans):
            key = content_key(
                {
                    **config,
                    "seed": root_seed,
                    "units": [[day, bs_id] for day, bs_id in units],
                }
            )

            def produce(table_key: str = key, chunk_units=units):
                table: SessionTable | None = None
                if cache.has(GENERATED_KIND, table_key, suffix):
                    try:
                        table = cache.fetch(
                            GENERATED_KIND, table_key, suffix, load_fn
                        )
                    except CacheError:
                        table = None  # unreadable entry: regenerate below
                if table is not None:
                    return table, "hit"
                work_arena.reset()
                lo, hi = self._generate_chunk(
                    sampler, chunk_units, root_seed, runner, work_arena
                )
                table = work_arena.view(lo, hi)
                cache.store(
                    GENERATED_KIND,
                    table_key,
                    suffix,
                    lambda path, value=table: save_fn(path, value),
                )
                return table, "miss"

            if obs:
                with obs.span(
                    f"chunk-{index}", kind="chunk",
                    attrs={"index": index, "units": len(units)},
                ) as span:
                    table, provenance = produce()
                    span.attrs["sessions"] = len(table)
                    span.attrs["cache"] = provenance
                    span.attrs["key"] = key
                self._record_chunk_metrics(
                    obs, work_arena, len(table), len(units)
                )
            else:
                table, _provenance = produce()
            keys.append(key)
            n_sessions += len(table)
            total_volume += table.total_volume_mb()
        return CampaignManifest(
            kind=GENERATED_KIND,
            chunk_keys=tuple(keys),
            n_sessions=n_sessions,
            total_volume_mb=float(total_volume),
            suffix=suffix,
        )


def generate_campaign_reference(
    generator: TrafficGenerator, n_days: int, rng: np.random.Generator
) -> SessionTable:
    """Pre-batching reference: the serial per-unit loop on one shared RNG.

    This is the engine's historical implementation, kept as the regression
    baseline: the batched engine must match its output *distribution* (the
    property tests pin service draws exactly and volume histograms by EMD),
    and the performance benchmark reports its throughput as the speedup
    denominator.  Its shared-RNG design makes results depend on the
    ``arrival_models`` iteration order — exactly the bug the seed-stream
    engine fixes — so it must not be used for new campaigns.
    """
    if n_days < 1:
        raise GeneratorError("n_days must be >= 1")
    pieces = []
    for day in range(n_days):
        for bs_id, arrival in generator.arrival_models.items():
            # The order coupling IS the regression baseline being kept.
            # repro-lint: disable-next-line=D106 -- pinned pre-seed-stream reference
            counts = arrival.sample_day(rng)
            n = int(counts.sum())
            if n == 0:
                pieces.append(SessionTable.empty())
                continue
            start_minute = np.repeat(
                np.arange(MINUTES_PER_DAY, dtype=np.int64), counts
            )
            service_idx, volumes, durations = (
                # repro-lint: disable-next-line=D106 -- same pinned draw.
                generator.bank.sample_mixed_sessions(generator.mix, rng, n)
            )
            pieces.append(
                SessionTable(
                    service_idx=service_idx,
                    bs_id=np.full(n, bs_id, dtype=np.int32),
                    day=np.full(n, day, dtype=np.int16),
                    start_minute=start_minute,
                    duration_s=durations,
                    volume_mb=volumes,
                    truncated=np.zeros(n, dtype=bool),
                )
            )
    return SessionTable.concatenate(pieces)
