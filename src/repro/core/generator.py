"""Model-driven session traffic generator — the batched synthesis engine.

This is the "consumer side" of the library: given fitted arrival models,
a service mix and a :class:`~repro.core.model_bank.ModelBank`, it produces
synthetic :class:`~repro.dataset.records.SessionTable` campaigns with the
same schema the measurement substrate produces — so any analysis, use case
or network simulator can run interchangeably on measured or generated
traffic.  This interchangeability is exactly what the paper's use cases
(Section 6) exploit.

The engine mirrors the simulator's run architecture:

* **Per-(day, BS) seed streams** — every work unit draws from its own
  ``np.random.SeedSequence`` stream derived from the root seed and the
  unit's identity alone (:func:`unit_seed`), so the campaign is
  bit-identical for any unit order, chunking, or worker count.  The
  historical single-shared-RNG loop (kept as
  :func:`generate_campaign_reference`) silently depended on dict iteration
  order and could never match a parallel run.
* **Batched sampling** — per-service volume/duration draws go through one
  flattened :class:`BatchSampler` table: a unit contributes three primitive
  draw arrays (service uniforms, component uniforms, standard normals) and
  the mixture gather + power-law inversion run vectorized across every
  session of a whole unit block, instead of per-(unit, service) Python
  calls.  The sampled distribution is exactly that of
  :meth:`~repro.core.model_bank.ModelBank.sample_mixed_sessions`.
* **Chunked output** — :meth:`TrafficGenerator.iter_campaign_chunks`
  partitions the campaign into chunks of a configurable expected session
  count, and :meth:`TrafficGenerator.spool_campaign` streams those chunks
  through the artifact cache, so peak memory stays bounded at 45-day ×
  thousands-of-BS scale.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator, Sequence

import numpy as np

from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ..dataset.records import SERVICE_NAMES, SessionTable
from ..pipeline.context import coerce_root_seed, stream_seed
from ..pipeline.executors import ParallelExecutor, SerialExecutor, make_executor
from .arrivals import ArrivalModel
from .model_bank import ModelBank
from .service_mix import ServiceMix

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..io.cache import ArtifactCache
    from ..obs.telemetry import Telemetry

#: Stream label of per-(day, BS) generation RNGs (see :func:`unit_seed`).
UNIT_STREAM = "generate"

#: Seconds in one generated day; sessions whose sampled duration crosses
#: this boundary are flagged ``truncated`` (the paper's transient-session
#: semantics, Section 4.3).
SECONDS_PER_DAY = 86400.0

#: Default expected-sessions budget of one output chunk.
DEFAULT_CHUNK_SESSIONS = 1_000_000

#: (day, BS) units synthesized together in one executor work item; bounds
#: both the pickling payload per task and the transient batch arrays.
BLOCK_UNITS = 16

#: Cache artifact family of spooled campaign chunks.
GENERATED_KIND = "generated"

#: Minute-of-day index reused by every unit's ``np.repeat`` expansion.
_MINUTE_INDEX = np.arange(MINUTES_PER_DAY, dtype=np.int16)

#: ln(10) — volumes/durations are modeled in log10 space but evaluated via
#: the (faster) natural ``exp``.
_LN10 = float(np.log(10.0))

#: Buckets of the inverse-CDF lookup table accelerating cell resolution.
#: 2**16 buckets keep the table L2-resident while leaving at most a couple
#: of CDF boundaries per bucket for realistic cell counts.
_LUT_BUCKETS = 1 << 16


class GeneratorError(ValueError):
    """Raised on inconsistent generator configuration."""


@dataclass(frozen=True)
class GeneratedDay:
    """Sessions generated for one BS over one day."""

    table: SessionTable
    minute_counts: np.ndarray


def unit_seed(
    root_seed: int, day: int, bs_id: int
) -> np.random.SeedSequence:
    """Seed sequence of one (day, BS) generation work unit.

    Derived from the root seed and the unit's identity alone — the same
    spawn-key scheme :class:`~repro.pipeline.context.RunContext` uses — so
    the unit's sessions are reproducible no matter where, in what order, or
    in which chunk the unit runs.
    """
    return stream_seed(root_seed, UNIT_STREAM, day, bs_id)


@dataclass(frozen=True)
class BatchSampler:
    """Flattened numpy tables of a (mix, bank) pair for single-pass sampling.

    The service mix and every per-service log-normal mixture component are
    unrolled into one global *cell* table: cell ``i`` is one (service,
    component) pair, carrying the component's volume parameters and the
    service's duration power law.  Its joint probability — the service's
    mix share times the component's mixture weight — becomes one interval
    of a single global CDF, so each session resolves service AND mixture
    component with one ``searchsorted`` over one uniform, followed by flat
    per-cell gathers.  This replaces the per-unique-service Python loop of
    :meth:`~repro.core.model_bank.ModelBank.sample_mixed_sessions` (and its
    nested per-component masking) with a handful of full-batch array ops.

    Cell boundaries that end a service are set to that service's exact
    cumulative mix probability, so the resolved service indices are
    bit-identical to :meth:`~repro.core.service_mix.ServiceMix.sample`
    draws from the same uniforms.  Zero-width cells — unmodelled or
    zero-probability services, zero-weight mixture components — are
    dropped outright: ``searchsorted(side='right')`` can never land on
    them, and a strictly increasing CDF keeps the lookup table's
    correction loop (see :meth:`cells_from_uniforms`) short.

    Attributes
    ----------
    mix_cdf:
        Cumulative service-mix probabilities in catalog order (float64).
    cell_cdf:
        Strictly increasing cumulative probability of the selectable
        (service, component) cells (float64, last entry exactly 1.0).
    cell_service:
        Catalog service index of each cell (int16).
    cell_mu / cell_sigma:
        Per-cell log10-volume parameters of Eq (5) (float32).
    cell_log10_alpha / cell_inv_beta:
        Per-cell duration power-law coefficients ``log10(alpha_s)`` and
        ``1/beta_s`` of the Section 5.3 inverse map (float32), pre-shaped
        so durations resolve as one log-space ``exp``.
    lut / lut_span:
        Per-bucket starting cell index over :data:`_LUT_BUCKETS` equal
        uniform intervals, and the maximum number of cell boundaries any
        bucket contains — together they turn the per-session binary search
        into one gather plus ``lut_span`` vectorized compare-and-bump
        passes, with results identical to ``searchsorted``.
    """

    mix_cdf: np.ndarray
    cell_cdf: np.ndarray
    cell_service: np.ndarray
    cell_mu: np.ndarray
    cell_sigma: np.ndarray
    cell_log10_alpha: np.ndarray
    cell_inv_beta: np.ndarray
    lut: np.ndarray
    lut_span: int

    @classmethod
    def from_models(cls, mix: ServiceMix, bank: ModelBank) -> "BatchSampler":
        """Flatten a service mix and model bank into the cell tables."""
        probs = mix.probabilities()
        if probs.sum() <= 0:
            raise GeneratorError("mix assigns zero total probability")
        # Normalize by the cumulative sum's own last entry — the exact
        # recipe of ``Generator.choice`` — so the final boundary is 1.0 to
        # the bit and service draws match ``ServiceMix.sample``.
        mix_cdf = probs.cumsum()
        mix_cdf /= mix_cdf[-1]

        cdf_parts: list[float] = []
        service_parts: list[int] = []
        mu_parts: list[float] = []
        sigma_parts: list[float] = []
        la_parts: list[float] = []
        ib_parts: list[float] = []
        lo = 0.0
        for idx, name in enumerate(SERVICE_NAMES):
            hi = float(mix_cdf[idx])
            if name in bank:
                model = bank.get(name)
                mixture = model.volume.as_mixture()
                weights = np.asarray(mixture.weights, dtype=float)
                comp_cdf = weights.cumsum()
                comp_cdf /= comp_cdf[-1]
                la = float(np.log10(model.duration.alpha))
                ib = 1.0 / model.duration.beta
                width = hi - lo
                last = len(mixture.components) - 1
                for j, component in enumerate(mixture.components):
                    # The service's closing cell lands exactly on its mix
                    # CDF value: service resolution stays bit-identical to
                    # a searchsorted over ``mix_cdf`` alone.
                    boundary = hi if j == last else lo + comp_cdf[j] * width
                    cdf_parts.append(boundary)
                    service_parts.append(idx)
                    mu_parts.append(component.mu)
                    sigma_parts.append(component.sigma)
                    la_parts.append(la)
                    ib_parts.append(ib)
            lo = hi
        cell_cdf = np.asarray(cdf_parts, dtype=np.float64)
        # Drop zero-width cells (duplicate boundaries): side='right' skips
        # past them, so the owner of each interval — the FIRST cell of any
        # duplicate run — is the one that stays selectable.
        keep = cell_cdf > np.concatenate(([0.0], cell_cdf[:-1]))
        cell_cdf = cell_cdf[keep]
        if len(cell_cdf) == 0 or cell_cdf[-1] != 1.0:
            raise GeneratorError(
                "mix probability mass is not carried by modelled services"
            )
        pick = np.flatnonzero(keep)

        edges = np.arange(_LUT_BUCKETS, dtype=np.float64) / _LUT_BUCKETS
        lut_lo = cell_cdf.searchsorted(edges, side="right")
        lut_hi = cell_cdf.searchsorted(edges + 1.0 / _LUT_BUCKETS, side="left")
        # One trailing duplicate bucket: ``u * BUCKETS`` can round up to
        # exactly BUCKETS for u just below 1.0, and the correction loop
        # only moves forward, so that bucket must start low and bump.
        lut = np.concatenate((lut_lo, lut_lo[-1:])).astype(np.intp)
        return cls(
            mix_cdf=mix_cdf,
            cell_cdf=cell_cdf,
            cell_service=np.asarray(service_parts, dtype=np.int16)[pick],
            cell_mu=np.asarray(mu_parts, dtype=np.float32)[pick],
            cell_sigma=np.asarray(sigma_parts, dtype=np.float32)[pick],
            cell_log10_alpha=np.asarray(la_parts, dtype=np.float32)[pick],
            cell_inv_beta=np.asarray(ib_parts, dtype=np.float32)[pick],
            lut=lut,
            lut_span=int((lut_hi - lut_lo).max()),
        )

    def cells_from_uniforms(self, u: np.ndarray) -> np.ndarray:
        """Resolve uniforms to (service, component) cell indices.

        Inverse-CDF sampling over the global cell CDF — identical results
        to ``cell_cdf.searchsorted(u, side='right')`` — picks both the
        service and its mixture component in one pass.  The per-session
        binary search is replaced by a bucket lookup plus ``lut_span``
        (typically one) vectorized compare-and-bump passes: each pass
        advances exactly the sessions whose uniform still sits at or above
        their candidate cell's boundary, which is the linear tail of the
        search the bucket already localized.  A uniform strictly below 1.0
        always lands on a valid cell because the CDF ends at exactly 1.0.
        """
        idx = self.lut.take((u * _LUT_BUCKETS).astype(np.intp))
        cdf = self.cell_cdf
        bump = cdf.take(idx) <= u
        idx += bump
        # Only a session that just advanced can need advancing again, and
        # only past boundaries sharing its bucket — a vanishing fraction —
        # so later passes run on the shrinking active subset.
        if self.lut_span > 1:
            active = np.flatnonzero(bump)
            for _ in range(self.lut_span - 1):
                if active.size == 0:
                    break
                bump = cdf.take(idx.take(active)) <= u.take(active)
                idx[active] += bump
                active = active[bump]
        return idx

    def services_of_cells(self, cells: np.ndarray) -> np.ndarray:
        """Catalog service index (int16) of each resolved cell."""
        return self.cell_service.take(cells)

    def services_from_uniforms(self, u_service: np.ndarray) -> np.ndarray:
        """Resolve service uniforms to catalog indices by inverse CDF.

        ``Generator.choice`` with probabilities is inverse-CDF sampling
        over ``rng.random``; resolving through the cell table reproduces
        those draws exactly (the cells refine the service CDF without
        moving its boundaries) while skipping the per-call probability
        validation.
        """
        return self.services_of_cells(self.cells_from_uniforms(u_service))

    def sample_services(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Draw ``size`` service indices, matching ``ServiceMix.sample``."""
        return self.services_from_uniforms(rng.random(size))

    def sample_bodies(
        self, cells: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Volumes (MB) and durations (s) from resolved cells and normals.

        ``z`` is each session's standard-normal log10-volume draw (float32
        precision — the draws feed distributions, not reproducibility
        contracts with the legacy path).  Volumes and durations both
        resolve as single float32 log-space ``exp`` evaluations — the
        duration power law ``(v / alpha) ** (1 / beta)`` collapses to
        ``exp(ln10 * (log10 v - log10 alpha) / beta)`` — matching the
        per-session distribution of sampling each service's model
        separately.  Durations are clipped to one second, as in
        :meth:`~repro.core.service_model.SessionLevelModel.sample_sessions`.
        """
        ln10 = np.float32(_LN10)
        log10_volume = self.cell_sigma.take(cells)
        log10_volume *= z.astype(np.float32, copy=False)
        log10_volume += self.cell_mu.take(cells)
        durations = log10_volume - self.cell_log10_alpha.take(cells)
        durations *= self.cell_inv_beta.take(cells)
        durations *= ln10
        np.exp(durations, out=durations)
        np.maximum(durations, np.float32(1.0), out=durations)
        volumes = log10_volume
        volumes *= ln10
        np.exp(volumes, out=volumes)
        return volumes, durations


def _assemble_unit_columns(
    sampler: BatchSampler,
    rng: np.random.Generator,
    counts: np.ndarray,
    bs_id: int,
    day: int,
) -> tuple[np.ndarray, ...] | None:
    """Draw one unit's primitive arrays in the canonical stream order.

    Returns ``(cells, bs_col, day_col, start_minute, z)`` or ``None`` for a
    unit with zero arrivals.  The draw order — arrival counts, service
    uniforms, normals — is part of the reproducibility contract: both the
    campaign blocks and :meth:`TrafficGenerator.generate_bs_day` follow it,
    so a single unit regenerated standalone matches its slice of the full
    campaign.
    """
    n = int(counts.sum())
    if n == 0:
        return None
    cells = sampler.cells_from_uniforms(rng.random(n))
    z = rng.standard_normal(n, dtype=np.float32)
    return (
        cells,
        np.full(n, bs_id, dtype=np.int32),
        np.full(n, day, dtype=np.int16),
        np.repeat(_MINUTE_INDEX, counts),
        z,
    )


def _finish_columns(
    sampler: BatchSampler,
    cells: np.ndarray,
    bs_col: np.ndarray,
    day_col: np.ndarray,
    start_minute: np.ndarray,
    z: np.ndarray,
) -> tuple[np.ndarray, ...]:
    """Resolve primitive draws into the seven schema-exact table columns.

    Column dtypes match the measurement substrate's schema directly (no
    platform-dependent default-int detours), and sessions whose sampled
    duration crosses the day boundary are flagged ``truncated`` — the
    transient-session semantics of Section 4.3.  Their sampled duration and
    volume are kept intact so the per-service distributions stay exactly
    those of the fitted models.
    """
    service_idx = sampler.services_of_cells(cells)
    volume_mb, duration_s = sampler.sample_bodies(cells, z)
    truncated = (
        start_minute.astype(np.float64) * 60.0 + duration_s > SECONDS_PER_DAY
    )
    return (
        service_idx,
        bs_col,
        day_col,
        start_minute,
        duration_s,
        volume_mb,
        truncated,
    )


def _generate_block(
    item: tuple[BatchSampler, list[tuple[int, int, ArrivalModel]], int],
) -> tuple[np.ndarray, ...] | None:
    """Executor work function: synthesize one block of (day, BS) units.

    Each unit draws its primitives from its own seed stream; the mixture
    gather and power-law inversion then run once over the concatenated
    block, which is where the batching speedup comes from.  Returns the
    block's finished column arrays (or ``None`` for an all-empty block);
    table construction — and its validation pass — happens once per chunk,
    not once per block.
    """
    sampler, units, root_seed = item
    parts: list[tuple[np.ndarray, ...]] = []
    for day, bs_id, arrival in units:
        rng = np.random.default_rng(unit_seed(root_seed, day, bs_id))
        counts = arrival.sample_day(rng)
        columns = _assemble_unit_columns(sampler, rng, counts, bs_id, day)
        if columns is not None:
            parts.append(columns)
    if not parts:
        return None
    merged = tuple(
        np.concatenate([part[i] for part in parts]) for i in range(5)
    )
    return _finish_columns(sampler, *merged)


@dataclass(frozen=True)
class CampaignChunk:
    """One memory-bounded piece of a generated campaign.

    Chunks arrive in canonical unit order; concatenating their tables
    yields exactly the unchunked campaign.
    """

    index: int
    n_chunks: int
    units: tuple[tuple[int, int], ...]
    table: SessionTable


@dataclass(frozen=True)
class CampaignManifest:
    """Index of a campaign spooled chunk-by-chunk into an artifact cache.

    Attributes
    ----------
    kind:
        Cache artifact family the chunks live under.
    chunk_keys:
        Content keys of the chunks, in canonical campaign order.
    n_sessions / total_volume_mb:
        Campaign-level totals accumulated while spooling.
    """

    kind: str
    chunk_keys: tuple[str, ...]
    n_sessions: int
    total_volume_mb: float

    def iter_tables(self, cache: "ArtifactCache") -> Iterator[SessionTable]:
        """Yield each spooled chunk table in canonical campaign order."""
        from ..io.cache import load_table

        for key in self.chunk_keys:
            yield cache.fetch(self.kind, key, ".npz", load_table)

    def load(self, cache: "ArtifactCache") -> SessionTable:
        """Materialize the full campaign (memory-unbounded: prefer
        :meth:`iter_tables` for large spools)."""
        return SessionTable.concatenate(list(self.iter_tables(cache)))


@dataclass(frozen=True)
class GenerationResult:
    """Summary of one campaign generation run (chunked or materialized).

    Attributes
    ----------
    n_sessions / total_volume_mb / n_chunks:
        Campaign totals, available even when the table was never
        materialized.
    chunk_keys:
        Content keys of the spooled chunks (empty when the run did not go
        through an artifact cache).
    table:
        The materialized campaign, or ``None`` for summary-only runs.
    """

    n_sessions: int
    total_volume_mb: float
    n_chunks: int
    chunk_keys: tuple[str, ...] = ()
    table: SessionTable | None = None


class TrafficGenerator:
    """Generates session-level traffic for a set of BSs.

    Parameters
    ----------
    arrival_models:
        One fitted :class:`ArrivalModel` per generated BS, keyed by the
        BS identifier the output table will carry.
    mix:
        Categorical service mix of new sessions (Section 5.1 breakdown).
    bank:
        Fitted per-service models providing volumes and durations.
    """

    def __init__(
        self,
        arrival_models: dict[int, ArrivalModel],
        mix: ServiceMix,
        bank: ModelBank,
    ):
        if not arrival_models:
            raise GeneratorError("need at least one BS arrival model")
        self._check_mix_covered(mix, bank)
        self.arrival_models = dict(arrival_models)
        self.mix = mix
        self.bank = bank
        self._sampler: BatchSampler | None = None

    @staticmethod
    def _check_mix_covered(mix: ServiceMix, bank: ModelBank) -> None:
        probs = mix.probabilities()
        uncovered = [
            SERVICE_NAMES[i]
            for i, p in enumerate(probs)
            if p > 0 and SERVICE_NAMES[i] not in bank
        ]
        if uncovered:
            raise GeneratorError(
                f"mix emits services without fitted models: {uncovered}"
            )

    def sampler(self) -> BatchSampler:
        """The flattened sampling tables of this generator's models."""
        if self._sampler is None:
            self._sampler = BatchSampler.from_models(self.mix, self.bank)
        return self._sampler

    # ------------------------------------------------------------------
    # Per-unit generation
    # ------------------------------------------------------------------
    def generate_bs_day(
        self, bs_id: int, day: int, rng: np.random.Generator
    ) -> GeneratedDay:
        """Generate one day of sessions at one BS.

        Drawing from ``np.random.default_rng(unit_seed(seed, day, bs_id))``
        reproduces exactly the unit's slice of a campaign generated under
        root seed ``seed``.
        """
        try:
            arrivals = self.arrival_models[bs_id]
        except KeyError:
            raise GeneratorError(f"no arrival model for BS {bs_id}") from None
        minute_counts = arrivals.sample_day(rng)
        columns = _assemble_unit_columns(
            self.sampler(), rng, minute_counts, bs_id, day
        )
        if columns is None:
            return GeneratedDay(SessionTable.empty(), minute_counts)
        table = SessionTable(*_finish_columns(self.sampler(), *columns))
        return GeneratedDay(table, minute_counts)

    # ------------------------------------------------------------------
    # Campaign planning
    # ------------------------------------------------------------------
    def campaign_units(self, n_days: int) -> list[tuple[int, int]]:
        """Canonical (day, bs_id) work-unit order of a campaign.

        BS identifiers are sorted, so the campaign does not depend on the
        insertion order of the ``arrival_models`` mapping.
        """
        if n_days < 1:
            raise GeneratorError("n_days must be >= 1")
        bs_order = sorted(self.arrival_models)
        return [(day, bs_id) for day in range(n_days) for bs_id in bs_order]

    def expected_unit_sessions(self, bs_id: int) -> float:
        """Expected sessions of one BS-day under its arrival model.

        The chunk planner uses this to bound each chunk's expected session
        count before anything is sampled.  Pareto night modes with infinite
        mean (shape <= 1) fall back to a finite multiple of their scale.
        """
        try:
            model = self.arrival_models[bs_id]
        except KeyError:
            raise GeneratorError(f"no arrival model for BS {bs_id}") from None
        n_peak = int(peak_minute_mask().sum())
        night_mean = model.night.mean()
        if not np.isfinite(night_mean):
            night_mean = model.night_scale * 4.0
        return n_peak * model.peak_mu + (MINUTES_PER_DAY - n_peak) * night_mean

    def plan_chunks(
        self, n_days: int, chunk_sessions: int | None = None
    ) -> list[list[tuple[int, int]]]:
        """Partition the canonical unit list into bounded chunks.

        Each chunk's *expected* session count stays at or below
        ``chunk_sessions`` (default :data:`DEFAULT_CHUNK_SESSIONS`) except
        when a single unit alone exceeds the budget.  The plan depends only
        on the models and the budget — never on sampled data — so chunking
        cannot perturb the generated campaign.
        """
        budget = (
            DEFAULT_CHUNK_SESSIONS if chunk_sessions is None
            else int(chunk_sessions)
        )
        if budget < 1:
            raise GeneratorError("chunk_sessions must be >= 1")
        chunks: list[list[tuple[int, int]]] = []
        current: list[tuple[int, int]] = []
        accumulated = 0.0
        for day, bs_id in self.campaign_units(n_days):
            expected = self.expected_unit_sessions(bs_id)
            if current and accumulated + expected > budget:
                chunks.append(current)
                current, accumulated = [], 0.0
            current.append((day, bs_id))
            accumulated += expected
        chunks.append(current)
        return chunks

    def _generate_chunk(
        self,
        sampler: BatchSampler,
        units: Sequence[tuple[int, int]],
        root_seed: int,
        executor: SerialExecutor | ParallelExecutor,
    ) -> SessionTable:
        items = []
        for lo in range(0, len(units), BLOCK_UNITS):
            block = [
                (day, bs_id, self.arrival_models[bs_id])
                for day, bs_id in units[lo : lo + BLOCK_UNITS]
            ]
            items.append((sampler, block, root_seed))
        blocks = [
            columns
            for columns in executor.map(_generate_block, items)
            if columns is not None
        ]
        if not blocks:
            return SessionTable.empty()
        if len(blocks) == 1:
            return SessionTable(*blocks[0])
        return SessionTable(
            *(
                np.concatenate([block[i] for block in blocks])
                for i in range(len(SessionTable.COLUMNS))
            )
        )

    # ------------------------------------------------------------------
    # Campaign generation
    # ------------------------------------------------------------------
    def iter_campaign_chunks(
        self,
        n_days: int,
        seed: int | np.integer | np.random.Generator,
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        chunk_sessions: int | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> Iterator[CampaignChunk]:
        """Generate the campaign chunk by chunk, in canonical order.

        Only one chunk's sessions are materialized at a time, so a caller
        that consumes and drops each :class:`CampaignChunk` keeps peak
        memory bounded by ``chunk_sessions`` regardless of campaign scale.
        ``executor`` fans each chunk's unit blocks across workers; the
        output is byte-identical for any worker count or chunk size.
        ``telemetry`` (optional) records one ``chunk`` span per generated
        chunk plus the engine's throughput counters
        (``generator.sessions``, ``generator.chunks``,
        ``generator.units``) — strictly out-of-band, the sessions are
        unaffected.
        """
        root_seed = coerce_root_seed(seed)
        plans = self.plan_chunks(n_days, chunk_sessions)
        runner = executor if executor is not None else SerialExecutor()
        sampler = self.sampler()
        obs = telemetry
        for index, units in enumerate(plans):
            if obs:
                with obs.span(
                    f"chunk-{index}", kind="chunk",
                    attrs={"index": index, "units": len(units)},
                ) as span:
                    table = self._generate_chunk(
                        sampler, units, root_seed, runner
                    )
                    span.attrs["sessions"] = len(table)
                obs.metrics.counter("generator.sessions").inc(len(table))
                obs.metrics.counter("generator.chunks").inc()
                obs.metrics.counter("generator.units").inc(len(units))
            else:
                table = self._generate_chunk(sampler, units, root_seed, runner)
            yield CampaignChunk(
                index=index,
                n_chunks=len(plans),
                units=tuple(units),
                table=table,
            )

    def generate_campaign(
        self,
        n_days: int,
        rng: int | np.integer | np.random.Generator,
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        jobs: int | None = None,
        chunk_sessions: int | None = None,
    ) -> SessionTable:
        """Generate ``n_days`` of sessions over every configured BS.

        ``rng`` may be an integer root seed or a ``Generator`` (from which
        one root seed is drawn); every (day, BS) unit then runs on its own
        spawned seed stream, so ``jobs=1`` and ``jobs=N`` runs — and any
        ``chunk_sessions`` setting — produce byte-identical tables.  Pass
        either an ``executor`` or a ``jobs`` count (an owned executor is
        created and reaped for the call).

        The whole campaign is materialized in memory here regardless of
        ``chunk_sessions``, so this path assembles all unit blocks into
        one table directly — chunk splitting would only add a redundant
        copy.  For bounded peak memory, consume
        :meth:`iter_campaign_chunks` or :meth:`spool_campaign` instead.
        """
        if executor is not None and jobs is not None:
            raise GeneratorError("pass either executor= or jobs=, not both")
        if chunk_sessions is not None:
            # Validate eagerly so chunked and direct calls reject the same
            # inputs; the value does not affect the (byte-identical) output.
            self.plan_chunks(n_days, chunk_sessions)
        owned = make_executor(jobs) if executor is None and jobs else None
        runner = (
            executor
            if executor is not None
            else owned if owned is not None else SerialExecutor()
        )
        try:
            return self._generate_chunk(
                self.sampler(),
                self.campaign_units(n_days),
                coerce_root_seed(rng),
                runner,
            )
        finally:
            if owned is not None:
                owned.close()

    # ------------------------------------------------------------------
    # Cache spooling
    # ------------------------------------------------------------------
    def _content_parts(self) -> dict:
        """Configuration facts determining the campaign's content."""
        return {
            "artifact": "generated-campaign",
            "mix": self.mix.probabilities(),
            "bank": json.loads(self.bank.to_json()),
            "arrivals": {
                str(bs_id): self.arrival_models[bs_id]
                for bs_id in sorted(self.arrival_models)
            },
        }

    def spool_campaign(
        self,
        n_days: int,
        seed: int | np.integer | np.random.Generator,
        cache: "ArtifactCache",
        *,
        executor: SerialExecutor | ParallelExecutor | None = None,
        chunk_sessions: int | None = None,
        telemetry: "Telemetry | None" = None,
    ) -> CampaignManifest:
        """Generate chunk-by-chunk through the artifact cache.

        Each chunk is content-keyed by the generator's models, the root
        seed and the chunk's unit identities, and persisted as ``.npz``
        before the next chunk is generated — peak memory stays bounded by
        one chunk.  Chunks already present under their key are loaded
        instead of regenerated, so an interrupted spool resumes where it
        stopped.  Returns the :class:`CampaignManifest` indexing the spool.

        ``telemetry`` (optional) records one ``chunk`` span per spooled
        chunk — attributed ``cache: "hit"`` for replayed chunks and
        ``cache: "miss"`` for freshly generated ones — plus the engine's
        throughput counters; the spooled bytes are byte-identical either
        way.
        """
        from ..io.cache import CacheError, content_key, load_table, save_table

        root_seed = coerce_root_seed(seed)
        plans = self.plan_chunks(n_days, chunk_sessions)
        runner = executor if executor is not None else SerialExecutor()
        sampler = self.sampler()
        obs = telemetry
        config = self._content_parts()
        keys: list[str] = []
        n_sessions = 0
        total_volume = 0.0
        for index, units in enumerate(plans):
            key = content_key(
                {
                    **config,
                    "seed": root_seed,
                    "units": [[day, bs_id] for day, bs_id in units],
                }
            )

            def produce(table_key: str = key, chunk_units=units):
                table: SessionTable | None = None
                if cache.has(GENERATED_KIND, table_key, ".npz"):
                    try:
                        table = cache.fetch(
                            GENERATED_KIND, table_key, ".npz", load_table
                        )
                    except CacheError:
                        table = None  # unreadable entry: regenerate below
                if table is not None:
                    return table, "hit"
                table = self._generate_chunk(
                    sampler, chunk_units, root_seed, runner
                )
                cache.store(
                    GENERATED_KIND,
                    table_key,
                    ".npz",
                    lambda path, value=table: save_table(path, value),
                )
                return table, "miss"

            if obs:
                with obs.span(
                    f"chunk-{index}", kind="chunk",
                    attrs={"index": index, "units": len(units)},
                ) as span:
                    table, provenance = produce()
                    span.attrs["sessions"] = len(table)
                    span.attrs["cache"] = provenance
                    span.attrs["key"] = key
                obs.metrics.counter("generator.sessions").inc(len(table))
                obs.metrics.counter("generator.chunks").inc()
                obs.metrics.counter("generator.units").inc(len(units))
            else:
                table, _provenance = produce()
            keys.append(key)
            n_sessions += len(table)
            total_volume += table.total_volume_mb()
        return CampaignManifest(
            kind=GENERATED_KIND,
            chunk_keys=tuple(keys),
            n_sessions=n_sessions,
            total_volume_mb=float(total_volume),
        )


def generate_campaign_reference(
    generator: TrafficGenerator, n_days: int, rng: np.random.Generator
) -> SessionTable:
    """Pre-batching reference: the serial per-unit loop on one shared RNG.

    This is the engine's historical implementation, kept as the regression
    baseline: the batched engine must match its output *distribution* (the
    property tests pin service draws exactly and volume histograms by EMD),
    and the performance benchmark reports its throughput as the speedup
    denominator.  Its shared-RNG design makes results depend on the
    ``arrival_models`` iteration order — exactly the bug the seed-stream
    engine fixes — so it must not be used for new campaigns.
    """
    if n_days < 1:
        raise GeneratorError("n_days must be >= 1")
    pieces = []
    for day in range(n_days):
        for bs_id, arrival in generator.arrival_models.items():
            # The order coupling IS the regression baseline being kept.
            # repro-lint: disable-next-line=D106 -- pinned pre-seed-stream reference
            counts = arrival.sample_day(rng)
            n = int(counts.sum())
            if n == 0:
                pieces.append(SessionTable.empty())
                continue
            start_minute = np.repeat(
                np.arange(MINUTES_PER_DAY, dtype=np.int64), counts
            )
            service_idx, volumes, durations = (
                # repro-lint: disable-next-line=D106 -- same pinned draw.
                generator.bank.sample_mixed_sessions(generator.mix, rng, n)
            )
            pieces.append(
                SessionTable(
                    service_idx=service_idx,
                    bs_id=np.full(n, bs_id, dtype=np.int32),
                    day=np.full(n, day, dtype=np.int16),
                    start_minute=start_minute,
                    duration_s=durations,
                    volume_mb=volumes,
                    truncated=np.zeros(n, dtype=bool),
                )
            )
    return SessionTable.concatenate(pieces)
