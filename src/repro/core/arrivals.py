"""Bi-modal model of per-minute session arrivals at a BS (Section 5.1).

The measured PDF of the number of sessions established per minute at any BS
is bi-modal (Fig 3): the daytime mode is a Gaussian whose standard deviation
tracks the mean as ``sigma ~ mu/10``, and the nighttime mode is a Pareto
with shape fixed to ``b = 1.765`` and a per-BS scale.  This module fits that
model from per-minute count samples and samples synthetic days from it.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ..dataset.network import PARETO_SHAPE, PEAK_SIGMA_RATIO
from .distributions import Gaussian, Pareto


class ArrivalFitError(ValueError):
    """Raised when arrival samples cannot support a fit."""


@dataclass(frozen=True)
class ArrivalModel:
    """Fitted bi-modal arrival-rate model of one BS (or BS class).

    Attributes
    ----------
    peak_mu:
        Mean of the daytime Gaussian (sessions/minute).
    peak_sigma:
        Std of the daytime Gaussian; the paper automates it as ``mu/10``.
    night_scale:
        Scale of the nighttime Pareto.
    night_shape:
        Shape of the nighttime Pareto, fixed at 1.765 in the paper.
    """

    peak_mu: float
    peak_sigma: float
    night_scale: float
    night_shape: float = PARETO_SHAPE

    def __post_init__(self) -> None:
        if self.peak_mu <= 0:
            raise ArrivalFitError("peak_mu must be positive")
        if self.peak_sigma <= 0:
            raise ArrivalFitError("peak_sigma must be positive")
        if self.night_scale <= 0:
            raise ArrivalFitError("night_scale must be positive")

    @property
    def peak(self) -> Gaussian:
        """The daytime Gaussian component."""
        return Gaussian(self.peak_mu, self.peak_sigma)

    @property
    def night(self) -> Pareto:
        """The nighttime Pareto component."""
        return Pareto(self.night_shape, self.night_scale)

    def mixture_pdf(self, rates) -> np.ndarray:
        """Density of the full bi-modal PDF, weighting the two phases by
        their share of the day (the Fig 3 curves)."""
        rates = np.asarray(rates, dtype=float)
        day_fraction = peak_minute_mask().mean()
        return day_fraction * self.peak.pdf(rates) + (
            1.0 - day_fraction
        ) * self.night.pdf(rates)

    def sample_minute_counts(
        self, rng: np.random.Generator, peak_phase: np.ndarray
    ) -> np.ndarray:
        """Integer arrival counts for minutes flagged peak/off-peak."""
        peak_phase = np.asarray(peak_phase, dtype=bool)
        counts = np.empty(peak_phase.size)
        n_peak = int(peak_phase.sum())
        if n_peak:
            counts[peak_phase] = self.peak.sample(rng, n_peak)
        n_night = peak_phase.size - n_peak
        if n_night:
            counts[~peak_phase] = self.night.sample(rng, n_night)
        np.rint(counts, out=counts)
        np.maximum(counts, 0.0, out=counts)
        return counts.astype(np.int64)

    def sample_day(self, rng: np.random.Generator) -> np.ndarray:
        """Arrival counts for the 1440 minutes of one synthetic day."""
        return self.sample_minute_counts(rng, peak_minute_mask())


def fit_arrival_model(
    minute_counts: np.ndarray, peak_phase: np.ndarray
) -> ArrivalModel:
    """Fit the bi-modal model from labelled per-minute arrival counts.

    Parameters
    ----------
    minute_counts:
        Per-minute session counts (any number of BS-days, flattened).
    peak_phase:
        Boolean array marking which samples belong to the daytime phase.

    Notes
    -----
    The daytime Gaussian mean is the sample mean of the peak-phase counts
    and its sigma is tied to the mean as ``mu/10`` (the automation the paper
    derives from observing ``sigma ~ mu/10`` across all BS classes).  The
    nighttime Pareto keeps the fixed shape 1.765 and matches the scale to
    the off-peak sample mean: ``mean = shape * scale / (shape - 1)``.
    """
    minute_counts = np.asarray(minute_counts, dtype=float)
    peak_phase = np.asarray(peak_phase, dtype=bool)
    if minute_counts.shape != peak_phase.shape:
        raise ArrivalFitError("counts and phase labels must align")
    if not np.any(peak_phase) or not np.any(~peak_phase):
        raise ArrivalFitError("need samples from both phases")

    peak_mu = float(minute_counts[peak_phase].mean())
    if peak_mu <= 0:
        raise ArrivalFitError("daytime samples have non-positive mean")

    night_mean = float(minute_counts[~peak_phase].mean())
    night_scale = night_mean * (PARETO_SHAPE - 1.0) / PARETO_SHAPE
    night_scale = max(night_scale, 1e-6)

    return ArrivalModel(
        peak_mu=peak_mu,
        peak_sigma=peak_mu * PEAK_SIGMA_RATIO,
        night_scale=night_scale,
    )


def fit_arrival_model_from_days(day_count_matrix: np.ndarray) -> ArrivalModel:
    """Fit from a ``(n_days, 1440)`` matrix of per-minute counts."""
    day_count_matrix = np.atleast_2d(np.asarray(day_count_matrix, dtype=float))
    if day_count_matrix.shape[1] != MINUTES_PER_DAY:
        raise ArrivalFitError("each row must hold 1440 per-minute counts")
    mask = np.tile(peak_minute_mask(), day_count_matrix.shape[0])
    return fit_arrival_model(day_count_matrix.ravel(), mask)


def arrival_count_pmf(model: ArrivalModel, max_count: int) -> np.ndarray:
    """PMF of integer per-minute arrival counts implied by the model.

    The generative model draws a real-valued rate (daytime Gaussian or
    nighttime Pareto, weighted by their share of the day) and rounds it to
    an integer count; the PMF integrates each component's density over the
    rounding interval of every count.
    """
    if max_count < 1:
        raise ArrivalFitError("max_count must be >= 1")
    day_fraction = float(peak_minute_mask().mean())
    edges = np.arange(max_count + 2) - 0.5  # rounding intervals per count
    day_cdf = model.peak.cdf(edges)
    night_cdf = model.night.cdf(np.clip(edges, model.night.scale, None))
    pmf = day_fraction * np.diff(day_cdf) + (1 - day_fraction) * np.diff(
        night_cdf
    )
    # Counts clip at zero: fold the below-zero mass into count 0.
    pmf[0] += day_fraction * float(model.peak.cdf(-0.5)) + (
        1 - day_fraction
    ) * float(model.night.cdf(model.night.scale))
    return np.clip(pmf, 0.0, None)


def arrival_fit_error(
    minute_counts: np.ndarray, model: ArrivalModel
) -> float:
    """EMD (in sessions/minute) between measured counts and the model.

    The Fig 3 goodness-of-fit number: earth-mover distance between the
    empirical PMF of the per-minute counts and the model-implied PMF, on
    their common integer support.
    """
    minute_counts = np.asarray(minute_counts)
    if minute_counts.size == 0:
        raise ArrivalFitError("need at least one count sample")
    top = int(max(minute_counts.max(), model.peak_mu * 2)) + 5
    empirical = np.bincount(
        minute_counts.astype(np.int64), minlength=top + 1
    ).astype(float)
    empirical = empirical[: top + 1] / empirical.sum()
    modelled = arrival_count_pmf(model, top)
    modelled = modelled / modelled.sum()
    return float(np.abs(np.cumsum(empirical - modelled)).sum())


@dataclass(frozen=True)
class DecileArrivalFit:
    """One decile's fitted arrival model plus its fit diagnostics.

    Attributes
    ----------
    decile:
        BS load decile index (0..9).
    model:
        The fitted bi-modal :class:`ArrivalModel`.
    emd:
        Earth-mover distance (sessions/minute) between the pooled measured
        per-minute counts and the model-implied PMF — the Fig 3
        goodness-of-fit number.
    n_minutes:
        Number of pooled per-minute count samples backing the fit.
    """

    decile: int
    model: ArrivalModel
    emd: float
    n_minutes: int


def fit_decile_arrivals_diagnosed(
    table, network, n_days: int
) -> dict[int, DecileArrivalFit]:
    """Fit one arrival model per BS load decile, with fit diagnostics.

    This is the Fig 3 fitting loop as a reusable helper: per decile, the
    per-minute counts of all its BSs over all days are pooled and fitted,
    and the fit's EMD against the pooled counts is recorded alongside the
    model.  Returns a dict keyed by decile index (0..9).
    """
    from ..dataset.aggregation import minute_arrival_counts

    fits: dict[int, DecileArrivalFit] = {}
    for decile in range(10):
        bs_ids = network.bs_ids_in_decile(decile)
        if not bs_ids:
            continue
        counts = minute_arrival_counts(table, bs_ids, n_days)
        flat = counts.reshape(len(bs_ids) * n_days, MINUTES_PER_DAY)
        model = fit_arrival_model_from_days(flat)
        fits[decile] = DecileArrivalFit(
            decile=decile,
            model=model,
            emd=arrival_fit_error(flat.ravel().astype(np.int64), model),
            n_minutes=int(flat.size),
        )
    return fits


def fit_decile_arrival_models(table, network, n_days: int) -> dict[int, ArrivalModel]:
    """Fit one arrival model per BS load decile from a campaign.

    Bare-model view of :func:`fit_decile_arrivals_diagnosed`, kept for
    callers that only need the sampled-from models (e.g. the release file).
    """
    return {
        decile: fit.model
        for decile, fit in fit_decile_arrivals_diagnosed(
            table, network, n_days
        ).items()
    }
