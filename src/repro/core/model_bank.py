"""Collection of fitted per-service models — the released artefact.

The paper publishes one parameter tuple per service for 31 services.  A
:class:`ModelBank` holds those tuples, fits them from a measurement
campaign in one call, and round-trips through JSON so the bank can be
shipped and reloaded without the measurement data.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from ..dataset.aggregation import pooled_duration_volume, pooled_volume_pdf
from ..dataset.records import SERVICE_NAMES, SessionTable
from .duration_model import DurationModelError
from .service_mix import ServiceMix
from .service_model import (
    FitDiagnostics,
    ServiceModelError,
    SessionLevelModel,
    fit_service_model,
)

#: Minimum number of sessions a service needs in the campaign for a
#: trustworthy fit; services below it are skipped with a warning entry.
MIN_SESSIONS_FOR_FIT = 500


class ModelBankError(ValueError):
    """Raised when bank content or serialization is invalid."""


def _fit_service_job(
    item: tuple[str, SessionTable],
) -> SessionLevelModel | None:
    """Executor work function: aggregate and fit one service's model.

    Returns ``None`` when the service's duration–volume curve is too sparse
    to regress — the caller simply skips it, as the paper models only the
    services with sufficient support.
    """
    name, sub = item
    try:
        return fit_service_model(
            name, pooled_volume_pdf(sub), pooled_duration_volume(sub)
        )
    except (DurationModelError, ServiceModelError):
        return None


class ModelBank:
    """A set of fitted :class:`SessionLevelModel`, keyed by service name."""

    def __init__(self, models: dict[str, SessionLevelModel] | None = None):
        self._models: dict[str, SessionLevelModel] = {}
        for name, model in (models or {}).items():
            self.add(model)
            if model.service != name:
                raise ModelBankError(
                    f"key {name!r} does not match model service {model.service!r}"
                )

    def add(self, model: SessionLevelModel) -> None:
        """Insert or replace the model of one service."""
        self._models[model.service] = model

    def get(self, service: str) -> SessionLevelModel:
        """The fitted model of one service."""
        try:
            return self._models[service]
        except KeyError:
            raise ModelBankError(f"no model for service {service!r}") from None

    def __contains__(self, service: str) -> bool:
        return service in self._models

    def __len__(self) -> int:
        return len(self._models)

    def services(self) -> list[str]:
        """Names of the modelled services, in catalog order."""
        return [name for name in SERVICE_NAMES if name in self._models]

    def diagnostics(self) -> dict[str, FitDiagnostics]:
        """Fit diagnostics of every service fitted with them recorded.

        Models loaded from releases predating the diagnostics field are
        simply absent from the mapping.
        """
        return {
            name: model.diagnostics
            for name, model in self._models.items()
            if model.diagnostics is not None
        }

    # ------------------------------------------------------------------
    @classmethod
    def fit_from_table(
        cls,
        table: SessionTable,
        services: list[str] | None = None,
        min_sessions: int = MIN_SESSIONS_FOR_FIT,
        executor=None,
    ) -> "ModelBank":
        """Fit one model per service from a measurement campaign.

        Services with fewer than ``min_sessions`` recorded sessions — or
        whose duration–volume curve is too sparse to regress — are skipped:
        the paper likewise models only the services with sufficient support.

        ``executor`` (any :mod:`repro.pipeline.executors` executor) fans the
        per-service aggregation + fit out across workers; fitting is
        deterministic, so the bank is identical for any worker count.
        """
        bank = cls()
        wanted = services if services is not None else list(SERVICE_NAMES)
        jobs = []
        for name in wanted:
            sub = table.for_service(name)
            if len(sub) >= min_sessions:
                jobs.append((name, sub))
        if executor is None:
            fitted = [_fit_service_job(job) for job in jobs]
        else:
            fitted = executor.map(_fit_service_job, jobs)
        for model in fitted:
            if model is not None:
                bank.add(model)
        return bank

    # ------------------------------------------------------------------
    def sample_mixed_sessions(
        self, mix: ServiceMix, rng: np.random.Generator, size: int
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Draw sessions whose services follow ``mix``.

        Returns (service indices, volumes MB, durations s).  Services in the
        mix without a fitted model raise — a silent fallback would skew the
        generated traffic mix.
        """
        service_idx = mix.sample(rng, size)
        volumes = np.empty(size)
        durations = np.empty(size)
        for idx in np.unique(service_idx):
            name = SERVICE_NAMES[idx]
            model = self.get(name)
            mask = service_idx == idx
            batch = model.sample_sessions(rng, int(mask.sum()))
            volumes[mask] = batch.volumes_mb
            durations[mask] = batch.durations_s
        return service_idx, volumes, durations

    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize every model to a JSON document."""
        return json.dumps(
            {name: model.to_dict() for name, model in self._models.items()},
            indent=2,
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, text: str) -> "ModelBank":
        """Inverse of :meth:`to_json`."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ModelBankError(f"invalid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ModelBankError("bank JSON must be an object")
        return cls(
            {
                name: SessionLevelModel.from_dict(entry)
                for name, entry in payload.items()
            }
        )

    def save(self, path: str | Path) -> None:
        """Write the bank to a JSON file."""
        Path(path).write_text(self.to_json())

    @classmethod
    def load(cls, path: str | Path) -> "ModelBank":
        """Read a bank from a JSON file."""
        return cls.from_json(Path(path).read_text())
