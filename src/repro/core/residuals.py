"""Residual-peak extraction for the volume mixture model (Section 5.2).

After subtracting the main log-normal trend from a measured volume PDF, the
remaining positive residual carries the characteristic probability peaks of
the service.  The paper automates their identification as follows:

1. compute the first derivative of the residual, smoothed with a
   first-order Savitzky–Golay filter;
2. record every continuous interval of traffic values within which the
   magnitude of the derivative stays seamlessly above a threshold —
   peaks show "a high rate of change over a short traffic interval",
   whereas broad fit-mismatch ripples have gentle slopes;
3. rank the intervals by the residual probability they contain (the
   integral of the residual over the interval) and keep the strongest ones.

Each retained interval becomes a log-normal component: ``mu`` at the
maximum-probability traffic value of the interval, ``sigma`` set so that
99.7 % (3 sigma) of the component lies inside the interval, and weight
``k`` equal to the contained residual probability (Eq 4).

Two implementation notes relative to the paper's description:

* The numeric threshold value depends on the PDF representation.  The paper
  quotes 1e-5 for its binning; our PDFs are densities per decade on a
  0.025-decade grid, so the equivalent default is
  :data:`DERIVATIVE_THRESHOLD` (density change per decade).  The paper's
  footnote 3 reports the algorithm is robust to this choice; the ablation
  benchmark sweeps it.
* At the apex of a peak the derivative crosses zero, briefly dipping below
  any threshold; runs separated by such hairline gaps are merged so that
  one peak yields one interval.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..analysis.histogram import BIN_WIDTH, LOG_CENTERS, N_BINS
from .distributions import LogNormal10
from .fitting.savitzky_golay import savgol_filter

#: Threshold on |d residual / d u| (density per decade, per decade) above
#: which a grid bin is considered part of a peak's steep flank.  The value
#: is calibrated for the 0.025-decade global grid (the ablation benchmark
#: sweeps it; extraction is stable over roughly 0.3–1.5).
DERIVATIVE_THRESHOLD = 0.5

#: Residual peaks lighter than this are noise, not service behaviour
#: (Section 5.4: "the rare additional peaks have negligible weight k below
#: 1e-4").
MIN_PEAK_WEIGHT = 1e-4

#: Maximum number of modelled residual peaks (Section 5.4 limits models to 3).
MAX_PEAKS = 3

#: Window of the Savitzky–Golay derivative smoother, in grid bins.
SAVGOL_WINDOW = 7

#: Active runs separated by at most this many inactive bins are merged
#: (bridges the derivative zero-crossing at each peak apex).
MERGE_GAP_BINS = 3


class ResidualError(ValueError):
    """Raised on malformed residual input."""


@dataclass(frozen=True)
class ResidualPeak:
    """One characteristic probability peak extracted from a residual.

    ``weight`` is the scaling ``k_{s,n}`` of Eq (4); ``mu``/``sigma`` are in
    ``log10(MB)``; ``u_lo``/``u_hi`` delimit the source interval on the
    log-volume axis.
    """

    weight: float
    mu: float
    sigma: float
    u_lo: float
    u_hi: float

    def component(self) -> LogNormal10:
        """The peak as a log-normal distribution."""
        return LogNormal10(self.mu, self.sigma)

    def pdf_log10(self, u) -> np.ndarray:
        """The scaled peak density ``f_{s,n}`` of Eq (4)."""
        return self.weight * self.component().pdf_log10(u)


def smoothed_derivative(residual: np.ndarray) -> np.ndarray:
    """First derivative of the residual, Savitzky–Golay smoothed (step 1)."""
    residual = np.asarray(residual, dtype=float)
    if residual.shape != (N_BINS,):
        raise ResidualError(f"residual must live on the global grid ({N_BINS} bins)")
    return savgol_filter(
        residual, SAVGOL_WINDOW, poly_order=1, deriv=1, delta=BIN_WIDTH
    )


def _active_intervals(
    mask: np.ndarray, merge_gap: int, residual: np.ndarray
) -> list[tuple[int, int]]:
    """Continuous True runs of ``mask``, merging across apex zero-crossings.

    Two adjacent runs are the rising and falling flank of a *single* peak
    when the short gap between them sits at the peak's apex — i.e. the
    residual stays high across the gap.  A gap where the residual dips
    (a valley) separates two distinct peaks and is never merged.
    Returns (start, end) index pairs with ``end`` exclusive.
    """
    raw: list[tuple[int, int]] = []
    start = None
    for i, active in enumerate(mask):
        if active and start is None:
            start = i
        elif not active and start is not None:
            raw.append((start, i))
            start = None
    if start is not None:
        raw.append((start, mask.size))

    merged: list[tuple[int, int]] = []
    for interval in raw:
        if merged and interval[0] - merged[-1][1] <= merge_gap:
            previous = merged[-1]
            gap_floor = residual[previous[1] : interval[0]].min(initial=np.inf)
            flank_top = min(
                residual[previous[0] : previous[1]].max(),
                residual[interval[0] : interval[1]].max(),
            )
            if gap_floor >= 0.5 * flank_top:
                merged[-1] = (previous[0], interval[1])
                continue
        merged.append(interval)
    return merged


#: How far (in bins) an interval may be extended beyond the thresholded
#: flanks while the residual keeps descending (captures the peak's skirt).
MAX_EXTENSION_BINS = 12


def _extend_to_local_minima(
    residual: np.ndarray, start: int, end: int
) -> tuple[int, int]:
    """Grow an interval outward while the residual keeps falling.

    The derivative threshold marks only the steep flanks of a peak; the
    probability mass in its skirt belongs to the peak too.  Extension stops
    at the first local minimum (or after :data:`MAX_EXTENSION_BINS`), so
    neighbouring peaks are never absorbed.
    """
    lo = start
    while (
        lo > 0
        and start - lo < MAX_EXTENSION_BINS
        and residual[lo - 1] < residual[lo]
        and residual[lo - 1] > 0
    ):
        lo -= 1
    hi = end
    while (
        hi < residual.size
        and hi - end < MAX_EXTENSION_BINS
        and residual[hi] < residual[hi - 1]
        and residual[hi] > 0
    ):
        hi += 1
    return lo, hi


def find_residual_peaks(
    residual: np.ndarray,
    max_peaks: int = MAX_PEAKS,
    derivative_threshold: float = DERIVATIVE_THRESHOLD,
    min_weight: float = MIN_PEAK_WEIGHT,
) -> list[ResidualPeak]:
    """Extract the characteristic peaks of a residual density (steps 2–3).

    Parameters
    ----------
    residual:
        Non-negative residual density over the global log-volume grid.
    max_peaks:
        Cap on the number of returned peaks (paper: 3).
    derivative_threshold:
        Threshold on the magnitude of the smoothed derivative.
    min_weight:
        Peaks whose contained probability is below this are dropped.

    Returns
    -------
    Peaks sorted by decreasing weight.
    """
    residual = np.asarray(residual, dtype=float)
    if np.any(residual < -1e-12):
        raise ResidualError("residual must be non-negative")
    residual = np.clip(residual, 0.0, None)
    if max_peaks <= 0 or not np.any(residual > 0):
        return []

    derivative = smoothed_derivative(residual)
    mask = np.abs(derivative) > derivative_threshold

    candidates: list[ResidualPeak] = []
    for core_start, core_end in _active_intervals(mask, MERGE_GAP_BINS, residual):
        # The thresholded run covers the steep flanks and sizes the peak
        # (sigma from the paper's 0.997 * span / 3 rule); the skirt
        # extension only collects the remaining probability mass.
        start, end = _extend_to_local_minima(residual, core_start, core_end)
        weight = float(residual[start:end].sum() * BIN_WIDTH)
        if weight < min_weight:
            continue
        local = residual[start:end]
        apex = float(local.max())
        mu = float(LOG_CENTERS[start + int(np.argmax(local))])
        # For a Gaussian peak, mass = apex * sigma * sqrt(2 pi) exactly, so
        # sigma follows from the observed apex height; the paper's
        # 0.997 * span / 3 rule (99.7 % of the mass within the interval)
        # serves as an upper cap for flat-topped residuals.
        span_cap = 0.997 * (end - start) * BIN_WIDTH / 3.0
        sigma = weight / (apex * math.sqrt(2.0 * math.pi))
        sigma = float(np.clip(sigma, BIN_WIDTH / 2.0, max(span_cap, BIN_WIDTH)))
        candidates.append(
            ResidualPeak(
                weight=weight,
                mu=mu,
                sigma=sigma,
                u_lo=float(LOG_CENTERS[start]),
                u_hi=float(LOG_CENTERS[end - 1]),
            )
        )

    candidates.sort(key=lambda p: p.weight, reverse=True)
    return candidates[:max_peaks]
