"""Packet-level bridge: expand one session into a packet/burst schedule.

Fig 1 places packet-level models *below* session-level ones, and Section 1
argues the two granularities compose: session-level models say how much
traffic a session carries and for how long; packet-level models (NGMN-
style on/off sources, [2][6][31]) say how the bytes are spaced inside it.
This module implements that composition: given a session's (volume,
duration) from a fitted :class:`~repro.core.service_model.SessionLevelModel`
and its behaviour class, it emits a concrete packet schedule whose total
size equals the session volume *exactly* and whose span fits the session
duration.

Two intra-session shapes, following the coarse dichotomy of Section 4.3:

* **streaming** — periodic chunk downloads (DASH-like segments): bursts at
  a fixed period, each a train of MTU packets;
* **messaging** — on/off bursts with exponential think times between them.

The bridge keeps the paper's contract: it never alters the session-level
statistics, only refines them downward.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.services import BehaviourClass, get_service

#: Maximum transfer unit used for the packet trains, in bytes.
MTU_BYTES = 1500

#: Streaming chunk period in seconds (a DASH-like segment cadence).
STREAMING_CHUNK_PERIOD_S = 4.0

#: Mean number of bursts per minute for messaging-like sessions.
MESSAGING_BURSTS_PER_MINUTE = 4.0


class PacketBridgeError(ValueError):
    """Raised on invalid packetization input."""


@dataclass(frozen=True)
class PacketSchedule:
    """A concrete packet schedule for one session.

    ``timestamps_s`` are offsets from the session start, sorted;
    ``sizes_bytes`` are per-packet sizes.  The schedule conserves the
    session volume exactly.
    """

    timestamps_s: np.ndarray
    sizes_bytes: np.ndarray

    def __post_init__(self) -> None:
        if self.timestamps_s.shape != self.sizes_bytes.shape:
            raise PacketBridgeError("timestamps and sizes must align")

    def __len__(self) -> int:
        return int(self.timestamps_s.size)

    @property
    def total_bytes(self) -> int:
        """Sum of all packet sizes."""
        return int(self.sizes_bytes.sum())

    def inter_arrival_s(self) -> np.ndarray:
        """Packet inter-arrival times (empty for < 2 packets)."""
        return np.diff(self.timestamps_s)

    def burst_count(self, gap_threshold_s: float = 0.5) -> int:
        """Number of bursts, splitting at inter-arrival gaps above the
        threshold."""
        if len(self) == 0:
            return 0
        return int(1 + np.sum(self.inter_arrival_s() > gap_threshold_s))


def _packet_train(
    start_s: float, n_bytes: int, rate_bps: float
) -> tuple[np.ndarray, np.ndarray]:
    """A back-to-back MTU train carrying ``n_bytes`` from ``start_s``."""
    n_full, tail = divmod(n_bytes, MTU_BYTES)
    sizes = [MTU_BYTES] * n_full + ([tail] if tail else [])
    sizes_arr = np.array(sizes, dtype=np.int64)
    offsets = np.concatenate([[0.0], np.cumsum(sizes_arr[:-1] * 8.0 / rate_bps)])
    return start_s + offsets, sizes_arr


def packetize_session(
    volume_mb: float,
    duration_s: float,
    behaviour: BehaviourClass,
    rng: np.random.Generator,
    link_rate_mbps: float = 100.0,
) -> PacketSchedule:
    """Expand one session into a packet schedule.

    Parameters
    ----------
    volume_mb / duration_s:
        The session-level quantities (from a fitted model or a trace).
    behaviour:
        Coarse class steering the intra-session shape.
    rng:
        Source of burst-timing randomness.
    link_rate_mbps:
        Line rate at which the bytes of one burst are clocked out.
    """
    if volume_mb <= 0:
        raise PacketBridgeError("volume must be positive")
    if duration_s <= 0:
        raise PacketBridgeError("duration must be positive")
    if link_rate_mbps <= 0:
        raise PacketBridgeError("link rate must be positive")

    total_bytes = max(int(round(volume_mb * 1e6)), 1)
    rate_bps = link_rate_mbps * 1e6

    if behaviour is BehaviourClass.STREAMING:
        n_chunks = max(int(duration_s / STREAMING_CHUNK_PERIOD_S), 1)
        starts = np.arange(n_chunks) * (duration_s / n_chunks)
    else:
        # Messaging and outlier behaviours: randomized burst times.
        expected = max(
            duration_s / 60.0 * MESSAGING_BURSTS_PER_MINUTE, 1.0
        )
        n_chunks = max(int(rng.poisson(expected)), 1)
        starts = np.sort(rng.uniform(0.0, duration_s * 0.95, n_chunks))

    # Split the volume across bursts: equal chunks for streaming (constant
    # quality), Dirichlet-weighted for bursty behaviours.
    if behaviour is BehaviourClass.STREAMING or n_chunks == 1:
        per_chunk = np.full(n_chunks, total_bytes // n_chunks, dtype=np.int64)
        per_chunk[: total_bytes - int(per_chunk.sum())] += 1
    else:
        weights = rng.dirichlet(np.full(n_chunks, 1.5))
        per_chunk = np.floor(weights * total_bytes).astype(np.int64)
        per_chunk[np.argmax(per_chunk)] += total_bytes - int(per_chunk.sum())
        per_chunk = np.maximum(per_chunk, 0)

    times, sizes = [], []
    for start, n_bytes in zip(starts, per_chunk):
        if n_bytes <= 0:
            continue
        t, s = _packet_train(float(start), int(n_bytes), rate_bps)
        times.append(t)
        sizes.append(s)
    timestamps = np.concatenate(times)
    packet_sizes = np.concatenate(sizes)
    order = np.argsort(timestamps, kind="stable")
    return PacketSchedule(
        timestamps_s=timestamps[order], sizes_bytes=packet_sizes[order]
    )


def packetize_service_session(
    service: str,
    volume_mb: float,
    duration_s: float,
    rng: np.random.Generator,
    link_rate_mbps: float = 100.0,
) -> PacketSchedule:
    """Packetize using the service's cataloged behaviour class."""
    behaviour = get_service(service).behaviour
    return packetize_session(
        volume_mb, duration_s, behaviour, rng, link_rate_mbps
    )
