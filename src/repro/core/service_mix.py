"""Per-service breakdown of session arrivals (Section 5.1, Table 1).

The paper observes that the share of sessions induced by each service is
nearly constant across BSs and time (session-share CV ≈ 1 across the
network), and therefore assigns each newly established session to a service
by sampling the Table 1 session shares.  :class:`ServiceMix` implements that
categorical assignment, either from the published table or re-estimated from
a measurement table.
"""

from __future__ import annotations

import numpy as np

from ..dataset.records import SERVICE_INDEX, SERVICE_NAMES, SessionTable
from ..dataset.services import session_share_fractions


class ServiceMixError(ValueError):
    """Raised when a service mix is malformed."""


class ServiceMix:
    """Categorical distribution assigning new sessions to services."""

    def __init__(self, probabilities: dict[str, float]):
        unknown = set(probabilities) - set(SERVICE_NAMES)
        if unknown:
            raise ServiceMixError(f"unknown services: {sorted(unknown)}")
        vector = np.zeros(len(SERVICE_NAMES))
        for name, p in probabilities.items():
            if p < 0:
                raise ServiceMixError(f"negative probability for {name}")
            vector[SERVICE_INDEX[name]] = p
        total = vector.sum()
        if total <= 0:
            raise ServiceMixError("at least one probability must be positive")
        self._probs = vector / total

    @classmethod
    def from_table1(cls) -> "ServiceMix":
        """The published Table 1 session shares."""
        return cls(session_share_fractions())

    @classmethod
    def from_measurements(cls, table: SessionTable) -> "ServiceMix":
        """Empirical session shares of a measurement table."""
        if len(table) == 0:
            raise ServiceMixError("empty measurement table")
        counts = np.bincount(table.service_idx, minlength=len(SERVICE_NAMES))
        return cls(
            {name: float(counts[i]) for i, name in enumerate(SERVICE_NAMES)}
        )

    @classmethod
    def uniform_over(cls, services: list[str]) -> "ServiceMix":
        """Uniform mix over a subset of services (used by the benchmarks,
        which split a category's share uniformly across its services)."""
        if not services:
            raise ServiceMixError("need at least one service")
        return cls({name: 1.0 for name in services})

    def probability(self, service: str) -> float:
        """Probability that a new session belongs to ``service``."""
        if service not in SERVICE_INDEX:
            raise ServiceMixError(f"unknown service {service!r}")
        return float(self._probs[SERVICE_INDEX[service]])

    def probabilities(self) -> np.ndarray:
        """The full probability vector in catalog order."""
        return self._probs.copy()

    def restricted_to(self, services: list[str]) -> "ServiceMix":
        """Renormalized mix over a subset of services."""
        return ServiceMix({name: self.probability(name) for name in services})

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Draw ``size`` service indices (into ``SERVICE_NAMES``)."""
        return rng.choice(len(SERVICE_NAMES), size=size, p=self._probs)

    def sample_names(self, rng: np.random.Generator, size: int) -> list[str]:
        """Draw ``size`` service names."""
        return [SERVICE_NAMES[i] for i in self.sample(rng, size)]
