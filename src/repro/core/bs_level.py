"""BS-level aggregate traffic model — the coarse comparator of Fig 1.

The paper positions session-level modeling between packet-level models and
*BS-level* models that "describe aggregates of the traffic volume across
all devices associated to the target antenna ... over timescales of
minutes or hours" (Section 2).  This module implements that coarser
family — a per-BS circadian profile with log-normal scaling, in the spirit
of the alpha-stable / generative BS-level literature the paper cites — so
the two modeling granularities can be compared on equal footing:

* both reproduce the *aggregate* per-minute traffic of a BS;
* only the session-level models can answer per-service questions
  (slicing) or per-session questions (vRAN orchestration) — the gap the
  paper's use cases quantify.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ..dataset.records import SessionTable
from ..usecases.slicing.demand import spread_sessions


class BsLevelError(ValueError):
    """Raised on inconsistent BS-level model input."""


def bs_minute_traffic(
    table: SessionTable, bs_id: int, n_days: int
) -> np.ndarray:
    """Measured per-minute aggregate traffic of one BS (MB/minute).

    Sessions spread their volume uniformly over their covered minutes, as
    in the slicing demand accounting.
    """
    sub = table.for_bs_ids([bs_id])
    flat = spread_sessions(
        np.zeros(len(sub), dtype=np.int64),
        1,
        sub.day,
        sub.start_minute,
        sub.volume_mb,
        sub.duration_s,
        n_days,
    )
    return flat[0]


@dataclass(frozen=True)
class BsLevelModel:
    """Two-phase log-normal model of a BS's aggregate per-minute traffic.

    Daytime and nighttime minutes each get a log-normal volume (fitted in
    log10 space), reproducing the circadian aggregate without any notion
    of sessions or services.
    """

    day_mu: float
    day_sigma: float
    night_mu: float
    night_sigma: float

    def sample_day(self, rng: np.random.Generator) -> np.ndarray:
        """One synthetic day of per-minute aggregate traffic (MB/min)."""
        mask = peak_minute_mask()
        traffic = np.empty(MINUTES_PER_DAY)
        n_day = int(mask.sum())
        traffic[mask] = 10.0 ** rng.normal(self.day_mu, self.day_sigma, n_day)
        traffic[~mask] = 10.0 ** rng.normal(
            self.night_mu, self.night_sigma, MINUTES_PER_DAY - n_day
        )
        return traffic

    def sample_campaign(
        self, n_days: int, rng: np.random.Generator
    ) -> np.ndarray:
        """``n_days`` of synthetic per-minute aggregate traffic."""
        if n_days < 1:
            raise BsLevelError("n_days must be >= 1")
        return np.concatenate([self.sample_day(rng) for _ in range(n_days)])


def fit_bs_level_model(
    minute_traffic: np.ndarray, floor_mb: float = 1e-3
) -> BsLevelModel:
    """Fit the two-phase log-normal to measured per-minute traffic.

    ``minute_traffic`` must cover whole days (multiples of 1440 minutes);
    zero-traffic minutes are floored at ``floor_mb`` before the log.
    """
    minute_traffic = np.asarray(minute_traffic, dtype=float)
    if minute_traffic.size == 0 or minute_traffic.size % MINUTES_PER_DAY:
        raise BsLevelError("traffic must cover whole days (n * 1440 minutes)")
    if np.any(minute_traffic < 0):
        raise BsLevelError("traffic cannot be negative")

    n_days = minute_traffic.size // MINUTES_PER_DAY
    mask = np.tile(peak_minute_mask(), n_days)
    log_traffic = np.log10(np.maximum(minute_traffic, floor_mb))

    day = log_traffic[mask]
    night = log_traffic[~mask]
    return BsLevelModel(
        day_mu=float(day.mean()),
        day_sigma=float(max(day.std(ddof=0), 1e-3)),
        night_mu=float(night.mean()),
        night_sigma=float(max(night.std(ddof=0), 1e-3)),
    )


def aggregate_accuracy(
    measured: np.ndarray, synthetic: np.ndarray
) -> dict[str, float]:
    """Compare two per-minute aggregate series on scale-free statistics.

    Returns the relative errors of the mean, the p95 and the day/night
    ratio — the aggregate features a BS-level model is supposed to get
    right.
    """
    measured = np.asarray(measured, dtype=float)
    synthetic = np.asarray(synthetic, dtype=float)
    if measured.size % MINUTES_PER_DAY or synthetic.size % MINUTES_PER_DAY:
        raise BsLevelError("series must cover whole days")

    def day_night_ratio(series: np.ndarray) -> float:
        mask = np.tile(peak_minute_mask(), series.size // MINUTES_PER_DAY)
        night_mean = max(float(series[~mask].mean()), 1e-9)
        return float(series[mask].mean()) / night_mean

    def rel_err(a: float, b: float) -> float:
        return abs(b - a) / max(abs(a), 1e-9)

    return {
        "mean": rel_err(float(measured.mean()), float(synthetic.mean())),
        "p95": rel_err(
            float(np.percentile(measured, 95)),
            float(np.percentile(synthetic, 95)),
        ),
        "day_night_ratio": rel_err(
            day_night_ratio(measured), day_night_ratio(synthetic)
        ),
    }
