"""Model drift detection between two fitted model banks.

Section 7: "since our models are at service level, they will require
updates over the years to consider changes in popularity and new services
that emerge.  We plan to continuously collect data to provide updated
models to the community."  This module supports that maintenance loop: it
compares two :class:`~repro.core.model_bank.ModelBank` releases (e.g. last
year's and this year's) and quantifies, per service, how much the volume
PDF, the mean load and the duration law moved — so an operator knows which
released tuples are stale.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.emd import emd
from .model_bank import ModelBank

#: Default drift thresholds: a service is flagged when its PDFs moved by
#: more than EMD_THRESHOLD decades, its mean load by more than
#: MEAN_RATIO_THRESHOLD (either direction), or its exponent by more than
#: BETA_THRESHOLD.
EMD_THRESHOLD = 0.1
MEAN_RATIO_THRESHOLD = 1.5
BETA_THRESHOLD = 0.25


class DriftError(ValueError):
    """Raised on inconsistent drift-comparison input."""


@dataclass(frozen=True)
class ServiceDrift:
    """Drift of one service between two model releases."""

    service: str
    volume_emd: float
    mean_ratio: float
    beta_delta: float

    def is_significant(
        self,
        emd_threshold: float = EMD_THRESHOLD,
        mean_ratio_threshold: float = MEAN_RATIO_THRESHOLD,
        beta_threshold: float = BETA_THRESHOLD,
    ) -> bool:
        """Whether any drift dimension crosses its threshold."""
        ratio = max(self.mean_ratio, 1.0 / self.mean_ratio)
        return (
            self.volume_emd > emd_threshold
            or ratio > mean_ratio_threshold
            or abs(self.beta_delta) > beta_threshold
        )


@dataclass
class DriftReport:
    """Full comparison of two model releases."""

    drifts: list[ServiceDrift]
    only_in_old: list[str]
    only_in_new: list[str]

    def significant(self, **thresholds) -> list[ServiceDrift]:
        """Services whose models need refreshing."""
        return [d for d in self.drifts if d.is_significant(**thresholds)]

    def stable(self, **thresholds) -> list[ServiceDrift]:
        """Services whose released tuples remain valid."""
        return [d for d in self.drifts if not d.is_significant(**thresholds)]


def compare_banks(old: ModelBank, new: ModelBank) -> DriftReport:
    """Quantify per-service drift between two model releases.

    For each service present in both banks, reports:

    * ``volume_emd`` — EMD between the two modelled volume PDFs (decades);
    * ``mean_ratio`` — new mean session volume over old;
    * ``beta_delta`` — change of the power-law exponent.

    Services present in only one bank are listed separately — emerging
    services need new models, vanished ones can be retired (the
    popularity churn the paper's Section 7 anticipates).
    """
    old_services = set(old.services())
    new_services = set(new.services())
    drifts = []
    for name in sorted(old_services & new_services):
        old_model, new_model = old.get(name), new.get(name)
        old_hist = old_model.volume.as_histogram()
        new_hist = new_model.volume.as_histogram()
        old_mean = old_hist.mean_mb()
        if old_mean <= 0:
            raise DriftError(f"degenerate old model for {name!r}")
        drifts.append(
            ServiceDrift(
                service=name,
                volume_emd=emd(old_hist, new_hist),
                mean_ratio=new_hist.mean_mb() / old_mean,
                beta_delta=new_model.duration.beta - old_model.duration.beta,
            )
        )
    return DriftReport(
        drifts=drifts,
        only_in_old=sorted(old_services - new_services),
        only_in_new=sorted(new_services - old_services),
    )
