"""Mergeable aggregate sketches for campaigns that never retain sessions.

Every sketch in this module obeys one contract: ``merge`` is **bit-exactly
associative and commutative**, and accumulating a table in one pass equals
accumulating any partition of it in any order.  That is what lets the
sharded campaign driver (:mod:`repro.campaign.driver`) fold per-shard
results into campaign-level statistics with byte-identical outcomes for
serial, parallel and kill-then-resume runs.

Exactness is engineered, not assumed:

* counts and histogram bins are integers — integer addition is exact;
* value sums (:class:`Moments`) are kept as **integers in fixed power-of-two
  quanta** (e.g. volumes in 2^-20 MB ≈ bytes), accumulated into unbounded
  Python ints, so no float rounding ever depends on the merge order;
* minima/maxima and HyperLogLog register maxima are order-free by
  construction.

The distinct-count sketch is a seeded HyperLogLog — the "count distinct
problem" of national-scale aggregation pipelines (cf. the EIDA statistics
aggregator): registers hold the maximum leading-zero rank of a 64-bit hash
per bucket, merge is a register-wise maximum, and the estimate carries the
standard ``1.04/sqrt(m)`` relative error.  The synthetic session schema
has no user identifier, so :class:`CampaignAggregate` feeds the sketch
with per-session fingerprints (distinct session records); a deployment
with real user IDs plugs those in instead.

Serialization is versioned (:data:`SKETCH_FORMAT_VERSION`): integers are
arbitrary-precision JSON ints, floats round-trip exactly through ``repr``,
HLL registers travel as hex — ``from_dict(to_dict(x))`` reproduces ``x``
bit for bit, and merging deserialized sketches equals merging the
originals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from ..analysis.histogram import LOG_GRID
from ..dataset.aggregation import DURATION_EDGES
from ..dataset.circadian import MINUTES_PER_DAY, peak_minute_mask
from ..dataset.records import SERVICE_NAMES, SessionTable

#: Bump when any sketch's serialized form changes incompatibly; folded
#: into shard-checkpoint content keys so stale checkpoints cleanly miss.
SKETCH_FORMAT_VERSION = 1

#: Volume sums are integers in 2^-20 MB quanta (= bytes): exact for any
#: merge order, sub-byte truncation is irrelevant at campaign scale.
VOLUME_QUANTUM_LOG2 = 20

#: Squared-volume sums in 2^-6 MB^2 quanta — coarse enough that per-chunk
#: int64 partial sums cannot overflow, fine enough for variance at scale.
VOLUME_SQ_QUANTUM_LOG2 = 6

#: Duration sums in 2^-10 s quanta (~millisecond).
DURATION_QUANTUM_LOG2 = 10

#: Squared-duration sums in 2^-6 s^2 quanta.
DURATION_SQ_QUANTUM_LOG2 = 6

#: Default HyperLogLog precision: 2^14 registers, ~0.81 % standard error —
#: the classic production setting (16 KiB of registers).
DEFAULT_HLL_PRECISION = 14

#: Default seed of the session-fingerprint hash feeding the HLL.
DEFAULT_HLL_SEED = 0x5E55104E

#: Quantized magnitudes at or beyond this bound fall back to exact Python
#: ints (numpy int64 could overflow); below it the fast array path is safe.
_INT64_SAFE = 1 << 62

#: splitmix64 constants (Steele et al.), the 64-bit finalizer mixing each
#: fingerprint component.
_SM_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_SM_M1 = np.uint64(0xBF58476D1CE4E5B9)
_SM_M2 = np.uint64(0x94D049BB133111EB)


class SketchError(ValueError):
    """Raised on inconsistent sketch configuration or incompatible merges."""


# ----------------------------------------------------------------------
# Exact integer accumulation helpers
# ----------------------------------------------------------------------
def _quantize(values: np.ndarray, quantum_log2: int) -> np.ndarray | list[int]:
    """Map float values to exact integers in ``2**-quantum_log2`` quanta.

    ``ldexp`` scales by a power of two without introducing rounding beyond
    the final ``rint``; the result is the same no matter where or in what
    batch the value is quantized.  Magnitudes that would not fit ``int64``
    (pathological duration tails) fall back to exact Python ints.
    """
    scaled = np.rint(np.ldexp(np.asarray(values, dtype=np.float64), quantum_log2))
    if scaled.size and float(np.abs(scaled).max()) >= float(_INT64_SAFE):
        return [int(x) for x in scaled]
    return scaled.astype(np.int64)


def _exact_sum(quantized: np.ndarray | list[int]) -> int:
    """Sum quantized integers exactly into an unbounded Python int.

    numpy's ``int64`` partial sums are used in blocks sized so they cannot
    overflow given the block's own maximum element; block totals accumulate
    in Python ints, which are exact at any magnitude.
    """
    if isinstance(quantized, list):
        return sum(quantized)
    if quantized.size == 0:
        return 0
    bound = int(np.abs(quantized).max())
    if bound == 0:
        return 0
    block = max(1, min(quantized.size, _INT64_SAFE // (bound + 1)))
    total = 0
    for lo in range(0, quantized.size, block):
        total += int(quantized[lo : lo + block].sum(dtype=np.int64))
    return total


def _exact_weighted_bincount(
    index: np.ndarray, quantized: np.ndarray | list[int], minlength: int
) -> list[int]:
    """Per-bucket exact integer sums of non-negative quantized weights.

    ``np.bincount`` with float64 weights is exact only while every partial
    sum stays below 2^53, so each weight is split into three 21-bit limbs
    and the input is processed in blocks of at most 2^22 rows: limb terms
    are below 2^21, block partial sums below 2^43 — always exact.  Limb
    totals recombine into unbounded Python ints.
    """
    totals = [0] * minlength
    if isinstance(quantized, list):  # pragma: no cover - pathological tails
        for i, q in zip(index, quantized):
            if q < 0:
                raise SketchError("weighted bincount requires >= 0 weights")
            totals[int(i)] += q
        return totals
    if quantized.size and int(quantized.min()) < 0:
        raise SketchError("weighted bincount requires >= 0 weights")
    limb_mask = np.int64((1 << 21) - 1)
    for lo in range(0, quantized.size, 1 << 22):
        idx = index[lo : lo + (1 << 22)]
        block = quantized[lo : lo + (1 << 22)]
        for limb in range(3):
            part = (block >> np.int64(21 * limb)) & limb_mask
            if not part.any():
                continue
            sums = np.bincount(
                idx, weights=part.astype(np.float64), minlength=minlength
            )
            shift = 21 * limb
            for service, value in enumerate(sums):
                if value:
                    totals[service] += int(value) << shift
    return totals


def _require(condition: bool, message: str) -> None:
    """Raise :class:`SketchError` unless a structural invariant holds."""
    if not condition:
        raise SketchError(message)


# ----------------------------------------------------------------------
# Moments
# ----------------------------------------------------------------------
@dataclass
class Moments:
    """Count/sum/second-moment accumulator on exact integer quanta.

    ``total_q`` and ``total_sq_q`` are unbounded Python ints counting
    ``2**-quantum_log2`` (resp. ``2**-sq_quantum_log2``) units, so update
    and merge are exact in any order; minima and maxima are float but
    order-free.  The empty accumulator is the merge identity: folding it
    in changes nothing, and every derivation (:meth:`mean`,
    :meth:`variance`) is total — zero counts yield 0.0, never a NaN or a
    division error.
    """

    quantum_log2: int
    sq_quantum_log2: int
    count: int = 0
    total_q: int = 0
    total_sq_q: int = 0
    minimum: float | None = None
    maximum: float | None = None

    def update(self, values: np.ndarray) -> "Moments":
        """Fold a batch of raw float values in; returns ``self``."""
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return self
        self.count += int(values.size)
        self.total_q += _exact_sum(_quantize(values, self.quantum_log2))
        self.total_sq_q += _exact_sum(
            _quantize(np.square(values), self.sq_quantum_log2)
        )
        low, high = float(values.min()), float(values.max())
        self.minimum = low if self.minimum is None else min(self.minimum, low)
        self.maximum = high if self.maximum is None else max(self.maximum, high)
        return self

    def merge(self, other: "Moments") -> "Moments":
        """Fold another accumulator in (associative, commutative, exact)."""
        _require(
            self.quantum_log2 == other.quantum_log2
            and self.sq_quantum_log2 == other.sq_quantum_log2,
            "cannot merge moment accumulators with different quanta",
        )
        self.count += other.count
        self.total_q += other.total_q
        self.total_sq_q += other.total_sq_q
        if other.minimum is not None:
            self.minimum = (
                other.minimum
                if self.minimum is None
                else min(self.minimum, other.minimum)
            )
        if other.maximum is not None:
            self.maximum = (
                other.maximum
                if self.maximum is None
                else max(self.maximum, other.maximum)
            )
        return self

    def sum(self) -> float:
        """Accumulated total in original units."""
        return float(np.ldexp(float(self.total_q), -self.quantum_log2))

    def mean(self) -> float:
        """Mean value; 0.0 for the empty accumulator (total, no NaN)."""
        if self.count == 0:
            return 0.0
        return self.sum() / self.count

    def variance(self) -> float:
        """Population variance; 0.0 for the empty accumulator."""
        if self.count == 0:
            return 0.0
        mean_sq = float(
            np.ldexp(float(self.total_sq_q), -self.sq_quantum_log2)
        ) / self.count
        return max(0.0, mean_sq - self.mean() ** 2)

    def to_dict(self) -> dict:
        """Exact JSON-able form (ints unbounded, floats via ``repr``)."""
        return {
            "quantum_log2": self.quantum_log2,
            "sq_quantum_log2": self.sq_quantum_log2,
            "count": self.count,
            "total_q": self.total_q,
            "total_sq_q": self.total_sq_q,
            "minimum": self.minimum,
            "maximum": self.maximum,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Moments":
        """Inverse of :meth:`to_dict` (bit-exact round trip)."""
        try:
            return cls(
                quantum_log2=int(payload["quantum_log2"]),
                sq_quantum_log2=int(payload["sq_quantum_log2"]),
                count=int(payload["count"]),
                total_q=int(payload["total_q"]),
                total_sq_q=int(payload["total_sq_q"]),
                minimum=(
                    None
                    if payload["minimum"] is None
                    else float(payload["minimum"])
                ),
                maximum=(
                    None
                    if payload["maximum"] is None
                    else float(payload["maximum"])
                ),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SketchError(f"invalid moments payload: {exc}") from exc


# ----------------------------------------------------------------------
# Fixed-bin histogram
# ----------------------------------------------------------------------
class FixedHistogram:
    """Integer-count histogram over a fixed, shared bin grid.

    All shards of one campaign bin against identical edges, so merging is
    plain integer addition of the count vectors — exact in any order.
    Out-of-range values clip into the edge bins (probability mass is
    conserved, matching the convention of
    :class:`~repro.analysis.histogram.LogHistogram`).
    """

    def __init__(self, edges: np.ndarray, counts: np.ndarray | None = None):
        self.edges = np.asarray(edges, dtype=np.float64)
        if self.edges.ndim != 1 or self.edges.size < 2:
            raise SketchError("histogram needs at least two bin edges")
        if np.any(np.diff(self.edges) <= 0):
            raise SketchError("histogram edges must strictly increase")
        n_bins = self.edges.size - 1
        if counts is None:
            self.counts = np.zeros(n_bins, dtype=np.int64)
        else:
            self.counts = np.asarray(counts, dtype=np.int64)
            if self.counts.shape != (n_bins,):
                raise SketchError("histogram counts misaligned with edges")
            if self.counts.size and int(self.counts.min()) < 0:
                raise SketchError("histogram counts must be >= 0")

    @property
    def n_bins(self) -> int:
        """Number of bins of the grid."""
        return self.edges.size - 1

    @property
    def total(self) -> int:
        """Total number of binned values."""
        return int(self.counts.sum())

    def update(self, values: np.ndarray) -> "FixedHistogram":
        """Bin a batch of raw values in place; returns ``self``.

        A value exactly on an interior edge lands in the right bin
        (half-open bins), matching ``np.histogram`` on the same grid.
        """
        values = np.asarray(values, dtype=np.float64)
        if values.size == 0:
            return self
        idx = np.searchsorted(self.edges, values, side="right") - 1
        np.clip(idx, 0, self.n_bins - 1, out=idx)
        self.counts += np.bincount(idx, minlength=self.n_bins)
        return self

    def merge(self, other: "FixedHistogram") -> "FixedHistogram":
        """Fold another histogram in (exact integer addition)."""
        _require(
            np.array_equal(self.edges, other.edges),
            "cannot merge histograms over different bin grids",
        )
        self.counts += other.counts
        return self

    def density(self) -> np.ndarray:
        """Per-bin probability density; all-zero when empty (no NaN)."""
        total = self.total
        if total == 0:
            return np.zeros(self.n_bins, dtype=np.float64)
        return self.counts / (total * np.diff(self.edges))

    def to_dict(self) -> dict:
        """Exact JSON-able form (edges round-trip via ``repr``)."""
        return {
            "edges": [float(e) for e in self.edges],
            "counts": [int(c) for c in self.counts],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FixedHistogram":
        """Inverse of :meth:`to_dict` (bit-exact round trip)."""
        try:
            return cls(
                np.asarray(payload["edges"], dtype=np.float64),
                np.asarray(payload["counts"], dtype=np.int64),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SketchError(f"invalid histogram payload: {exc}") from exc


# ----------------------------------------------------------------------
# HyperLogLog
# ----------------------------------------------------------------------
def _splitmix64(x: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 (wrapping arithmetic)."""
    with np.errstate(over="ignore"):
        z = (x + _SM_GAMMA).astype(np.uint64)
        z = (z ^ (z >> np.uint64(30))) * _SM_M1
        z = (z ^ (z >> np.uint64(27))) * _SM_M2
        return z ^ (z >> np.uint64(31))


def _bit_length_u64(values: np.ndarray) -> np.ndarray:
    """Exact vectorized bit length of uint64 values (0 for zero).

    A six-step binary search over shifts — unlike ``log2``-based tricks it
    is exact for every input, which keeps HLL ranks (and therefore merged
    registers) identical wherever they are computed.
    """
    length = np.zeros(values.shape, dtype=np.int64)
    work = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        step = np.uint64(shift)
        big = work >= (np.uint64(1) << step)
        length[big] += shift
        work[big] >>= step
    length += work.astype(np.int64)  # remaining 0/1 bit
    return length


class HyperLogLog:
    """Seeded HyperLogLog distinct-count sketch with exact merge.

    ``precision`` ``p`` selects ``m = 2**p`` one-byte registers; each
    64-bit hash routes to register ``h >> (64-p)`` and contributes the
    rank (leading-zero count + 1) of its remaining ``64-p`` bits.  Merge
    is a register-wise maximum — associative, commutative, idempotent —
    so any shard order folds to identical registers.  The estimate uses
    the standard bias-corrected harmonic mean with the small-range
    linear-counting correction; the relative standard error is
    ``1.04/sqrt(m)``.

    ``seed`` identifies the hash stream the registers were built from;
    merging sketches with different seeds or precisions raises
    :class:`SketchError` (their registers are not comparable).
    """

    def __init__(
        self,
        precision: int = DEFAULT_HLL_PRECISION,
        seed: int = DEFAULT_HLL_SEED,
        registers: np.ndarray | None = None,
    ):
        if not 4 <= int(precision) <= 18:
            raise SketchError("HLL precision must be in 4..18")
        self.precision = int(precision)
        self.seed = int(seed) & 0xFFFFFFFFFFFFFFFF
        m = 1 << self.precision
        if registers is None:
            self.registers = np.zeros(m, dtype=np.uint8)
        else:
            self.registers = np.asarray(registers, dtype=np.uint8)
            if self.registers.shape != (m,):
                raise SketchError("HLL registers misaligned with precision")

    @property
    def n_registers(self) -> int:
        """Number of registers ``m = 2**precision``."""
        return 1 << self.precision

    def relative_error(self) -> float:
        """Standard error of the estimate, relative (``1.04/sqrt(m)``)."""
        return 1.04 / float(np.sqrt(self.n_registers))

    def add_hashes(self, hashes: np.ndarray) -> "HyperLogLog":
        """Fold pre-hashed uint64 values in; returns ``self``.

        Callers are responsible for hashing with this sketch's
        :attr:`seed` (see :func:`session_fingerprints`); the sketch only
        routes bits to registers.
        """
        hashes = np.ascontiguousarray(hashes, dtype=np.uint64)
        if hashes.size == 0:
            return self
        tail_bits = np.uint64(64 - self.precision)
        idx = (hashes >> tail_bits).astype(np.intp)
        tail = hashes & ((np.uint64(1) << tail_bits) - np.uint64(1))
        rank = (
            int(tail_bits) + 1 - _bit_length_u64(tail)
        ).astype(np.uint8)
        np.maximum.at(self.registers, idx, rank)
        return self

    def add_items(self, items: np.ndarray) -> "HyperLogLog":
        """Hash raw uint64 item identifiers under the seed and fold in."""
        items = np.asarray(items, dtype=np.uint64)
        with np.errstate(over="ignore"):
            seeded = items ^ np.uint64(self.seed)
        return self.add_hashes(_splitmix64(seeded))

    def merge(self, other: "HyperLogLog") -> "HyperLogLog":
        """Register-wise maximum (associative, commutative, idempotent)."""
        _require(
            self.precision == other.precision,
            "cannot merge HLL sketches of different precision",
        )
        _require(
            self.seed == other.seed,
            "cannot merge HLL sketches built from different hash seeds",
        )
        np.maximum(self.registers, other.registers, out=self.registers)
        return self

    def estimate(self) -> float:
        """Bias-corrected distinct-count estimate (0.0 when empty)."""
        m = self.n_registers
        alpha = 0.7213 / (1.0 + 1.079 / m)
        harmonic = float(
            np.sum(np.exp2(-self.registers.astype(np.float64)))
        )
        raw = alpha * m * m / harmonic
        zeros = int(np.count_nonzero(self.registers == 0))
        if raw <= 2.5 * m and zeros:
            return m * float(np.log(m / zeros))
        return raw

    def to_dict(self) -> dict:
        """Exact JSON-able form; registers travel as a hex string."""
        return {
            "precision": self.precision,
            "seed": self.seed,
            "registers": self.registers.tobytes().hex(),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "HyperLogLog":
        """Inverse of :meth:`to_dict` (bit-exact round trip)."""
        try:
            registers = np.frombuffer(
                bytes.fromhex(payload["registers"]), dtype=np.uint8
            ).copy()
            return cls(
                precision=int(payload["precision"]),
                seed=int(payload["seed"]),
                registers=registers,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise SketchError(f"invalid HLL payload: {exc}") from exc


def session_fingerprints(table: SessionTable, seed: int) -> np.ndarray:
    """Seeded 64-bit fingerprints of every session record in a table.

    Each row's columns are mixed into one uint64 through chained
    splitmix64 rounds — a pure function of (seed, row content), so the
    same session yields the same fingerprint in whatever shard or chunk
    it is generated.  Float columns contribute their exact bit patterns.
    """
    n = len(table)
    with np.errstate(over="ignore"):
        h = np.full(n, np.uint64(seed & 0xFFFFFFFFFFFFFFFF), dtype=np.uint64)
        for column in (
            table.service_idx.astype(np.uint64),
            table.bs_id.astype(np.int64).astype(np.uint64),
            table.day.astype(np.uint64),
            table.start_minute.astype(np.uint64),
            np.ascontiguousarray(table.duration_s)
            .view(np.uint32)
            .astype(np.uint64),
            np.ascontiguousarray(table.volume_mb)
            .view(np.uint32)
            .astype(np.uint64),
            table.truncated.astype(np.uint64),
        ):
            h ^= column
            h = _splitmix64(h)
    return h


# ----------------------------------------------------------------------
# Campaign-level composite aggregate
# ----------------------------------------------------------------------
@dataclass
class CampaignAggregate:
    """The mergeable campaign-level statistic bundle of the sharded driver.

    One instance summarizes any set of (day, BS) units: per-service
    session counts and exact-integer volume totals (Table 1 shares and the
    Fig 4 ranking), the global volume PDF on the shared
    :data:`~repro.analysis.histogram.LOG_GRID`, the duration PDF on the
    Section 3.2 bins, per-minute arrival counts (circadian profiles),
    volume/duration moment accumulators, and the seeded HyperLogLog
    distinct-session sketch.  :meth:`merge` folds two bundles exactly;
    :meth:`update_table` accumulates raw sessions in one vectorized pass.

    The freshly constructed aggregate (:meth:`empty`) is the merge
    identity — exactly what an empty (day, BS) shard produces — and every
    derivation is total: empty inputs yield zeros, never NaN bins or a
    division error.
    """

    service_sessions: np.ndarray = field(
        default_factory=lambda: np.zeros(len(SERVICE_NAMES), dtype=np.int64)
    )
    service_volume_q: list[int] = field(
        default_factory=lambda: [0] * len(SERVICE_NAMES)
    )
    minute_sessions: np.ndarray = field(
        default_factory=lambda: np.zeros(MINUTES_PER_DAY, dtype=np.int64)
    )
    volume_hist: FixedHistogram = field(
        default_factory=lambda: FixedHistogram(LOG_GRID)
    )
    duration_hist: FixedHistogram = field(
        default_factory=lambda: FixedHistogram(DURATION_EDGES)
    )
    volume: Moments = field(
        default_factory=lambda: Moments(
            VOLUME_QUANTUM_LOG2, VOLUME_SQ_QUANTUM_LOG2
        )
    )
    duration: Moments = field(
        default_factory=lambda: Moments(
            DURATION_QUANTUM_LOG2, DURATION_SQ_QUANTUM_LOG2
        )
    )
    distinct: HyperLogLog = field(default_factory=HyperLogLog)
    truncated_sessions: int = 0
    n_units: int = 0

    @classmethod
    def empty(
        cls,
        precision: int = DEFAULT_HLL_PRECISION,
        seed: int = DEFAULT_HLL_SEED,
    ) -> "CampaignAggregate":
        """The identity element, with the HLL configured as given."""
        return cls(distinct=HyperLogLog(precision=precision, seed=seed))

    @classmethod
    def from_table(
        cls,
        table: SessionTable,
        *,
        n_units: int = 0,
        precision: int = DEFAULT_HLL_PRECISION,
        seed: int = DEFAULT_HLL_SEED,
    ) -> "CampaignAggregate":
        """Single-pass aggregate of one table (``n_units`` units' worth)."""
        aggregate = cls.empty(precision=precision, seed=seed)
        aggregate.update_table(table)
        aggregate.count_units(n_units)
        return aggregate

    # -- accumulation ---------------------------------------------------
    def update_table(self, table: SessionTable) -> "CampaignAggregate":
        """Fold a batch of raw sessions in; returns ``self``.

        Accumulating a table equals accumulating any partition of its rows
        in any order — every component is an exact integer or order-free
        reduction — which is the invariant the shard/chunk topology of the
        driver relies on.
        """
        n = len(table)
        if n == 0:
            return self
        service = np.asarray(table.service_idx, dtype=np.intp)
        self.service_sessions += np.bincount(
            service, minlength=len(SERVICE_NAMES)
        )
        self.minute_sessions += np.bincount(
            np.asarray(table.start_minute, dtype=np.intp),
            minlength=MINUTES_PER_DAY,
        )
        self.truncated_sessions += int(np.count_nonzero(table.truncated))
        volume = np.asarray(table.volume_mb, dtype=np.float64)
        duration = np.asarray(table.duration_s, dtype=np.float64)
        volume_q = _quantize(volume, VOLUME_QUANTUM_LOG2)
        for idx, total in enumerate(
            _exact_weighted_bincount(service, volume_q, len(SERVICE_NAMES))
        ):
            self.service_volume_q[idx] += total
        self.volume_hist.update(np.log10(volume))
        self.duration_hist.update(duration)
        self.volume.update(volume)
        self.duration.update(duration)
        self.distinct.add_hashes(
            session_fingerprints(table, self.distinct.seed)
        )
        return self

    def count_units(self, n_units: int) -> "CampaignAggregate":
        """Record that ``n_units`` (day, BS) units fed this aggregate.

        Kept separate from :meth:`update_table` because a unit that
        produced zero sessions still covers BS-time (it must dilute
        per-unit rates, not vanish).
        """
        if n_units < 0:
            raise SketchError("unit count cannot be negative")
        self.n_units += int(n_units)
        return self

    def merge(self, other: "CampaignAggregate") -> "CampaignAggregate":
        """Fold another aggregate in (associative, commutative, exact)."""
        self.service_sessions += other.service_sessions
        for idx, total in enumerate(other.service_volume_q):
            self.service_volume_q[idx] += total
        self.minute_sessions += other.minute_sessions
        self.volume_hist.merge(other.volume_hist)
        self.duration_hist.merge(other.duration_hist)
        self.volume.merge(other.volume)
        self.duration.merge(other.duration)
        self.distinct.merge(other.distinct)
        self.truncated_sessions += other.truncated_sessions
        self.n_units += other.n_units
        return self

    # -- derived statistics (all total: empty inputs yield zeros) -------
    @property
    def n_sessions(self) -> int:
        """Total number of aggregated sessions."""
        return int(self.service_sessions.sum())

    def total_volume_mb(self) -> float:
        """Total served traffic volume in MB."""
        return float(
            np.ldexp(float(sum(self.service_volume_q)), -VOLUME_QUANTUM_LOG2)
        )

    def service_session_shares(self) -> np.ndarray:
        """Per-service session fraction in catalog order (zeros if empty)."""
        total = self.n_sessions
        if total == 0:
            return np.zeros(len(SERVICE_NAMES), dtype=np.float64)
        return self.service_sessions / float(total)

    def service_traffic_shares(self) -> np.ndarray:
        """Per-service traffic fraction in catalog order (zeros if empty)."""
        total = sum(self.service_volume_q)
        if total == 0:
            return np.zeros(len(SERVICE_NAMES), dtype=np.float64)
        return np.asarray(
            [float(q / total) for q in self.service_volume_q],
            dtype=np.float64,
        )

    def shares_table(self) -> dict[str, tuple[float, float]]:
        """Per-service (session share, traffic share), as fractions.

        Same shape as
        :func:`~repro.dataset.aggregation.service_shares`, computed from
        the merged counters instead of raw sessions.
        """
        sessions = self.service_session_shares()
        traffic = self.service_traffic_shares()
        return {
            name: (float(sessions[i]), float(traffic[i]))
            for i, name in enumerate(SERVICE_NAMES)
        }

    def volume_pdf(self) -> np.ndarray:
        """Campaign volume PDF over the global log10(MB) grid.

        Density per decade on
        :data:`~repro.analysis.histogram.LOG_GRID` — bin-compatible with
        every :class:`~repro.analysis.histogram.LogHistogram` in the code
        base.  All-zero when no sessions were aggregated.
        """
        return self.volume_hist.density()

    def duration_pdf(self) -> np.ndarray:
        """Campaign duration density over the Section 3.2 geometric bins."""
        return self.duration_hist.density()

    def circadian_profile(self) -> np.ndarray:
        """Mean arrivals per minute-of-day per (day, BS) unit.

        All-zero when no units were counted (empty-campaign identity).
        """
        if self.n_units == 0:
            return np.zeros(MINUTES_PER_DAY, dtype=np.float64)
        return self.minute_sessions / float(self.n_units)

    def day_night_ratio(self) -> float:
        """Mean peak-phase over mean night-phase arrival rate (Fig 3).

        Returns 0.0 for the all-empty aggregate; raises
        :class:`SketchError` when sessions exist but the night phase is
        empty (the ratio is undefined, and silently returning infinity
        would poison downstream statistics).
        """
        mask = peak_minute_mask()
        peak_mean = float(self.minute_sessions[mask].mean())
        night_mean = float(self.minute_sessions[~mask].mean())
        if night_mean == 0.0:
            if peak_mean == 0.0:
                return 0.0
            raise SketchError(
                "day/night ratio undefined: no nighttime arrivals"
            )
        return peak_mean / night_mean

    def distinct_sessions(self) -> float:
        """HLL estimate of distinct session fingerprints."""
        return self.distinct.estimate()

    def summary(self) -> dict:
        """Headline campaign numbers for CLI output and run manifests."""
        return {
            "sessions": self.n_sessions,
            "units": self.n_units,
            "truncated": self.truncated_sessions,
            "volume_gb": round(self.total_volume_mb() / 1e3, 3),
            "distinct_estimate": round(self.distinct_sessions(), 1),
            "mean_volume_mb": round(self.volume.mean(), 6),
            "mean_duration_s": round(self.duration.mean(), 3),
        }

    # -- serialization --------------------------------------------------
    def to_dict(self) -> dict:
        """Versioned, exact JSON-able form of the whole bundle."""
        return {
            "format": SKETCH_FORMAT_VERSION,
            "service_sessions": [int(c) for c in self.service_sessions],
            "service_volume_q": list(self.service_volume_q),
            "volume_quantum_log2": VOLUME_QUANTUM_LOG2,
            "minute_sessions": [int(c) for c in self.minute_sessions],
            "volume_hist": self.volume_hist.to_dict(),
            "duration_hist": self.duration_hist.to_dict(),
            "volume_moments": self.volume.to_dict(),
            "duration_moments": self.duration.to_dict(),
            "distinct": self.distinct.to_dict(),
            "truncated_sessions": self.truncated_sessions,
            "n_units": self.n_units,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignAggregate":
        """Inverse of :meth:`to_dict`; rejects other format versions."""
        try:
            version = payload["format"]
            if version != SKETCH_FORMAT_VERSION:
                raise SketchError(
                    f"unsupported sketch format {version!r} "
                    f"(this build reads {SKETCH_FORMAT_VERSION})"
                )
            if int(payload["volume_quantum_log2"]) != VOLUME_QUANTUM_LOG2:
                raise SketchError("mismatched service-volume quantum")
            service_sessions = np.asarray(
                payload["service_sessions"], dtype=np.int64
            )
            minute_sessions = np.asarray(
                payload["minute_sessions"], dtype=np.int64
            )
            if service_sessions.shape != (len(SERVICE_NAMES),):
                raise SketchError("service session counts misaligned")
            if minute_sessions.shape != (MINUTES_PER_DAY,):
                raise SketchError("minute counts misaligned")
            service_volume_q = [int(q) for q in payload["service_volume_q"]]
            if len(service_volume_q) != len(SERVICE_NAMES):
                raise SketchError("service volume totals misaligned")
            return cls(
                service_sessions=service_sessions,
                service_volume_q=service_volume_q,
                minute_sessions=minute_sessions,
                volume_hist=FixedHistogram.from_dict(payload["volume_hist"]),
                duration_hist=FixedHistogram.from_dict(
                    payload["duration_hist"]
                ),
                volume=Moments.from_dict(payload["volume_moments"]),
                duration=Moments.from_dict(payload["duration_moments"]),
                distinct=HyperLogLog.from_dict(payload["distinct"]),
                truncated_sessions=int(payload["truncated_sessions"]),
                n_units=int(payload["n_units"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            if isinstance(exc, SketchError):
                raise
            raise SketchError(f"invalid aggregate payload: {exc}") from exc

    def canonical_json(self) -> str:
        """Canonical serialized form (sorted keys, no whitespace)."""
        import json

        return json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )

    def digest(self) -> str:
        """SHA-256 of the canonical form — the byte-identity fingerprint."""
        import hashlib

        return hashlib.sha256(self.canonical_json().encode("utf-8")).hexdigest()


def merge_all(
    aggregates: Iterable[CampaignAggregate] | Sequence[CampaignAggregate],
    *,
    precision: int = DEFAULT_HLL_PRECISION,
    seed: int = DEFAULT_HLL_SEED,
) -> CampaignAggregate:
    """Fold any number of aggregates into a fresh one (exact, any order)."""
    total = CampaignAggregate.empty(precision=precision, seed=seed)
    for aggregate in aggregates:
        total.merge(aggregate)
    return total
