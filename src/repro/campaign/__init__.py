"""Nationwide-scale campaign aggregation: mergeable sketches + sharded driver.

The paper's characterization rests on a national footprint (~282k BSs over
45 days); materializing that many sessions is out of the question, so this
package computes campaign-level statistics **without retaining sessions**:

* :mod:`repro.campaign.sketches` — mergeable aggregate sketches
  (count/sum/moment accumulators on exact integer quanta, fixed-bin
  histograms, a seeded HyperLogLog distinct-count sketch) whose ``merge``
  is bit-exactly associative and commutative, so any shard order — serial,
  parallel, resumed — folds to byte-identical campaign aggregates;
* :mod:`repro.campaign.driver` — the sharded campaign driver fanning
  (day, BS-range) shards across the pipeline executors, streaming each
  shard through a reused :class:`~repro.dataset.records.SessionArena`,
  and checkpointing completed shards through the content-keyed artifact
  cache so a killed run resumes exactly where it stopped;
* :mod:`repro.campaign.fidelity` — the aggregate-only fidelity hook:
  paper claims that need only merged sketches (service ranking, circadian
  structure) judged against the golden baseline's tolerance bands.
"""

from .driver import (
    CampaignError,
    CampaignResult,
    Shard,
    plan_shards,
    run_campaign,
)
from .fidelity import AGGREGATE_CLAIMS, evaluate_aggregate, measure_aggregate
from .sketches import (
    CampaignAggregate,
    FixedHistogram,
    HyperLogLog,
    Moments,
    SketchError,
)

__all__ = [
    "AGGREGATE_CLAIMS",
    "CampaignAggregate",
    "CampaignError",
    "CampaignResult",
    "FixedHistogram",
    "HyperLogLog",
    "Moments",
    "Shard",
    "SketchError",
    "evaluate_aggregate",
    "measure_aggregate",
    "plan_shards",
    "run_campaign",
]
