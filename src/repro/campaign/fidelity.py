"""Aggregate-only fidelity: judging paper claims from merged sketches.

A nationwide campaign never materializes its sessions, so the full
``verify`` gate (which re-measures statistics on a session table) cannot
run on it.  But several of the gated paper claims are *determined by* the
campaign-level aggregates the sharded driver keeps:

* ``rank-exponential-r2`` and ``top20-session-share`` (Fig 4) need only
  the per-service session/traffic shares — exactly
  :meth:`CampaignAggregate.shares_table`;
* ``circadian-day-night-ratio`` (Fig 3) needs only the per-minute
  arrival counts.

This module measures those claims from a merged
:class:`~repro.campaign.sketches.CampaignAggregate` and judges them under
the **same tolerance bands** as the full gate, via the claim-subset mode
of :func:`repro.verify.checks.evaluate`.  Because a shard-merged
aggregate over a session set is bit-identical to the single-pass
aggregate over the same sessions, the aggregate path measures the same
numbers the table path would — the subset gate loses claims, never
fidelity.
"""

from __future__ import annotations

from ..analysis.ranking import (
    RankedService,
    fit_exponential_law,
    top_k_session_fraction,
)
from ..verify.checks import CheckError, evaluate
from ..verify.report import CheckResult, FidelityReport
from .sketches import CampaignAggregate, SketchError

#: The baseline claims a merged campaign aggregate fully determines.
AGGREGATE_CLAIMS = (
    "rank-exponential-r2",
    "top20-session-share",
    "circadian-day-night-ratio",
)


def ranking_from_aggregate(
    aggregate: CampaignAggregate,
) -> list[RankedService]:
    """Fig 4 service ranking straight from merged share counters.

    Mirrors :func:`repro.analysis.ranking.rank_services` — same stable
    sort over the same (session share, traffic share) table, zero-share
    services dropped — but sourced from the aggregate instead of a
    session table.
    """
    shares = aggregate.shares_table()
    ordered = sorted(shares.items(), key=lambda kv: kv[1][0], reverse=True)
    return [
        RankedService(
            rank=i + 1,
            service=name,
            session_fraction=sessions,
            traffic_fraction=traffic,
        )
        for i, (name, (sessions, traffic)) in enumerate(ordered)
        if sessions > 0
    ]


def measure_aggregate(aggregate: CampaignAggregate) -> dict[str, float]:
    """Measure every :data:`AGGREGATE_CLAIMS` statistic from one aggregate.

    Raises :class:`~repro.verify.checks.CheckError` when the aggregate
    cannot support a measurement (no sessions, no nighttime arrivals) —
    the same failure mode the table-based measurements have.
    """
    if aggregate.n_sessions == 0:
        raise CheckError("cannot measure claims of an empty campaign")
    ranking = ranking_from_aggregate(aggregate)
    law = fit_exponential_law(ranking)
    try:
        ratio = aggregate.day_night_ratio()
    except SketchError as exc:
        raise CheckError(str(exc)) from exc
    return {
        "rank-exponential-r2": float(law.r2),
        "top20-session-share": float(top_k_session_fraction(ranking, 20)),
        "circadian-day-night-ratio": float(ratio),
    }


def skipped_aggregate_report(baseline) -> FidelityReport:
    """Deterministic per-claim ``skipped`` verdicts for an empty campaign.

    An all-empty campaign (zero sessions in every shard) determines none
    of the gated statistics — the day/night ratio and the top-20 share
    would divide by zero.  Instead of erroring (or emitting NaN), every
    :data:`AGGREGATE_CLAIMS` claim gets one skipped, passing
    :class:`~repro.verify.report.CheckResult` carrying the baseline's own
    band and a neutral placeholder value, so the report is a total
    function of the aggregate and byte-identical across runs.
    """
    wanted = set(AGGREGATE_CLAIMS)
    results = [
        CheckResult(
            claim=key,
            statistic=key,
            value=0.0,
            lo=band.lo,
            hi=band.hi,
            passed=True,
            provenance=band.provenance,
            skipped=True,
        )
        for key, band in baseline.claims.items()
        if key in wanted
    ]
    return FidelityReport(
        results=results,
        meta={"skipped_reason": "empty campaign: no sessions to measure"},
    )


def evaluate_aggregate(aggregate: CampaignAggregate, baseline):
    """Judge an aggregate's claims under the golden baseline's bands.

    Returns the same :class:`~repro.verify.report.FidelityReport` shape
    as the full gate, restricted to :data:`AGGREGATE_CLAIMS`; the bands
    are the baseline's own, not relaxed copies.  The all-empty campaign
    — where no claim is measurable — yields the deterministic skipped
    verdicts of :func:`skipped_aggregate_report` instead of a division
    error.
    """
    if aggregate.n_sessions == 0:
        return skipped_aggregate_report(baseline)
    return evaluate(
        measure_aggregate(aggregate), baseline, claims=AGGREGATE_CLAIMS
    )
